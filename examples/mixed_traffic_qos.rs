//! Mixed voice + data QoS (a reduced version of the paper's Figs. 12 and 13).
//!
//! Holds the number of voice terminals fixed and sweeps the number of data
//! terminals, printing data throughput and delay per protocol, plus the
//! (delay ≤ 1 s, per-user throughput ≥ 0.25 packets/frame) QoS capacity the
//! paper quotes in Section 5.2.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example mixed_traffic_qos
//! ```

use charisma::metrics::capacity_at_threshold;
use charisma::{data_load_sweep, run_sweep, ProtocolKind, SimConfig};

fn main() {
    let mut base = SimConfig::default_paper();
    base.warmup_frames = 2_000;
    base.measured_frames = 16_000; // 40 s per point
    base.request_queue = true;
    let num_voice = 10;

    let data_counts: Vec<u32> = vec![2, 4, 6, 8, 10, 12, 16, 20];

    println!(
        "=== data service quality vs number of data users (Nv = {num_voice}, request queue on) ==="
    );
    println!();

    for protocol in ProtocolKind::ALL {
        let points = data_load_sweep(&base, protocol, &data_counts, num_voice, true);
        let results = run_sweep(points, 0);

        println!("{}", protocol.label());
        println!(
            "  {:>10} {:>18} {:>18} {:>14}",
            "data users", "throughput (p/f)", "per-user (p/f)", "delay (s)"
        );
        let mut delay_curve = Vec::new();
        for r in &results {
            println!(
                "  {:>10} {:>18.3} {:>18.3} {:>14.3}",
                r.load,
                r.report.data_throughput_per_frame(),
                r.report.data_throughput_per_user(),
                r.report.data_delay_secs(),
            );
            delay_curve.push((r.load, r.report.data_delay_secs()));
        }
        // The paper's QoS point: delay must stay below 1 s while each user
        // still gets its full 0.25 packets/frame offered load.
        match capacity_at_threshold(&delay_curve, 1.0) {
            Some(cap) => println!("  QoS capacity (delay <= 1 s): {cap:.1} data users"),
            None => println!(
                "  QoS capacity (delay <= 1 s): below {} data users",
                data_counts[0]
            ),
        }
        println!();
    }

    println!("Expected shape (paper Section 5.2): CHARISMA sustains roughly 1.5x the data");
    println!("load of D-TDMA/VR and about 3x that of RAMA and DRMA before the delay blows up;");
    println!("RMAV saturates almost immediately.");
}
