//! Voice capacity comparison (a reduced version of the paper's Fig. 11).
//!
//! Sweeps the number of voice terminals for every protocol, prints the
//! packet-loss curves and the capacity at the 1 % loss threshold, with and
//! without the base-station request queue.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example voice_capacity
//! ```

use charisma::metrics::capacity_at_threshold;
use charisma::{run_sweep, voice_load_sweep, ProtocolKind, SimConfig};

fn main() {
    let mut base = SimConfig::default_paper();
    base.warmup_frames = 2_000;
    base.measured_frames = 16_000; // 40 s measured per point

    let voice_counts: Vec<u32> = (20..=180).step_by(20).collect();

    for &queue in &[false, true] {
        println!();
        println!(
            "=== voice packet loss vs number of voice users (Nd = 0, request queue: {}) ===",
            if queue { "on" } else { "off" }
        );
        print!("{:<12}", "protocol");
        for nv in &voice_counts {
            print!("{:>8}", nv);
        }
        println!("{:>12}", "cap@1%");

        for protocol in ProtocolKind::ALL {
            if queue && !protocol.supports_request_queue() {
                continue;
            }
            let points = voice_load_sweep(&base, protocol, &voice_counts, 0, queue);
            let results = run_sweep(points, 0);
            let curve: Vec<(f64, f64)> = results
                .iter()
                .map(|r| (r.load, r.report.voice_loss_rate()))
                .collect();

            print!("{:<12}", protocol.label());
            for (_, loss) in &curve {
                print!("{:>7.2}%", loss * 100.0);
            }
            match capacity_at_threshold(&curve, 0.01) {
                Some(cap) => println!("{:>11.0}", cap),
                None => println!("{:>11}", "<20"),
            }
        }
    }

    println!();
    println!("Expected shape (paper Fig. 11a/11b): CHARISMA supports the most voice users,");
    println!("RMAV collapses earliest, and the request queue helps CHARISMA and D-TDMA/VR");
    println!("far more than the self-stabilising RAMA and DRMA.");
}
