//! Multi-cell system demo: a 7-cell hexagonal layout with roaming
//! terminals, path-loss-driven SNR and handoff between cells.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multicell
//! ```

use charisma::{HandoffAdmission, Layout, ProtocolKind, Scenario, SimConfig, SystemConfig};

fn main() {
    // 12 voice + 3 data terminals *per cell* across a 7-cell hexagonal
    // cluster of small (250 m) cells: 105 terminals total, half walking at
    // 3 km/h, half driving at 80 km/h, roaming under the random-waypoint
    // model.  Mean SNR follows log-distance path loss + site shadowing;
    // the drop-on-full admission policy caps each cell at 20 terminals.
    let mut config = SimConfig::default_paper();
    config.num_voice = 12;
    config.num_data = 3;
    config.speed = charisma::radio::SpeedProfile::Bimodal {
        slow_kmh: 3.0,
        fast_kmh: 80.0,
        fraction_fast: 0.5,
    };
    config.warmup_frames = 2_000; //  5 s warm-up
    config.measured_frames = 20_000; // 50 s measured
    let mut system = SystemConfig::new(7);
    system.layout = Layout::Hex {
        cell_radius_m: 250.0,
    };
    system.handoff.admission = HandoffAdmission::DropOnFull;
    system.handoff.cell_capacity = 20;
    config.system = Some(system);

    println!("CHARISMA reproduction — multi-cell system demo");
    println!(
        "layout: 7-cell hex, 250 m cells; {} voice + {} data terminals per cell",
        config.num_voice, config.num_data
    );
    println!();
    println!(
        "{:<12} {:>11} {:>10} {:>9} {:>9} {:>9} {:>13}",
        "protocol", "voice loss", "attempts", "admitted", "refused", "queued", "voice dropped"
    );
    println!("{:-<80}", "");

    let scenario = Scenario::new(config);
    for protocol in [
        ProtocolKind::Charisma,
        ProtocolKind::DTdmaVr,
        ProtocolKind::DTdmaFr,
    ] {
        let report = scenario.run(protocol);
        let h = &report.metrics.handoff;
        println!(
            "{:<12} {:>10.3}% {:>10} {:>9} {:>9} {:>9} {:>13}",
            protocol.label(),
            report.voice_loss_rate() * 100.0,
            h.attempts,
            h.successes,
            h.failures,
            h.queued,
            report.metrics.voice.dropped_handoff,
        );
    }
    println!();
    println!("Per-cell breakdown of the last run is available in report.metrics.per_cell;");
    println!("see `campaign run multicell_baseline` / `handoff_stress` for the full studies.");
}
