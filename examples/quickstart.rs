//! Quickstart: simulate all six uplink protocols on one mixed voice/data
//! scenario and print the three QoS metrics the paper reports.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use charisma::{ProtocolKind, Scenario, SimConfig};

fn main() {
    // A moderate mixed load: 60 voice terminals and 10 data terminals,
    // paper-default frame structure and channel model, no request queue.
    let mut config = SimConfig::default_paper();
    config.num_voice = 60;
    config.num_data = 10;
    config.warmup_frames = 2_000; //  5 s warm-up
    config.measured_frames = 20_000; // 50 s measured

    println!("CHARISMA reproduction — quickstart");
    println!(
        "scenario: {} voice + {} data terminals, frame {} with {} info slots, request queue: {}",
        config.num_voice,
        config.num_data,
        config.frame.frame_duration,
        config.frame.info_slots,
        config.request_queue,
    );
    println!();
    println!(
        "{:<12} {:>12} {:>16} {:>14} {:>12}",
        "protocol", "voice loss", "data throughput", "data delay", "slot util."
    );
    println!("{:-<70}", "");

    let scenario = Scenario::new(config);
    for protocol in ProtocolKind::ALL {
        let report = scenario.run(protocol);
        println!(
            "{:<12} {:>11.3}% {:>12.3} p/f {:>12.3} s {:>11.1}%",
            protocol.label(),
            report.voice_loss_rate() * 100.0,
            report.data_throughput_per_frame(),
            report.data_delay_secs(),
            report.metrics.slots.utilisation() * 100.0,
        );
    }

    println!();
    println!("Lower voice loss, higher data throughput and lower delay are better.");
    println!("CHARISMA should dominate all three metrics, as in the paper's Section 5.");
}
