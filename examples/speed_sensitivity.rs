//! Mobile-speed sensitivity of CHARISMA (paper Section 5.3.3).
//!
//! The CSI-dependent allocation is only meaningful if the channel stays
//! roughly constant between the CSI estimate and the allocated slot.  The
//! paper reports that CHARISMA's performance degrades by less than ~5 % even
//! at 80 km/h thanks to the CSI-refresh mechanism.  This example sweeps the
//! terminal speed at a fixed load and prints the voice loss and data metrics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example speed_sensitivity
//! ```

use charisma::radio::SpeedProfile;
use charisma::{ProtocolKind, Scenario, SimConfig};

fn main() {
    let speeds_kmh = [10.0, 20.0, 30.0, 50.0, 65.0, 80.0];

    let mut base = SimConfig::default_paper();
    base.num_voice = 120;
    base.num_data = 5;
    base.request_queue = true;
    base.warmup_frames = 2_000;
    base.measured_frames = 16_000;

    println!(
        "=== CHARISMA vs terminal speed (Nv = {}, Nd = {}, request queue on) ===",
        base.num_voice, base.num_data
    );
    println!(
        "{:>12} {:>14} {:>18} {:>14}",
        "speed (km/h)", "voice loss", "data thpt (p/f)", "data delay (s)"
    );

    let mut baseline_loss = None;
    for &speed in &speeds_kmh {
        let mut config = base.clone();
        config.speed = SpeedProfile::Fixed(speed);
        let report = Scenario::new(config).run(ProtocolKind::Charisma);
        if baseline_loss.is_none() {
            baseline_loss = Some(report.voice_loss_rate());
        }
        println!(
            "{:>12.0} {:>13.3}% {:>18.3} {:>14.3}",
            speed,
            report.voice_loss_rate() * 100.0,
            report.data_throughput_per_frame(),
            report.data_delay_secs(),
        );
    }

    println!();
    println!("Expected shape (paper Section 5.3.3): performance is essentially flat from 10");
    println!("to 50 km/h and degrades only slightly (a few percent) at 80 km/h, because the");
    println!("CSI-refresh mechanism keeps the estimates usable within a frame.");
}
