//! Workspace-level facade for the CHARISMA reproduction.
//!
//! This crate only re-exports the member crates so that the repository-root
//! `examples/` and `tests/` directories can exercise the full public API with
//! a single dependency.  The actual implementation lives in `crates/*`.

pub use charisma as core;
pub use charisma_des as des;
pub use charisma_metrics as metrics;
pub use charisma_phy as phy;
pub use charisma_radio as radio;
pub use charisma_traffic as traffic;
