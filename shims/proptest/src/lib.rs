//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements the
//! subset of proptest the workspace's property tests use: the `proptest!`
//! macro family, `prop_assert*` / `prop_assume!`, `Strategy` with range /
//! `Just` / `any` / `prop_oneof!` / `collection::vec` combinators, and a
//! deterministic, fixed-seed case runner.
//!
//! Differences from real proptest, by design:
//!
//! * **Determinism is total.**  Every test function derives its RNG from a
//!   fixed master seed and the test's name, so a failure reproduces on every
//!   machine and every run — there is no persistence file.
//! * **No shrinking.**  A failing case reports the case index and message;
//!   re-running deterministically regenerates the same inputs.
//!
//! The public paths mirror real proptest, so swapping the real crate back in
//! is a manifest-only change.

pub mod test_runner {
    //! Case runner and configuration (mirrors `proptest::test_runner`).

    /// Master seed all test RNGs derive from.  Fixed so that CI and local
    /// runs explore identical cases.
    pub const MASTER_SEED: u64 = 0xC11A_515A_0001_u64;

    /// Runner configuration (mirrors `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Upper bound on `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
        /// Mirrors real proptest's persistence knob; unused (always `None`
        /// semantics) because the runner is fully deterministic.
        pub failure_persistence: Option<()>,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
                failure_persistence: None,
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// An assertion failed; the whole property fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Creates a rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Per-case outcome type produced by the `proptest!`-generated closure.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// SplitMix64-based deterministic RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a case RNG from the master seed, a test label and the
        /// case index.
        pub fn for_case(label: &str, case: u64) -> Self {
            let mut h: u64 = MASTER_SEED;
            for b in label.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Returns the next 64 pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)` via Lemire's multiply-shift reduction.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)` using the top 53 bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Executes one property: `cases` successful runs of `body`, skipping
    /// rejected cases up to the configured cap.  Panics on the first failing
    /// case with a reproducible case index.
    pub fn run_property(
        config: &Config,
        label: &str,
        mut body: impl FnMut(&mut TestRng) -> TestCaseResult,
    ) {
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        let mut case: u64 = 0;
        while passed < config.cases {
            let mut rng = TestRng::for_case(label, case);
            case += 1;
            match body(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest shim: `{label}` rejected {rejected} cases (passed {passed}/{})",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest shim: `{label}` failed at deterministic case #{} (master seed {MASTER_SEED:#x}):\n{msg}",
                        case - 1
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (mirrors `proptest::strategy`).

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of values of type `Self::Value` (mirrors
    /// `proptest::strategy::Strategy`, minus shrinking).
    pub trait Strategy {
        /// The type of value this strategy yields.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (mirrors `Strategy::prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (mirrors `Strategy::boxed`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy (mirrors `proptest::strategy::BoxedStrategy`).
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value (mirrors `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (backs `prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds a uniform choice over `options`; panics if empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! requires at least one alternative"
            );
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy_uint!(u8, u16, u32, usize);

    impl Strategy for Range<u64> {
        type Value = u64;

        fn generate(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end - self.start;
            self.start + rng.below(span)
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy_int!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support (mirrors `proptest::arbitrary`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy (mirrors `Arbitrary`).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_with(rng)
        }
    }

    /// The full-domain strategy for `T` (mirrors `proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_with(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies (mirrors `proptest::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length lies in `len` (mirrors
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// One-stop imports matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub use test_runner::Config as ProptestConfig;

/// Declares deterministic property tests (mirrors `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let __label = concat!(module_path!(), "::", stringify!($name));
                $crate::test_runner::run_property(&__config, __label, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let __outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __outcome
                });
            }
        )*
    };
}

/// Asserts inside a property body, failing the case (mirrors `prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property body (mirrors `prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right` ({})\n  left: `{:?}`\n right: `{:?}`",
                format!($($fmt)+), __l, __r
            )));
        }
    }};
}

/// Asserts inequality inside a property body (mirrors `prop_assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right` ({})\n  both: `{:?}`",
                format!($($fmt)+), __l
            )));
        }
    }};
}

/// Skips the current case when its inputs are unsuitable (mirrors
/// `prop_assume!`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies of one value type (mirrors `prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$(::std::boxed::Box::new($strat) as _),+])
    };
}
