//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The workspace's generators are implemented locally (`charisma_des::rng`)
//! and only *expose* themselves through `rand`'s core traits so that the
//! wider `rand` ecosystem remains usable once the real crate can be vendored.
//! This shim therefore defines exactly the 0.8-compatible trait surface the
//! codebase touches: [`RngCore`], [`SeedableRng`] and [`Error`].

use std::fmt;

/// Error type matching `rand::Error` (0.8): an opaque wrapper used by the
/// fallible `try_fill_bytes` path.  The local generators are infallible, so
/// this is never constructed in practice.
pub struct Error {
    inner: Box<dyn std::error::Error + Send + Sync + 'static>,
}

impl Error {
    /// Wraps an arbitrary error, mirroring `rand::Error::new`.
    pub fn new<E>(err: E) -> Self
    where
        E: Into<Box<dyn std::error::Error + Send + Sync + 'static>>,
    {
        Error { inner: err.into() }
    }

    /// Returns a reference to the wrapped error.
    pub fn inner(&self) -> &(dyn std::error::Error + Send + Sync + 'static) {
        &*self.inner
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error {{ inner: {:?} }}", self.inner)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.inner, f)
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.inner.source()
    }
}

/// The core random-number-generator trait, matching `rand::RngCore` (0.8).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }

    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        R::try_fill_bytes(self, dest)
    }
}

/// Seedable generators, matching `rand::SeedableRng` (0.8).
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 as the
    /// real `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step (public-domain, Steele/Lea/Flood).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Mirrors `rand::rngs` far enough for explicit paths.
pub mod rngs {}
