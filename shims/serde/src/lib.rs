//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! exact subset of `serde`'s surface the workspace uses: the two trait names
//! and the two derive macros.  The derives expand to nothing and the traits
//! are blanket-implemented, which keeps every `#[derive(Serialize,
//! Deserialize)]` and every `T: Serialize` bound compiling without pulling in
//! a serialisation framework.  Swapping in the real `serde` later is a
//! one-line change in the workspace manifest; no source file needs to change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker matching `serde::Serialize`; blanket-implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker matching `serde::Deserialize<'de>`; blanket-implemented.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker matching `serde::de::DeserializeOwned`; blanket-implemented.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

/// Mirrors `serde::ser` far enough for `use serde::ser::Serialize` paths.
pub mod ser {
    pub use crate::Serialize;
}

/// Mirrors `serde::de` far enough for `use serde::de::Deserialize` paths.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}
