//! No-op derive macros matching the names `serde` exports.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *minimal* surface of its external dependencies
//! (see `shims/README.md`).  Serialisation is not on any hot path yet: the
//! codebase only ever *derives* `Serialize`/`Deserialize` so that downstream
//! consumers can persist configurations and reports.  Until a real `serde`
//! can be vendored, the derives expand to nothing and the traits in the
//! `serde` shim are blanket-implemented.

use proc_macro::TokenStream;

/// Accepts (and discards) a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts (and discards) a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
