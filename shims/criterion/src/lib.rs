//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this shim implements the
//! subset of criterion's API the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock measurement loop.  It reports median / mean / p95 per
//! benchmark on stdout instead of criterion's HTML + statistics machinery.
//!
//! Like real criterion, the harness understands `--test` (run every
//! benchmark body exactly once, for CI smoke coverage) and treats any other
//! positional argument as a substring filter on benchmark names.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmark
/// bodies; forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How a benchmark executable was invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (default under `cargo bench`).
    Measure,
    /// One iteration per benchmark (`--test`, used by `cargo test`).
    Test,
}

/// Timing loop handed to benchmark closures (mirrors `criterion::Bencher`).
pub struct Bencher {
    mode: Mode,
    samples: usize,
    /// Collected per-iteration durations, in nanoseconds.
    recorded: Vec<f64>,
}

impl Bencher {
    /// Calls `body` repeatedly and records per-iteration wall-clock times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if self.mode == Mode::Test {
            black_box(body());
            return;
        }
        // Warm up and estimate the per-iteration cost so that each sample
        // aggregates enough iterations to dominate timer overhead.
        let warmup_started = Instant::now();
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(body());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(2)
                || warmup_started.elapsed() > Duration::from_millis(500)
            {
                let per_iter = elapsed.as_nanos().max(1) as u64 / iters_per_sample.max(1);
                iters_per_sample = (2_000_000 / per_iter.max(1)).max(1);
                break;
            }
            iters_per_sample = iters_per_sample.saturating_mul(2);
        }
        self.recorded.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(body());
            }
            self.recorded
                .push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }
}

/// Identifies one benchmark within a group (mirrors `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The top-level harness (mirrors `criterion::Criterion`).
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Measure;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => mode = Mode::Test,
                // Flags cargo/criterion commonly pass through; ignore them.
                "--bench" | "--verbose" | "-v" | "--quiet" | "-q" | "--noplot" => {}
                other if other.starts_with('-') => {}
                other => filter = Some(other.to_string()),
            }
        }
        Criterion {
            mode,
            filter,
            sample_size: 30,
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        self.run_one(name.to_string(), sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: group_name.to_string(),
            sample_size,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: String, samples: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            mode: self.mode,
            samples,
            recorded: Vec::new(),
        };
        f(&mut bencher);
        match self.mode {
            Mode::Test => println!("test {name} ... ok"),
            Mode::Measure => {
                let mut xs = bencher.recorded;
                if xs.is_empty() {
                    println!("{name:<50} (no samples)");
                    return;
                }
                xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
                let median = xs[xs.len() / 2];
                let mean = xs.iter().sum::<f64>() / xs.len() as f64;
                let p95 = xs[(xs.len() * 95 / 100).min(xs.len() - 1)];
                println!(
                    "{name:<50} median {} | mean {} | p95 {}",
                    fmt_ns(median),
                    fmt_ns(mean),
                    fmt_ns(p95)
                );
            }
        }
    }
}

/// A set of benchmarks sharing a name prefix (mirrors
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let samples = self.sample_size;
        self.criterion.run_one(full, samples, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let samples = self.sample_size;
        self.criterion.run_one(full, samples, |b| f(b, input));
        self
    }

    /// Ends the group (mirrors criterion's explicit `finish`).
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:8.3} s ", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:8.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:8.3} µs", ns / 1e3)
    } else {
        format!("{ns:8.1} ns")
    }
}

/// Declares a group of benchmark functions (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark executable's `main` (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
