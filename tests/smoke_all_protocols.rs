//! Fast smoke test: every protocol the platform knows about completes a
//! short mixed-traffic scenario and reports finite, in-range QoS metrics.
//! This is the first test to fail when a new protocol variant wires up its
//! metrics incorrectly, and it runs in well under a second per protocol.

use charisma::{ProtocolKind, Scenario, SimConfig};

fn smoke_config(request_queue: bool) -> SimConfig {
    let mut cfg = SimConfig::quick_test();
    cfg.num_voice = 15;
    cfg.num_data = 2;
    cfg.request_queue = request_queue;
    cfg
}

#[test]
fn every_protocol_completes_a_quick_scenario_with_sane_metrics() {
    for &protocol in ProtocolKind::ALL.iter() {
        for request_queue in [false, true] {
            let report = Scenario::new(smoke_config(request_queue)).run(protocol);

            assert_eq!(report.protocol, protocol);
            assert_eq!(report.request_queue, request_queue);

            let loss = report.voice_loss_rate();
            assert!(
                loss.is_finite() && (0.0..=1.0).contains(&loss),
                "{protocol:?} queue={request_queue}: voice loss {loss} out of [0, 1]"
            );

            let delay = report.data_delay_secs();
            assert!(
                delay.is_finite() && delay >= 0.0,
                "{protocol:?} queue={request_queue}: data delay {delay} negative or non-finite"
            );

            let throughput = report.data_throughput_per_frame();
            assert!(
                throughput.is_finite() && throughput >= 0.0,
                "{protocol:?} queue={request_queue}: throughput {throughput} negative or non-finite"
            );

            let per_user = report.data_throughput_per_user();
            assert!(
                per_user.is_finite() && per_user >= 0.0,
                "{protocol:?} queue={request_queue}: per-user throughput {per_user} out of range"
            );

            // The one-line summary used by examples and bench binaries must
            // render without panicking.
            assert!(report.summary().contains(protocol.label()));
        }
    }
}

#[test]
fn voice_only_and_data_only_edge_scenarios_complete() {
    for &protocol in ProtocolKind::ALL.iter() {
        let mut voice_only = SimConfig::quick_test();
        voice_only.num_voice = 10;
        voice_only.num_data = 0;
        let r = Scenario::new(voice_only).run(protocol);
        assert_eq!(
            r.data_throughput_per_frame(),
            0.0,
            "{protocol:?}: phantom data traffic"
        );

        let mut data_only = SimConfig::quick_test();
        data_only.num_voice = 0;
        data_only.num_data = 2;
        let r = Scenario::new(data_only).run(protocol);
        assert!(
            r.voice_loss_rate().is_finite() && (0.0..=1.0).contains(&r.voice_loss_rate()),
            "{protocol:?}: voice loss must stay in range with zero voice users"
        );
    }
}
