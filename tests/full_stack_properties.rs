//! Property-based integration tests: for arbitrary (small) scenario
//! configurations, the accounting invariants of the full stack must hold for
//! every protocol.

use charisma::{ProtocolKind, Scenario, SimConfig};
use proptest::prelude::*;

fn arbitrary_protocol() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::Charisma),
        Just(ProtocolKind::DTdmaFr),
        Just(ProtocolKind::DTdmaVr),
        Just(ProtocolKind::Rama),
        Just(ProtocolKind::Rmav),
        Just(ProtocolKind::Drma),
    ]
}

fn small_config(num_voice: u32, num_data: u32, seed: u64, queue: bool) -> SimConfig {
    let mut cfg = SimConfig::quick_test();
    cfg.num_voice = num_voice;
    cfg.num_data = num_data;
    cfg.seed = seed;
    cfg.request_queue = queue;
    cfg.warmup_frames = 200;
    cfg.measured_frames = 1_600; // 4 s
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Voice accounting: the loss rate is a probability, delivered packets
    /// never exceed generated packets (plus the small warm-up carry-over),
    /// and lost packets are exactly drops + errors.
    #[test]
    fn voice_accounting_invariants(
        protocol in arbitrary_protocol(),
        num_voice in 1u32..40,
        num_data in 0u32..4,
        seed in any::<u64>(),
        queue in any::<bool>(),
    ) {
        let cfg = small_config(num_voice, num_data, seed, queue);
        let report = Scenario::new(cfg).run(protocol);
        let v = &report.metrics.voice;

        prop_assert!((0.0..=1.0).contains(&report.voice_loss_rate()));
        prop_assert_eq!(v.lost(), v.dropped_deadline + v.transmission_errors);
        // Packets generated during warm-up may be delivered (or dropped) during
        // the measured window; allow one packet of slack per terminal.
        let slack = num_voice as u64;
        prop_assert!(
            v.delivered + v.lost() <= v.generated + slack,
            "delivered {} + lost {} exceeds generated {} (+slack {})",
            v.delivered, v.lost(), v.generated, slack
        );
    }

    /// Data accounting: delivered packets never exceed arrivals (plus warm-up
    /// carry-over), delays are non-negative and finite, and throughput is
    /// bounded by the frame capacity.
    #[test]
    fn data_accounting_invariants(
        protocol in arbitrary_protocol(),
        num_voice in 0u32..10,
        num_data in 1u32..8,
        seed in any::<u64>(),
    ) {
        let cfg = small_config(num_voice, num_data, seed, true);
        let report = Scenario::new(cfg.clone()).run(protocol);
        let d = &report.metrics.data;

        // Carry-over: bursts that arrived during warm-up (mean 100 packets per
        // burst, ~1 burst per second per terminal over the 0.5 s warm-up).
        let slack = 400 * num_data as u64;
        prop_assert!(
            d.delivered <= d.arrived + slack,
            "delivered {} exceeds arrived {} (+slack {})", d.delivered, d.arrived, slack
        );
        prop_assert!(report.data_delay_secs() >= 0.0);
        prop_assert!(report.data_delay_secs().is_finite());
        // No protocol can deliver more packets per frame than the densest mode
        // allows over its information subframe.
        let max_slots = cfg.frame.info_slots.max(cfg.frame.drma_info_slots).max(cfg.frame.rmav_info_slots);
        let hard_cap = (max_slots as f64) * 5.0;
        prop_assert!(
            report.data_throughput_per_frame() <= hard_cap,
            "throughput {} exceeds the physical bound {}", report.data_throughput_per_frame(), hard_cap
        );
    }

    /// Slot accounting: assigned airtime never exceeds what the frame
    /// structure offered, and utilisation / waste are probabilities.
    #[test]
    fn slot_accounting_invariants(
        protocol in arbitrary_protocol(),
        num_voice in 1u32..30,
        seed in any::<u64>(),
    ) {
        let cfg = small_config(num_voice, 2, seed, false);
        let report = Scenario::new(cfg).run(protocol);
        let s = &report.metrics.slots;
        prop_assert!(s.assigned <= s.offered + 1e-6, "assigned {} > offered {}", s.assigned, s.offered);
        prop_assert!(s.wasted <= s.assigned + 1e-6);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&s.utilisation()));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&s.waste_rate()));
    }

    /// Determinism: the same configuration and protocol always produce the
    /// same report, bit for bit.
    #[test]
    fn runs_are_deterministic(
        protocol in arbitrary_protocol(),
        seed in any::<u64>(),
    ) {
        let cfg = small_config(10, 1, seed, true);
        let a = Scenario::new(cfg.clone()).run(protocol);
        let b = Scenario::new(cfg).run(protocol);
        prop_assert_eq!(a, b);
    }
}
