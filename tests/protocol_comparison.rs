//! Integration tests spanning all crates: the six protocols on the common
//! simulation platform, checked against the qualitative claims of the
//! paper's evaluation section.

use charisma::{ProtocolKind, Scenario, SimConfig};

/// A moderately loaded voice-only configuration that is short enough for a
/// debug-mode test run but long enough for stable loss estimates.
fn voice_config(num_voice: u32) -> SimConfig {
    let mut cfg = SimConfig::quick_test();
    cfg.num_voice = num_voice;
    cfg.num_data = 0;
    cfg.warmup_frames = 800;
    cfg.measured_frames = 6_000; // 15 s
    cfg
}

fn mixed_config(num_voice: u32, num_data: u32) -> SimConfig {
    let mut cfg = voice_config(num_voice);
    cfg.num_data = num_data;
    cfg
}

#[test]
fn charisma_has_the_lowest_voice_loss_at_moderate_load() {
    let cfg = voice_config(60);
    let scenario = Scenario::new(cfg);
    let charisma = scenario.run(ProtocolKind::Charisma).voice_loss_rate();
    for p in ProtocolKind::ALL {
        if p == ProtocolKind::Charisma {
            continue;
        }
        let other = scenario.run(p).voice_loss_rate();
        assert!(
            charisma <= other + 1e-3,
            "CHARISMA ({charisma:.4}) must not lose more voice packets than {p} ({other:.4})"
        );
    }
}

#[test]
fn charisma_near_zero_loss_at_light_load_while_baselines_have_an_error_floor() {
    let cfg = voice_config(20);
    let scenario = Scenario::new(cfg);
    let charisma = scenario.run(ProtocolKind::Charisma).voice_loss_rate();
    let fr = scenario.run(ProtocolKind::DTdmaFr).voice_loss_rate();
    assert!(
        charisma < 0.004,
        "CHARISMA light-load loss should be almost zero, got {charisma}"
    );
    assert!(
        fr > charisma,
        "the fixed-PHY baseline must show a visible error floor (fr={fr})"
    );
    assert!(
        fr < 0.01,
        "the baseline floor must still be below the 1% QoS threshold (fr={fr})"
    );
}

#[test]
fn rmav_is_unstable_even_at_low_voice_load() {
    // Paper: "the RMAV protocol quickly becomes unstable even with a moderate
    // number of voice users (e.g., 10)."
    let cfg = voice_config(20);
    let report = Scenario::new(cfg).run(ProtocolKind::Rmav);
    assert!(
        report.voice_loss_rate() > 0.10,
        "RMAV with 20 voice users should already be far beyond its single-slot contention capacity, got {}",
        report.voice_loss_rate()
    );
}

#[test]
fn adaptive_phy_extends_capacity_beyond_the_fixed_rate_limit() {
    // At 100 voice users D-TDMA/FR is far beyond its hard capacity while the
    // CSI-aware CHARISMA still operates below the 1% threshold.
    let cfg = voice_config(100);
    let scenario = Scenario::new(cfg);
    let charisma = scenario.run(ProtocolKind::Charisma).voice_loss_rate();
    let fr = scenario.run(ProtocolKind::DTdmaFr).voice_loss_rate();
    assert!(
        charisma < 0.01,
        "CHARISMA at 100 voice users should stay below 1% loss, got {charisma}"
    );
    assert!(
        fr > 0.05,
        "D-TDMA/FR at 100 voice users should be far beyond capacity, got {fr}"
    );
}

#[test]
fn rama_degrades_more_gracefully_than_dtdma_fr_at_overload() {
    let cfg = voice_config(140);
    let scenario = Scenario::new(cfg);
    let rama = scenario.run(ProtocolKind::Rama).voice_loss_rate();
    let fr = scenario.run(ProtocolKind::DTdmaFr).voice_loss_rate();
    assert!(
        rama <= fr + 0.02,
        "RAMA's collision-free auction should degrade at least as gracefully as D-TDMA/FR (rama={rama}, fr={fr})"
    );
}

#[test]
fn charisma_delivers_more_data_with_less_delay_than_fixed_baselines() {
    let cfg = mixed_config(30, 8);
    let scenario = Scenario::new(cfg);
    let charisma = scenario.run(ProtocolKind::Charisma);
    let fr = scenario.run(ProtocolKind::DTdmaFr);
    assert!(
        charisma.data_throughput_per_frame() >= fr.data_throughput_per_frame(),
        "CHARISMA data throughput {} must be at least D-TDMA/FR's {}",
        charisma.data_throughput_per_frame(),
        fr.data_throughput_per_frame()
    );
    assert!(
        charisma.data_delay_secs() <= fr.data_delay_secs() + 0.05,
        "CHARISMA data delay {} must not exceed D-TDMA/FR's {}",
        charisma.data_delay_secs(),
        fr.data_delay_secs()
    );
}

#[test]
fn request_queue_never_hurts_charisma_and_helps_it_most() {
    let mut without = mixed_config(60, 6);
    without.request_queue = false;
    let mut with = without.clone();
    with.request_queue = true;

    let loss_without = Scenario::new(without)
        .run(ProtocolKind::Charisma)
        .voice_loss_rate();
    let loss_with = Scenario::new(with)
        .run(ProtocolKind::Charisma)
        .voice_loss_rate();
    assert!(
        loss_with <= loss_without + 2e-3,
        "adding the request queue must not hurt CHARISMA (with={loss_with}, without={loss_without})"
    );
}

#[test]
fn adding_data_users_reduces_voice_capacity() {
    // Paper Section 5.1: each additional block of data users costs roughly
    // 20% of voice capacity.  We check the direction of the effect.
    let without_data = voice_config(80);
    let with_data = mixed_config(80, 10);
    let scenario_a = Scenario::new(without_data);
    let scenario_b = Scenario::new(with_data);
    for p in [ProtocolKind::DTdmaFr, ProtocolKind::Rama] {
        let a = scenario_a.run(p).voice_loss_rate();
        let b = scenario_b.run(p).voice_loss_rate();
        assert!(
            b >= a - 1e-3,
            "{p}: adding data users must not reduce voice loss (without={a}, with={b})"
        );
    }
}

#[test]
fn common_platform_presents_identical_traffic_to_every_protocol() {
    // The "common simulation platform" property: for a fixed seed every
    // protocol sees the same generated voice packets and data arrivals.
    let cfg = mixed_config(25, 5);
    let scenario = Scenario::new(cfg);
    let reference = scenario.run(ProtocolKind::DTdmaFr);
    for p in ProtocolKind::ALL {
        let r = scenario.run(p);
        assert_eq!(
            r.metrics.voice.generated, reference.metrics.voice.generated,
            "{p} saw a different number of generated voice packets"
        );
        assert_eq!(
            r.metrics.data.arrived, reference.metrics.data.arrived,
            "{p} saw a different number of data arrivals"
        );
    }
}

#[test]
fn all_protocols_are_deterministic_across_repeated_runs() {
    let cfg = mixed_config(15, 3);
    let scenario = Scenario::new(cfg);
    for p in ProtocolKind::ALL {
        let a = scenario.run(p);
        let b = scenario.run(p);
        assert_eq!(a, b, "{p} is not reproducible for a fixed seed");
    }
}
