//! Integration tests of the platform layers working together: channel → CSI →
//! adaptive PHY → scheduling, plus contention statistics and slot accounting
//! across protocols.

use charisma::des::{RngStreams, SimDuration, SimTime, StreamId};
use charisma::phy::AdaptivePhy;
use charisma::radio::{ChannelConfig, CombinedChannel, CsiEstimator, CsiEstimatorConfig, Mobility};
use charisma::{ProtocolKind, Scenario, SimConfig};

#[test]
fn csi_estimates_track_the_true_channel_closely_within_their_validity_window() {
    // The CHARISMA design hinges on CSI being roughly constant for two frames
    // (5 ms) at 50 km/h.  Verify that the mode selected from a 2-frame-old
    // estimate agrees with the mode selected from the true channel in the
    // overwhelming majority of frames.
    let streams = RngStreams::new(404);
    let mut channel = CombinedChannel::new(
        ChannelConfig::default(),
        Mobility::new(50.0),
        streams.stream(StreamId::new(StreamId::DOMAIN_CHANNEL, 0)),
    );
    let mut estimator = CsiEstimator::new(
        CsiEstimatorConfig::default(),
        streams.stream(StreamId::new(StreamId::DOMAIN_ESTIMATION, 0)),
    );
    let phy = AdaptivePhy::default();

    let frame = SimDuration::from_micros(2_500);
    let mut t = SimTime::ZERO;
    let mut agreements = 0u32;
    let mut big_misses = 0u32;
    let total = 20_000u32;
    for _ in 0..total {
        let est = estimator.estimate(channel.snr_db_at(t), t);
        let later = t + frame * 2;
        let true_mode = phy.mode_for(channel.snr_db_at(later));
        let announced_mode = phy.mode_for(est.snr_db);
        if true_mode == announced_mode {
            agreements += 1;
        }
        if (true_mode.index() as i32 - announced_mode.index() as i32).abs() >= 2 {
            big_misses += 1;
        }
        t = later;
    }
    let agreement = agreements as f64 / total as f64;
    let miss = big_misses as f64 / total as f64;
    assert!(
        agreement > 0.35,
        "2-frame-old CSI should often select the same mode, got {agreement}"
    );
    assert!(
        miss < 0.2,
        "2-frame-old CSI should rarely be off by 2+ modes, got {miss}"
    );
}

#[test]
fn faster_terminals_make_stale_csi_less_reliable() {
    // The §5.3.3 mechanism: the same staleness hurts more at 80 km/h than at
    // 10 km/h.  Measured as mode disagreement over a 2-frame lag.
    let disagreement = |speed: f64| {
        let streams = RngStreams::new(505);
        let mut channel = CombinedChannel::new(
            ChannelConfig::default(),
            Mobility::new(speed),
            streams.stream(StreamId::new(StreamId::DOMAIN_CHANNEL, 9)),
        );
        let phy = AdaptivePhy::default();
        let frame = SimDuration::from_micros(2_500);
        let mut t = SimTime::ZERO;
        let mut disagreements = 0u32;
        let total = 20_000u32;
        for _ in 0..total {
            let before = phy.mode_for(channel.snr_db_at(t));
            let later = t + frame * 2;
            let after = phy.mode_for(channel.snr_db_at(later));
            if before != after {
                disagreements += 1;
            }
            t = later;
        }
        disagreements as f64 / total as f64
    };
    let slow = disagreement(10.0);
    let fast = disagreement(80.0);
    assert!(
        fast > slow,
        "mode churn at 80 km/h ({fast}) must exceed 10 km/h ({slow})"
    );
}

#[test]
fn contention_statistics_are_internally_consistent_for_every_protocol() {
    let mut cfg = SimConfig::quick_test();
    cfg.num_voice = 30;
    cfg.num_data = 6;
    cfg.warmup_frames = 400;
    cfg.measured_frames = 3_000;
    let scenario = Scenario::new(cfg);
    for p in ProtocolKind::ALL {
        let report = scenario.run(p);
        let c = &report.metrics.contention;
        assert!(
            c.successes + c.collisions <= c.attempts,
            "{p}: successes {} + collisions {} exceed attempts {}",
            c.successes,
            c.collisions,
            c.attempts
        );
        assert!((0.0..=1.0).contains(&c.collision_rate()), "{p}");
        // Every protocol except RMAV should manage to acknowledge a healthy
        // number of requests at this moderate load.
        if p != ProtocolKind::Rmav {
            assert!(
                c.successes > 50,
                "{p}: only {} successful requests",
                c.successes
            );
        }
    }
}

#[test]
fn slot_utilisation_rises_with_load_for_the_fixed_rate_protocol() {
    let run = |num_voice: u32| {
        let mut cfg = SimConfig::quick_test();
        cfg.num_voice = num_voice;
        cfg.num_data = 0;
        cfg.warmup_frames = 400;
        cfg.measured_frames = 3_000;
        Scenario::new(cfg)
            .run(ProtocolKind::DTdmaFr)
            .metrics
            .slots
            .utilisation()
    };
    let light = run(10);
    let heavy = run(70);
    assert!(
        heavy > light + 0.2,
        "D-TDMA/FR slot utilisation should rise sharply with load (light {light}, heavy {heavy})"
    );
    assert!(
        heavy > 0.8,
        "near capacity the information subframe should be nearly full ({heavy})"
    );
}

#[test]
fn charisma_wastes_less_airtime_than_the_blind_adaptive_baseline() {
    // Section 5.3.1: CSI-blind allocation wastes slots on terminals in deep
    // fades; CHARISMA's deferral avoids most of that waste.
    let mut cfg = SimConfig::quick_test();
    cfg.num_voice = 60;
    cfg.num_data = 5;
    cfg.warmup_frames = 400;
    cfg.measured_frames = 4_000;
    let scenario = Scenario::new(cfg);
    let charisma = scenario
        .run(ProtocolKind::Charisma)
        .metrics
        .slots
        .waste_rate();
    let vr = scenario
        .run(ProtocolKind::DTdmaVr)
        .metrics
        .slots
        .waste_rate();
    assert!(
        charisma <= vr + 1e-3,
        "CHARISMA waste rate {charisma} should not exceed the CSI-blind baseline's {vr}"
    );
}

#[test]
fn voice_only_and_mixed_scenarios_preserve_voice_priority() {
    // Voice loss in a mixed scenario should stay close to the voice-only loss
    // for CHARISMA, because data never outranks voice in the priority metric.
    let mut voice_only = SimConfig::quick_test();
    voice_only.num_voice = 40;
    voice_only.num_data = 0;
    voice_only.warmup_frames = 400;
    voice_only.measured_frames = 4_000;
    let mut mixed = voice_only.clone();
    mixed.num_data = 10;

    let lone = Scenario::new(voice_only)
        .run(ProtocolKind::Charisma)
        .voice_loss_rate();
    let with_data = Scenario::new(mixed)
        .run(ProtocolKind::Charisma)
        .voice_loss_rate();
    assert!(
        with_data < lone + 0.01,
        "adding data users must not visibly degrade CHARISMA voice QoS (alone {lone}, mixed {with_data})"
    );
}
