//! Determinism regression tests: a scenario is a pure function of
//! (`SimConfig`, protocol), no matter how often it runs or how many threads
//! execute the surrounding sweep.  This is the property every later
//! performance PR (sharding, batching, parallel sweeps) must preserve.
//!
//! The campaign-layer tests extend the property one level up: a registry
//! campaign's rendered CSV bytes are a pure function of (campaign, frame
//! budget), across repeats and across sweep thread counts.

use charisma::{
    run_sweep, FrameBudget, ProtocolKind, ReplicationPolicy, Scenario, SimConfig, SweepPoint,
};
use charisma_bench::{registry, BenchProfile};

fn config(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::quick_test();
    cfg.num_voice = 25;
    cfg.num_data = 3;
    cfg.seed = seed;
    cfg.warmup_frames = 300;
    cfg.measured_frames = 2_400; // 6 s
    cfg
}

#[test]
fn identical_config_and_seed_give_byte_identical_reports() {
    for protocol in [
        ProtocolKind::Charisma,
        ProtocolKind::DTdmaFr,
        ProtocolKind::Drma,
    ] {
        let a = Scenario::new(config(0xDE7E_2017)).run(protocol);
        let b = Scenario::new(config(0xDE7E_2017)).run(protocol);
        assert_eq!(a, b, "{protocol:?}: reports differ structurally");
        // Byte-identical, not merely equal: the serialised form downstream
        // tooling persists must also be reproducible.
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{protocol:?}: serialised reports differ"
        );
    }
}

#[test]
fn different_seeds_actually_change_the_sample_path() {
    let a = Scenario::new(config(1)).run(ProtocolKind::Charisma);
    let b = Scenario::new(config(2)).run(ProtocolKind::Charisma);
    assert_ne!(a, b, "changing the master seed must change the run");
}

#[test]
fn sweep_results_are_independent_of_thread_count() {
    let points: Vec<SweepPoint> = ProtocolKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &protocol)| SweepPoint {
            load: i as f64,
            protocol,
            config: config(0xBEEF + i as u64),
        })
        .collect();

    let serial = run_sweep(points.clone(), 1);
    let parallel = run_sweep(points, 4);

    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel.iter()) {
        assert_eq!(s.load, p.load, "sweep reordered its points");
        assert_eq!(s.protocol, p.protocol, "sweep reordered its protocols");
        assert_eq!(
            s.report, p.report,
            "{:?}: serial vs 4-thread reports differ",
            s.protocol
        );
        assert_eq!(
            format!("{:?}", s.report),
            format!("{:?}", p.report),
            "{:?}: serialised serial vs 4-thread reports differ",
            s.protocol
        );
    }
}

/// The registry's `fig11` campaign, miniaturised for a debug-build test: the
/// full `campaign run fig11 --profile quick` shape (all panels, both queue
/// variants, the same expansion/render code path), but with trimmed grids,
/// a three-protocol subset and a ~1/6 frame budget so the 2x2 run matrix
/// below stays inside unit-test time.  The released binary runs the
/// untrimmed campaign through exactly the same `Campaign::run` + `to_csv`
/// calls this test exercises.
fn mini_fig11() -> charisma::Campaign {
    let mut campaign =
        registry::build_campaign("fig11", BenchProfile::Quick).expect("fig11 is a sweep campaign");
    for spec in &mut campaign.specs {
        spec.protocols = vec![
            ProtocolKind::Charisma,
            ProtocolKind::DTdmaFr,
            ProtocolKind::Rmav,
        ];
        spec.voice_users = vec![10, 25];
        spec.data_users = vec![0, 2];
    }
    campaign
}

fn mini_budget() -> FrameBudget {
    FrameBudget {
        warmup: 120,
        measured: 720,
    }
}

#[test]
fn campaign_csv_bytes_are_identical_across_runs() {
    let campaign = mini_fig11();
    let a = campaign.run(mini_budget(), 1).unwrap().to_csv();
    let b = campaign.run(mini_budget(), 1).unwrap().to_csv();
    assert!(!a.is_empty());
    assert_eq!(a, b, "two identical campaign runs rendered different CSVs");
}

#[test]
fn campaign_csv_bytes_are_identical_across_sweep_thread_counts() {
    let campaign = mini_fig11();
    let serial = campaign.run(mini_budget(), 1).unwrap().to_csv();
    let parallel = campaign.run(mini_budget(), 4).unwrap().to_csv();
    assert_eq!(
        serial, parallel,
        "campaign CSV must not depend on the sweep thread count"
    );
    // Sanity: the mini campaign still covers every (queue, Nd) panel.
    let lines: Vec<&str> = serial.lines().collect();
    // Header + (2 off-queue protocols incl. RMAV, 2 on-queue protocols
    // excl. RMAV... ) — count data rows explicitly:
    // off-queue: 3 protocols x 2 Nd x 2 Nv = 12; on-queue: 2 x 2 x 2 = 8.
    assert_eq!(lines.len(), 1 + 12 + 8);
    assert!(lines[0].starts_with("scenario,protocol,request_queue"));
    assert!(serial.contains("RMAV,false"));
    assert!(!serial.contains("RMAV,true"), "RMAV has no queue variant");
}

/// A two-protocol, four-point slice of the fig11 campaign shape, kept tiny
/// because the replication matrix below runs it 3 x 3 times in a debug
/// build.
fn micro_fig11() -> charisma::Campaign {
    let mut campaign = mini_fig11();
    for spec in &mut campaign.specs {
        spec.protocols = vec![ProtocolKind::Charisma, ProtocolKind::DTdmaFr];
        spec.voice_users = vec![12];
        spec.data_users = vec![0, 2];
        spec.request_queue = charisma::QueueToggle::Off;
    }
    campaign
}

/// The registry's `multicell_baseline` campaign, miniaturised: the full
/// 7-cell hex system with mobility, path loss and handoff, but two
/// protocols, one grid point and a short budget so the thread matrix stays
/// inside unit-test time.
fn mini_multicell() -> charisma::Campaign {
    let mut campaign = registry::build_campaign("multicell_baseline", BenchProfile::Quick)
        .expect("multicell_baseline is a sweep campaign");
    for spec in &mut campaign.specs {
        spec.protocols = vec![ProtocolKind::Charisma, ProtocolKind::DTdmaFr];
        spec.voice_users = vec![8];
        spec.data_users = vec![2];
    }
    campaign
}

#[test]
fn multicell_campaign_csv_bytes_are_identical_across_runs_and_threads() {
    // The multi-cell acceptance property: a system run (cells, mobility,
    // path loss, handoff) is one sequential unit of work per sweep point,
    // so its campaign CSV — and every handoff counter behind it — is
    // byte-identical across repeats and across sweep worker counts.
    let campaign = mini_multicell();
    let serial = campaign.run(mini_budget(), 1).unwrap();
    let again = campaign.run(mini_budget(), 1).unwrap();
    let parallel = campaign.run(mini_budget(), 4).unwrap();
    assert_eq!(
        serial.to_csv(),
        again.to_csv(),
        "multicell campaign CSV differs across runs"
    );
    assert_eq!(
        serial.to_csv(),
        parallel.to_csv(),
        "multicell campaign CSV must not depend on the sweep thread count"
    );
    // The handoff counters (not part of the uniform CSV) must agree too.
    for (s, p) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(
            s.report.metrics.handoff, p.report.metrics.handoff,
            "handoff counters differ across thread counts"
        );
        assert_eq!(s.report.metrics.per_cell, p.report.metrics.per_cell);
        assert_eq!(s.report.metrics.per_cell.len(), 7, "7-cell system expected");
    }
    // Terminals actually roam in this miniature too.
    assert!(
        serial
            .rows
            .iter()
            .all(|r| r.report.metrics.handoff.successes > 0),
        "expected nonzero handoffs in every row"
    );
}

/// Sets the intra-point worker-thread count on every spec of a campaign.
fn with_system_threads(mut campaign: charisma::Campaign, threads: u32) -> charisma::Campaign {
    for spec in &mut campaign.specs {
        spec.system_threads = threads;
    }
    campaign
}

/// The registry's `handoff_stress` campaign, miniaturised: the 3-cell
/// corridor under admission pressure (both the drop-on-full and the queue
/// scenarios), with a short budget for the thread matrix below.
fn mini_handoff_stress() -> charisma::Campaign {
    let mut campaign = registry::build_campaign("handoff_stress", BenchProfile::Quick)
        .expect("handoff_stress is a sweep campaign");
    for spec in &mut campaign.specs {
        spec.protocols = vec![ProtocolKind::Charisma];
        spec.voice_users = vec![10];
        spec.data_users = vec![2];
        spec.handoff.cell_capacity = 13;
    }
    campaign
}

/// The registry's `city_scale` campaign, miniaturised: the full 127-cell
/// hexagonal city stepped by the sharded frame loop, with tiny per-cell
/// populations and a short budget so the debug-build thread matrix stays
/// inside unit-test time.
fn mini_city() -> charisma::Campaign {
    let mut campaign = registry::build_campaign("city_scale", BenchProfile::Quick)
        .expect("city_scale is a sweep campaign");
    for spec in &mut campaign.specs {
        spec.protocols = vec![ProtocolKind::Charisma];
        spec.voice_users = vec![2];
        spec.data_users = vec![1];
    }
    campaign
}

#[test]
fn sharded_multicell_campaign_is_byte_identical_at_any_thread_count() {
    // The tentpole acceptance property: the campaign CSV bytes of a
    // multi-cell entry are a pure function of the campaign, regardless of
    // how many worker threads step the cells inside each sweep point.
    // Thread count 0 is the single-threaded round-robin path; 2 and 4
    // exercise the sharded path with cells dealt across workers (4 does not
    // divide 7, so the deal is uneven too).
    let reference = with_system_threads(mini_multicell(), 0)
        .run(mini_budget(), 1)
        .unwrap()
        .to_csv();
    for threads in [1u32, 2, 4] {
        let sharded = with_system_threads(mini_multicell(), threads)
            .run(mini_budget(), 1)
            .unwrap()
            .to_csv();
        assert_eq!(
            reference, sharded,
            "multicell_baseline CSV diverged at system_threads={threads}"
        );
    }
}

#[test]
fn sharded_handoff_stress_campaign_is_byte_identical_at_any_thread_count() {
    // Same property under admission pressure: refused and queued handoffs
    // travel through the per-frame mailboxes, so the serial merge order —
    // not the worker schedule — decides who gets the last admission slot.
    let reference = with_system_threads(mini_handoff_stress(), 0)
        .run(mini_budget(), 1)
        .unwrap()
        .to_csv();
    for threads in [2u32, 4] {
        let sharded = with_system_threads(mini_handoff_stress(), threads)
            .run(mini_budget(), 1)
            .unwrap()
            .to_csv();
        assert_eq!(
            reference, sharded,
            "handoff_stress CSV diverged at system_threads={threads}"
        );
    }
}

#[test]
fn sharded_city_scale_campaign_is_byte_identical_at_any_thread_count() {
    // The 127-cell city entry ships with system_threads = 4 in the
    // registry; its CSV must match the round-robin bytes exactly.
    let budget = FrameBudget {
        warmup: 60,
        measured: 240,
    };
    let reference = with_system_threads(mini_city(), 0)
        .run(budget, 1)
        .unwrap()
        .to_csv();
    for threads in [2u32, 4] {
        let sharded = with_system_threads(mini_city(), threads)
            .run(budget, 1)
            .unwrap()
            .to_csv();
        assert_eq!(
            reference, sharded,
            "city_scale CSV diverged at system_threads={threads}"
        );
    }
}

#[test]
fn sharded_frames_never_lose_or_duplicate_terminals() {
    // The mailbox-merge conservation property, checked through the public
    // system API with the sharded path active: after a run full of
    // migrations on 4 worker threads, every terminal is attached exactly
    // once and the per-cell occupancy statistics account for the whole
    // population in every measured frame.
    let mut cfg = SimConfig::quick_test();
    cfg.num_voice = 6;
    cfg.num_data = 2;
    cfg.warmup_frames = 200;
    cfg.measured_frames = 1_600;
    let mut system = charisma::SystemConfig::new(7);
    system.layout = charisma::Layout::Hex {
        cell_radius_m: 100.0,
    };
    system.handoff.hysteresis_m = 5.0;
    system.threads = 4;
    cfg.system = Some(system);
    let mut world = charisma::SystemWorld::new(cfg.clone(), ProtocolKind::Charisma);
    let report = world.run();
    let total = 7 * (cfg.num_voice + cfg.num_data) as usize;
    let ids = world.attached_ids_sorted();
    assert_eq!(ids.len(), total, "population size changed");
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(id.index() as usize, i, "terminal set changed");
    }
    assert!(
        report.metrics.handoff.successes > 0,
        "expected migrations: {:?}",
        report.metrics.handoff
    );
    let mean_population: f64 = report
        .metrics
        .per_cell
        .iter()
        .map(|c| c.occupancy.mean())
        .sum();
    assert!(
        (mean_population - total as f64).abs() < 1e-6,
        "occupancy means sum to {mean_population}, expected {total}"
    );
}

/// Compares `bytes` against the committed golden file `tests/golden/<name>`,
/// or rewrites the file when `CHARISMA_UPDATE_GOLDEN` is set.
///
/// The golden files were captured from the pre-SoA (PR 8) AoS frame core;
/// they pin the exact report bytes of the fig11 / multicell_baseline /
/// city_scale miniatures so any layout refactor that perturbs a single RNG
/// draw or float operation fails loudly rather than drifting silently.
fn golden_check(name: &str, bytes: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("CHARISMA_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, bytes).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        bytes, expected,
        "{name}: report bytes diverged from the pre-refactor golden capture"
    );
}

#[test]
fn golden_bytes_fig11_miniature() {
    let csv = mini_fig11().run(mini_budget(), 1).unwrap().to_csv();
    golden_check("fig11_quick.csv", &csv);
}

#[test]
fn golden_bytes_multicell_miniature_at_1_and_4_threads() {
    for threads in [1u32, 4] {
        let csv = with_system_threads(mini_multicell(), threads)
            .run(mini_budget(), 1)
            .unwrap()
            .to_csv();
        golden_check("multicell_baseline_quick.csv", &csv);
    }
}

#[test]
fn golden_bytes_city_scale_miniature_at_1_and_4_threads() {
    let budget = FrameBudget {
        warmup: 60,
        measured: 240,
    };
    for threads in [1u32, 4] {
        let csv = with_system_threads(mini_city(), threads)
            .run(budget, 1)
            .unwrap()
            .to_csv();
        golden_check("city_scale_quick.csv", &csv);
    }
}

#[test]
fn replicated_campaign_csv_bytes_are_identical_across_runs_and_threads() {
    // The replication engine on the real fig11 campaign shape: every point
    // runs R = 3 independent replications on derived seed streams, and the
    // rendered CSV — means, CI half-widths, reps column — must be
    // byte-identical across repeats and across sweep thread counts.
    let campaign = micro_fig11();
    let policy = ReplicationPolicy::fixed(3);
    let serial = campaign
        .run_replicated(mini_budget(), policy, 1)
        .unwrap()
        .to_csv();
    let again = campaign
        .run_replicated(mini_budget(), policy, 1)
        .unwrap()
        .to_csv();
    let parallel = campaign
        .run_replicated(mini_budget(), policy, 4)
        .unwrap()
        .to_csv();
    assert_eq!(serial, again, "replicated campaign CSV differs across runs");
    assert_eq!(
        serial, parallel,
        "replicated campaign CSV must not depend on the sweep thread count"
    );
    // Every data row reports its replication count and carries the two CI
    // columns of each metric.
    let lines: Vec<&str> = serial.lines().collect();
    assert!(lines[0].contains("reps,voice_loss_rate,voice_loss_ci95"));
    for line in &lines[1..] {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), lines[0].split(',').count());
        assert_eq!(fields[7], "3", "reps column: {line}");
    }
}
