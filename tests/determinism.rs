//! Determinism regression tests: a scenario is a pure function of
//! (`SimConfig`, protocol), no matter how often it runs or how many threads
//! execute the surrounding sweep.  This is the property every later
//! performance PR (sharding, batching, parallel sweeps) must preserve.

use charisma::{run_sweep, ProtocolKind, Scenario, SimConfig, SweepPoint};

fn config(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::quick_test();
    cfg.num_voice = 25;
    cfg.num_data = 3;
    cfg.seed = seed;
    cfg.warmup_frames = 300;
    cfg.measured_frames = 2_400; // 6 s
    cfg
}

#[test]
fn identical_config_and_seed_give_byte_identical_reports() {
    for protocol in [
        ProtocolKind::Charisma,
        ProtocolKind::DTdmaFr,
        ProtocolKind::Drma,
    ] {
        let a = Scenario::new(config(0xDE7E_2017)).run(protocol);
        let b = Scenario::new(config(0xDE7E_2017)).run(protocol);
        assert_eq!(a, b, "{protocol:?}: reports differ structurally");
        // Byte-identical, not merely equal: the serialised form downstream
        // tooling persists must also be reproducible.
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{protocol:?}: serialised reports differ"
        );
    }
}

#[test]
fn different_seeds_actually_change_the_sample_path() {
    let a = Scenario::new(config(1)).run(ProtocolKind::Charisma);
    let b = Scenario::new(config(2)).run(ProtocolKind::Charisma);
    assert_ne!(a, b, "changing the master seed must change the run");
}

#[test]
fn sweep_results_are_independent_of_thread_count() {
    let points: Vec<SweepPoint> = ProtocolKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &protocol)| SweepPoint {
            load: i as f64,
            protocol,
            config: config(0xBEEF + i as u64),
        })
        .collect();

    let serial = run_sweep(points.clone(), 1);
    let parallel = run_sweep(points, 4);

    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel.iter()) {
        assert_eq!(s.load, p.load, "sweep reordered its points");
        assert_eq!(s.protocol, p.protocol, "sweep reordered its protocols");
        assert_eq!(
            s.report, p.report,
            "{:?}: serial vs 4-thread reports differ",
            s.protocol
        );
        assert_eq!(
            format!("{:?}", s.report),
            format!("{:?}", p.report),
            "{:?}: serialised serial vs 4-thread reports differ",
            s.protocol
        );
    }
}
