//! The combined per-terminal uplink channel `c(t) = c_l(t) · c_s(t)` and its
//! mapping to an instantaneous channel state (SNR in dB).

use crate::fading::{LongTermShadowing, ShadowingConfig, ShortTermFading};
use crate::mobility::Mobility;
use charisma_des::{SimDuration, SimTime, Xoshiro256StarStar};
use serde::{Deserialize, Serialize};

/// How the simulation advances a terminal's fading channel along the frame
/// grid.
///
/// Both modes sample the *same* AR(1) processes; they differ only in when the
/// random innovations are drawn (see the coalescing invariant documented in
/// [`crate::fading`]), so they produce different but statistically equivalent
/// sample paths.  Switching a scenario between modes is therefore a one-time
/// determinism-trajectory change, not a model change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ChannelMode {
    /// Advance every terminal's channel at every frame boundary and recompute
    /// the SNR at every query.  This reproduces the pre-optimisation hot path
    /// (two `exp` calls per terminal per frame plus repeated dB conversions)
    /// and is retained as the baseline the `bench_frame_loop` benchmark
    /// measures speedups against.
    Eager,
    /// Advance a terminal's channel only when its SNR is actually sampled,
    /// coalescing all frames since the last sample into one AR(1) step, and
    /// cache the per-frame SNR so repeated queries within a frame are free.
    /// Idle terminals (no packet, no grant, no contention) skip channel work
    /// entirely.  The default.
    #[default]
    Lazy,
}

/// Configuration of a terminal's uplink channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Mean received SNR in dB when the combined fading gain is unity.  This
    /// sets the operating point of the adaptive PHY: with the default ABICM
    /// thresholds a mean of ~18 dB puts the typical terminal in the middle of
    /// the adaptation range.
    pub mean_snr_db: f64,
    /// Long-term shadowing parameters.
    pub shadowing: ShadowingConfig,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            mean_snr_db: 18.0,
            shadowing: ShadowingConfig::default(),
        }
    }
}

/// The combined fading channel of a single terminal.
///
/// The channel is advanced lazily: callers ask for the state at an absolute
/// simulation time and the internal processes are stepped forward by the
/// elapsed interval.  Requests for the *same* time return the same state, so
/// the MAC layer and the PHY observe one consistent channel per frame.
#[derive(Debug, Clone)]
pub struct CombinedChannel {
    config: ChannelConfig,
    mobility: Mobility,
    short: ShortTermFading,
    long: LongTermShadowing,
    rng: Xoshiro256StarStar,
    now: SimTime,
}

impl CombinedChannel {
    /// Creates a channel for a terminal with the given mobility, drawing the
    /// initial fading state from the stationary distributions.
    pub fn new(config: ChannelConfig, mobility: Mobility, mut rng: Xoshiro256StarStar) -> Self {
        let short = ShortTermFading::new(mobility.coherence_time(), &mut rng);
        let long = LongTermShadowing::new(config.shadowing, &mut rng);
        CombinedChannel {
            config,
            mobility,
            short,
            long,
            rng,
            now: SimTime::ZERO,
        }
    }

    /// The channel configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// The terminal's mobility parameters.
    pub fn mobility(&self) -> &Mobility {
        &self.mobility
    }

    /// Re-points the channel's mean SNR (dB): the multi-cell system layer
    /// updates it every frame from the terminal's distance to its serving
    /// base station (path loss + site shadowing).  The fading processes are
    /// untouched — they ride on top of whatever mean is current when the SNR
    /// is sampled.
    pub fn set_mean_snr_db(&mut self, mean_snr_db: f64) {
        assert!(mean_snr_db.is_finite(), "mean SNR must be finite");
        self.config.mean_snr_db = mean_snr_db;
    }

    /// The simulation time the channel state currently refers to.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the channel to `t`, coalescing the whole elapsed interval
    /// into one AR(1) step per process (the lazy-evaluation fast path; exact
    /// for AR(1), see [`crate::fading`]).  Panics if `t` is in the past:
    /// fading processes cannot be rewound.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "channel cannot be advanced backwards (now {}, asked {t})",
            self.now
        );
        let dt = t.duration_since(self.now);
        if dt.is_zero() {
            return;
        }
        self.short.step(dt, &mut self.rng);
        self.long.step(dt, &mut self.rng);
        self.now = t;
    }

    /// Advances the channel to `t` exactly as the pre-optimisation simulator
    /// did: one uncached AR(1) step over the elapsed interval, recomputing
    /// the `exp`/`sqrt` step coefficients on every call.  Used by
    /// [`ChannelMode::Eager`] runs so the frame-loop benchmark has a faithful
    /// "before" baseline to measure against.
    pub fn advance_to_eager(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "channel cannot be advanced backwards (now {}, asked {t})",
            self.now
        );
        let dt = t.duration_since(self.now);
        if dt.is_zero() {
            return;
        }
        self.short.step_uncached(dt, &mut self.rng);
        self.long.step_uncached(dt, &mut self.rng);
        self.now = t;
    }

    /// The combined amplitude gain `c = c_l · c_s` at the current time.
    pub fn gain_linear(&self) -> f64 {
        self.long.local_mean_linear() * self.short.envelope()
    }

    /// The combined gain in dB (`20·log10(c)`); `-inf` is clamped to a very
    /// low but finite value so downstream arithmetic stays well defined.
    pub fn gain_db(&self) -> f64 {
        let g = self.gain_linear();
        if g <= 1e-12 {
            -240.0
        } else {
            20.0 * g.log10()
        }
    }

    /// The instantaneous channel state (received SNR in dB) presented to the
    /// adaptive PHY: the mean SNR plus the instantaneous fading gain.
    pub fn snr_db(&self) -> f64 {
        self.config.mean_snr_db + self.gain_db()
    }

    /// Convenience: advance to `t` and return the SNR there.
    pub fn snr_db_at(&mut self, t: SimTime) -> f64 {
        self.advance_to(t);
        self.snr_db()
    }

    /// Decomposes the channel into its constituent state so a columnar store
    /// (the core crate's `TerminalColumns`) can keep each piece in its own
    /// parallel array.  The parts are exactly the channel's fields; rebuilding
    /// the same behaviour requires advancing `short`/`long` with draws from
    /// `rng` in that order (short first, then long — the order `advance_to`
    /// uses) and tracking `now` alongside.
    pub fn into_parts(self) -> ChannelParts {
        ChannelParts {
            config: self.config,
            mobility: self.mobility,
            short: self.short,
            long: self.long,
            rng: self.rng,
            now: self.now,
        }
    }

    /// Generates a fading trace sampled every `step` for `n` samples starting
    /// at the current time.  Returns `(time, short_term_db, long_term_db,
    /// combined_snr_db)` rows; used by the Fig. 5 reproduction.
    pub fn trace(&mut self, step: SimDuration, n: usize) -> Vec<(SimTime, f64, f64, f64)> {
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let t = self.now + step;
            self.advance_to(t);
            let short_db = 20.0 * self.short.envelope().max(1e-12).log10();
            let long_db = self.long.local_mean_db();
            rows.push((t, short_db, long_db, self.snr_db()));
        }
        rows
    }
}

/// The decomposed state of a [`CombinedChannel`] (see
/// [`CombinedChannel::into_parts`]).  Field invariants:
///
/// * `short` was seeded *before* `long` from `rng` (two standard normals,
///   then one), and subsequent AR(1) steps must keep drawing short-then-long
///   from the same `rng` to reproduce the channel's sample path.
/// * `now` is the simulation time the fading state refers to; steps advance
///   it monotonically.
/// * `config.mean_snr_db` is the operating point added on top of the fading
///   gain when the SNR is sampled.
#[derive(Debug, Clone)]
pub struct ChannelParts {
    /// Channel configuration (mean SNR operating point + shadowing params).
    pub config: ChannelConfig,
    /// The terminal's mobility parameters (speed, Doppler).
    pub mobility: Mobility,
    /// Short-term Rayleigh fading process.
    pub short: ShortTermFading,
    /// Long-term log-normal shadowing process.
    pub long: LongTermShadowing,
    /// The channel's dedicated innovation stream.
    pub rng: Xoshiro256StarStar,
    /// Simulation time the fading state refers to.
    pub now: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_des::{RngStreams, StreamId};

    fn channel(seed: u64, speed: f64) -> CombinedChannel {
        let streams = RngStreams::new(seed);
        CombinedChannel::new(
            ChannelConfig::default(),
            Mobility::new(speed),
            streams.stream(StreamId::new(StreamId::DOMAIN_CHANNEL, 0)),
        )
    }

    #[test]
    fn advancing_to_same_time_is_stable() {
        let mut ch = channel(1, 50.0);
        let t = SimTime::from_micros(2_500);
        ch.advance_to(t);
        let a = ch.snr_db();
        ch.advance_to(t);
        assert_eq!(a, ch.snr_db());
    }

    #[test]
    #[should_panic(expected = "advanced backwards")]
    fn cannot_rewind() {
        let mut ch = channel(2, 50.0);
        ch.advance_to(SimTime::from_micros(5_000));
        ch.advance_to(SimTime::from_micros(2_500));
    }

    #[test]
    fn mean_snr_is_close_to_configured_operating_point() {
        // E[20·log10(c_s)] for Rayleigh is about −2.5 dB; with 0-mean shadowing
        // the long-run average SNR in dB sits a little below mean_snr_db.
        let mut ch = channel(3, 50.0);
        let n = 40_000;
        let mut sum = 0.0;
        let mut t = SimTime::ZERO;
        for _ in 0..n {
            t += SimDuration::from_millis(25);
            sum += ch.snr_db_at(t);
        }
        let mean = sum / n as f64;
        assert!((mean - (18.0 - 2.5)).abs() < 1.0, "mean SNR {mean} dB");
    }

    #[test]
    fn independent_terminals_have_independent_channels() {
        let streams = RngStreams::new(77);
        let mk = |i: u32| {
            CombinedChannel::new(
                ChannelConfig::default(),
                Mobility::new(50.0),
                streams.stream(StreamId::new(StreamId::DOMAIN_CHANNEL, i)),
            )
        };
        let mut a = mk(0);
        let mut b = mk(1);
        let n = 20_000;
        let mut t = SimTime::ZERO;
        let (mut sa, mut sb, mut sab, mut saa, mut sbb) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for _ in 0..n {
            t += SimDuration::from_millis(25);
            let x = a.snr_db_at(t);
            let y = b.snr_db_at(t);
            sa += x;
            sb += y;
            sab += x * y;
            saa += x * x;
            sbb += y * y;
        }
        let nf = n as f64;
        let cov = sab / nf - (sa / nf) * (sb / nf);
        let corr = cov
            / (((saa / nf) - (sa / nf).powi(2)).sqrt() * ((sbb / nf) - (sb / nf).powi(2)).sqrt());
        assert!(corr.abs() < 0.05, "cross-terminal SNR correlation {corr}");
    }

    #[test]
    fn faster_terminals_decorrelate_faster() {
        // Frame-to-frame SNR change should be larger at 80 km/h than at 10 km/h.
        let avg_abs_delta = |speed: f64, seed: u64| {
            let mut ch = channel(seed, speed);
            let mut t = SimTime::ZERO;
            let mut prev = ch.snr_db_at(t);
            let mut acc = 0.0;
            let n = 20_000;
            for _ in 0..n {
                t += SimDuration::from_micros(2_500);
                let cur = ch.snr_db_at(t);
                acc += (cur - prev).abs();
                prev = cur;
            }
            acc / n as f64
        };
        let slow = avg_abs_delta(10.0, 5);
        let fast = avg_abs_delta(80.0, 5);
        assert!(
            fast > 1.5 * slow,
            "fast {fast} dB vs slow {slow} dB per frame"
        );
    }

    #[test]
    fn trace_has_requested_length_and_monotone_time() {
        let mut ch = channel(9, 50.0);
        let rows = ch.trace(SimDuration::from_millis(1), 500);
        assert_eq!(rows.len(), 500);
        for w in rows.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
        // combined = mean + short_db + long_db (within numerical tolerance)
        for &(_, s_db, l_db, snr) in &rows {
            assert!((snr - (18.0 + s_db + l_db)).abs() < 1e-9);
        }
    }

    #[test]
    fn gain_db_handles_deep_fades() {
        let mut ch = channel(11, 80.0);
        let mut t = SimTime::ZERO;
        for _ in 0..50_000 {
            t += SimDuration::from_micros(2_500);
            ch.advance_to(t);
            let g = ch.gain_db();
            assert!(g.is_finite());
            assert!(g >= -240.0);
        }
    }
}
