//! Distance-based path loss feeding each terminal's mean SNR.
//!
//! The paper evaluates its protocols inside one cell, where every terminal
//! shares the same *mean* SNR and only the fading processes differ.  The
//! multi-cell system layer places terminals on a 2-D plane, so the mean SNR
//! becomes a function of the distance to the serving base station: the
//! classic log-distance model
//!
//! ```text
//! SNR̄(d) = SNR_ref − 10·n·log10(max(d, d_ref) / d_ref) + X_site
//! ```
//!
//! with path-loss exponent `n`, reference distance `d_ref`, and a
//! log-normal *site shadowing* term `X_site ~ N(0, σ²)` in dB redrawn per
//! (terminal, serving cell) attachment — the slowly varying terrain component
//! that differs from one base-station link to another.  The existing AR(1)
//! short-term fading and long-term shadowing processes ride on top of this
//! mean unchanged, so a single-cell run with `n = 0` and `σ = 0` reproduces
//! the paper's flat-mean channel exactly.

use charisma_des::{Sampler, Xoshiro256StarStar};
use serde::{Deserialize, Serialize};

/// Log-distance path-loss parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathLossConfig {
    /// Path-loss exponent `n` (0 disables the distance dependence; ~2 free
    /// space, 3–4 urban macro-cell).
    pub exponent: f64,
    /// Reference distance `d_ref` in metres; distances below it saturate at
    /// the reference SNR (the near-field clamp).
    pub reference_distance_m: f64,
    /// Mean received SNR in dB at the reference distance.
    pub snr_at_reference_db: f64,
    /// Standard deviation of the per-(terminal, cell) site shadowing in dB.
    pub site_shadowing_sigma_db: f64,
}

impl Default for PathLossConfig {
    /// An urban macro-cell calibration keeping the adaptive PHY inside its
    /// operating range across a default-radius cell: ~21 dB mean SNR at
    /// mid-cell, ~12 dB at the cell border.
    fn default() -> Self {
        PathLossConfig {
            exponent: 3.0,
            reference_distance_m: 25.0,
            snr_at_reference_db: 48.0,
            site_shadowing_sigma_db: 4.0,
        }
    }
}

impl PathLossConfig {
    /// A flat profile: every distance sees `snr_db`, no site shadowing.
    /// Makes a multi-cell run channel-equivalent to the paper's single-cell
    /// model (used by the cells=1 equivalence tests).
    pub fn flat(snr_db: f64) -> Self {
        PathLossConfig {
            exponent: 0.0,
            reference_distance_m: 1.0,
            snr_at_reference_db: snr_db,
            site_shadowing_sigma_db: 0.0,
        }
    }

    /// The mean SNR in dB at `distance_m` from the serving base station
    /// (before site shadowing and fading).
    pub fn mean_snr_db(&self, distance_m: f64) -> f64 {
        assert!(
            distance_m >= 0.0 && distance_m.is_finite(),
            "distance must be finite and non-negative, got {distance_m}"
        );
        let d = distance_m.max(self.reference_distance_m);
        self.snr_at_reference_db - 10.0 * self.exponent * (d / self.reference_distance_m).log10()
    }

    /// Draws the site-shadowing offset (dB) for one (terminal, cell)
    /// attachment.  Always consumes the same number of RNG draws, so a zero
    /// sigma changes values, never stream alignment.
    pub fn draw_site_shadow_db(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        Sampler::normal(rng, 0.0, self.site_shadowing_sigma_db)
    }

    /// Validates the parameters, panicking with a descriptive message.
    pub fn validate(&self) {
        assert!(
            self.exponent.is_finite() && self.exponent >= 0.0,
            "path-loss exponent must be finite and non-negative, got {}",
            self.exponent
        );
        assert!(
            self.reference_distance_m.is_finite() && self.reference_distance_m > 0.0,
            "path-loss reference distance must be positive, got {}",
            self.reference_distance_m
        );
        assert!(
            self.snr_at_reference_db.is_finite(),
            "path-loss reference SNR must be finite, got {}",
            self.snr_at_reference_db
        );
        assert!(
            self.site_shadowing_sigma_db.is_finite() && self.site_shadowing_sigma_db >= 0.0,
            "site shadowing sigma must be finite and non-negative, got {}",
            self.site_shadowing_sigma_db
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_loss_is_monotone_non_increasing_in_distance() {
        let pl = PathLossConfig::default();
        let mut prev = f64::INFINITY;
        for step in 0..2_000 {
            let d = step as f64 * 1.0;
            let snr = pl.mean_snr_db(d);
            assert!(
                snr <= prev + 1e-12,
                "SNR rose with distance: {snr} dB at {d} m after {prev} dB"
            );
            prev = snr;
        }
    }

    #[test]
    fn reference_distance_clamps_the_near_field() {
        let pl = PathLossConfig::default();
        assert_eq!(pl.mean_snr_db(0.0), pl.snr_at_reference_db);
        assert_eq!(
            pl.mean_snr_db(pl.reference_distance_m),
            pl.snr_at_reference_db
        );
        assert!(pl.mean_snr_db(pl.reference_distance_m * 2.0) < pl.snr_at_reference_db);
    }

    #[test]
    fn exponent_sets_the_decade_slope() {
        let pl = PathLossConfig {
            exponent: 3.5,
            ..PathLossConfig::default()
        };
        let d0 = pl.reference_distance_m;
        let drop = pl.mean_snr_db(d0) - pl.mean_snr_db(d0 * 10.0);
        assert!((drop - 35.0).abs() < 1e-9, "decade drop {drop} dB");
    }

    #[test]
    fn flat_profile_is_distance_independent() {
        let pl = PathLossConfig::flat(18.0);
        pl.validate();
        for d in [0.0, 1.0, 100.0, 10_000.0] {
            assert_eq!(pl.mean_snr_db(d), 18.0);
        }
        let mut rng = charisma_des::Xoshiro256StarStar::from_seed_u64(1);
        assert_eq!(pl.draw_site_shadow_db(&mut rng), 0.0);
    }

    #[test]
    fn default_keeps_the_adaptive_phy_operating_range() {
        // Across a 400 m cell the mean SNR should stay within the ABICM
        // adaptation range (roughly 0–35 dB) rather than saturating.
        let pl = PathLossConfig::default();
        let mid = pl.mean_snr_db(200.0);
        let edge = pl.mean_snr_db(480.0);
        assert!((15.0..30.0).contains(&mid), "mid-cell SNR {mid} dB");
        assert!((5.0..20.0).contains(&edge), "cell-edge SNR {edge} dB");
    }

    #[test]
    fn site_shadow_draws_match_the_sigma() {
        let pl = PathLossConfig {
            site_shadowing_sigma_db: 6.0,
            ..PathLossConfig::default()
        };
        let mut rng = charisma_des::Xoshiro256StarStar::from_seed_u64(42);
        let n = 20_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = pl.draw_site_shadow_db(&mut rng);
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let std = (sq / n as f64 - mean * mean).sqrt();
        assert!(mean.abs() < 0.2, "shadow mean {mean}");
        assert!((std - 6.0).abs() < 0.2, "shadow std {std}");
    }

    #[test]
    #[should_panic(expected = "reference distance")]
    fn zero_reference_distance_is_rejected() {
        PathLossConfig {
            reference_distance_m: 0.0,
            ..PathLossConfig::default()
        }
        .validate();
    }
}
