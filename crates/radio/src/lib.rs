//! # charisma-radio — wireless channel substrate
//!
//! Models the uplink radio channel of the paper (Section 4.2):
//!
//! * **Short-term (fast) fading** — Rayleigh-distributed envelope caused by
//!   multipath superposition, fluctuating on the order of a few milliseconds.
//!   The paper normalises it to unit mean-square power and ties its rate of
//!   change to the Doppler spread (`f_d ≈ 100 Hz` at the assumed 50 km/h mean
//!   speed, giving a coherence time `T_c ≈ 1/f_d ≈ 10 ms`).
//! * **Long-term shadowing** — log-normal "local mean" caused by terrain and
//!   obstacles, fluctuating over roughly one second.
//! * **Combined channel** — `c(t) = c_l(t) · c_s(t)`, independent across
//!   terminals because terminals are geographically scattered and move
//!   independently.
//! * **CSI estimation** — the base station estimates the channel from pilot
//!   symbols embedded in request packets (or obtained via CSI polling for
//!   backlogged requests); estimates carry a timestamp so the MAC layer can
//!   reason about staleness exactly as CHARISMA's CSI-refresh mechanism does.
//!
//! The fading processes are implemented as first-order Gauss–Markov
//! (autoregressive) processes whose single parameter is matched to the
//! coherence time, which reproduces the two properties the MAC results depend
//! on: the marginal distributions (Rayleigh / log-normal) and the temporal
//! correlation relative to the 2.5 ms frame.
//!
//! # Lazy channel evaluation
//!
//! Channels are advanced *lazily*: a [`CombinedChannel`] is only stepped when
//! its SNR is actually sampled, and the whole interval since the previous
//! sample is coalesced into a single AR(1) step.  This is exact — not an
//! approximation — because the AR(1) transition kernel composes
//! multiplicatively (`ρ(dt₁+dt₂) = ρ(dt₁)·ρ(dt₂)`, innovation variances add
//! accordingly), so a coalesced step and a chain of per-frame steps draw from
//! the same conditional distribution; see [`fading`] for the full invariant
//! and its regression tests.  The practical consequence: terminals that stay
//! idle for a stretch of frames pay *zero* channel work for those frames,
//! and the common fixed frame step reuses memoised `exp`/`sqrt` step
//! coefficients.  [`ChannelMode`] selects between this lazy default and the
//! eager pre-optimisation baseline retained for benchmarking.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod channel;
pub mod csi;
pub mod fading;
pub mod mobility;
pub mod pathloss;

pub use channel::{ChannelConfig, ChannelMode, ChannelParts, CombinedChannel};
pub use csi::{CsiEstimate, CsiEstimator, CsiEstimatorConfig};
pub use fading::{LongTermShadowing, ShadowingConfig, ShortTermFading};
pub use mobility::{
    doppler_hz, Bounds, Mobility, Position, RandomWaypoint, SpeedProfile, CARRIER_FREQUENCY_HZ,
    SPEED_OF_LIGHT_M_S,
};
pub use pathloss::PathLossConfig;
