//! Channel state information (CSI) estimation and staleness tracking.
//!
//! In CHARISMA the base station learns each terminal's CSI from pilot symbols
//! embedded in request packets, and refreshes the CSI of backlogged requests
//! through the poll-for-CSI / pilot-symbol subframes (Section 4.4).  An
//! estimate is modelled as the true instantaneous SNR plus a small Gaussian
//! estimation error, together with the time it was taken; the paper argues an
//! estimate remains valid for about two frames (5 ms) because the short-term
//! coherence time is ≈ 10 ms.

use charisma_des::{Sampler, SimDuration, SimTime, Xoshiro256StarStar};
use serde::{Deserialize, Serialize};

/// A timestamped CSI estimate held by the base station for one terminal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CsiEstimate {
    /// Estimated instantaneous SNR in dB.
    pub snr_db: f64,
    /// Simulation time at which the pilot symbols were observed.
    pub estimated_at: SimTime,
}

impl CsiEstimate {
    /// Whether the estimate is still valid at `now` given a validity window.
    pub fn is_fresh(&self, now: SimTime, validity: SimDuration) -> bool {
        now.saturating_duration_since(self.estimated_at) <= validity
    }

    /// Age of the estimate at `now`.
    pub fn age(&self, now: SimTime) -> SimDuration {
        now.saturating_duration_since(self.estimated_at)
    }
}

/// Configuration of the pilot-symbol CSI estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CsiEstimatorConfig {
    /// Standard deviation of the estimation error in dB (0 ⇒ perfect CSI).
    pub error_std_db: f64,
    /// How long an estimate remains usable before the MAC must poll for a
    /// refresh.  The paper uses two frame durations (5 ms).
    pub validity: SimDuration,
}

impl Default for CsiEstimatorConfig {
    fn default() -> Self {
        CsiEstimatorConfig {
            error_std_db: 0.5,
            validity: SimDuration::from_micros(5_000),
        }
    }
}

/// Pilot-symbol CSI estimator used by the base station.
#[derive(Debug, Clone)]
pub struct CsiEstimator {
    config: CsiEstimatorConfig,
    rng: Xoshiro256StarStar,
}

impl CsiEstimator {
    /// Creates an estimator with its own noise stream.
    pub fn new(config: CsiEstimatorConfig, rng: Xoshiro256StarStar) -> Self {
        assert!(
            config.error_std_db >= 0.0,
            "estimation error std must be non-negative"
        );
        CsiEstimator { config, rng }
    }

    /// The estimator configuration.
    pub fn config(&self) -> &CsiEstimatorConfig {
        &self.config
    }

    /// Produces an estimate of `true_snr_db` observed at time `now`.
    pub fn estimate(&mut self, true_snr_db: f64, now: SimTime) -> CsiEstimate {
        let noise = if self.config.error_std_db > 0.0 {
            Sampler::normal(&mut self.rng, 0.0, self.config.error_std_db)
        } else {
            0.0
        };
        CsiEstimate {
            snr_db: true_snr_db + noise,
            estimated_at: now,
        }
    }

    /// Whether an estimate taken at `estimated_at` is still fresh at `now`
    /// under this estimator's validity window.
    pub fn is_fresh(&self, estimate: &CsiEstimate, now: SimTime) -> bool {
        estimate.is_fresh(now, self.config.validity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_des::{RngStreams, StreamId};

    fn estimator(error_std_db: f64) -> CsiEstimator {
        let streams = RngStreams::new(42);
        CsiEstimator::new(
            CsiEstimatorConfig {
                error_std_db,
                validity: SimDuration::from_micros(5_000),
            },
            streams.stream(StreamId::new(StreamId::DOMAIN_ESTIMATION, 0)),
        )
    }

    #[test]
    fn perfect_estimator_returns_truth() {
        let mut e = estimator(0.0);
        let est = e.estimate(12.34, SimTime::from_micros(100));
        assert_eq!(est.snr_db, 12.34);
        assert_eq!(est.estimated_at, SimTime::from_micros(100));
    }

    #[test]
    fn noisy_estimator_is_unbiased_with_configured_spread() {
        let mut e = estimator(1.0);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let v = e.estimate(10.0, SimTime::ZERO).snr_db - 10.0;
            sum += v;
            sumsq += v * v;
        }
        let mean = sum / n as f64;
        let std = (sumsq / n as f64 - mean * mean).sqrt();
        assert!(mean.abs() < 0.02, "bias {mean}");
        assert!((std - 1.0).abs() < 0.02, "spread {std}");
    }

    #[test]
    fn freshness_window_is_inclusive() {
        let e = estimator(0.0);
        let est = CsiEstimate {
            snr_db: 0.0,
            estimated_at: SimTime::from_micros(1_000),
        };
        assert!(e.is_fresh(&est, SimTime::from_micros(1_000)));
        assert!(e.is_fresh(&est, SimTime::from_micros(6_000))); // exactly 5 ms old
        assert!(!e.is_fresh(&est, SimTime::from_micros(6_001)));
    }

    #[test]
    fn age_is_zero_for_future_estimates() {
        // An estimate "from the future" (possible only through misuse) reports
        // zero age rather than panicking, so MAC bookkeeping stays total.
        let est = CsiEstimate {
            snr_db: 0.0,
            estimated_at: SimTime::from_micros(10),
        };
        assert_eq!(est.age(SimTime::ZERO), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_error_std_rejected() {
        let streams = RngStreams::new(1);
        let _ = CsiEstimator::new(
            CsiEstimatorConfig {
                error_std_db: -1.0,
                validity: SimDuration::from_micros(5_000),
            },
            streams.stream(StreamId::new(StreamId::DOMAIN_ESTIMATION, 0)),
        );
    }
}
