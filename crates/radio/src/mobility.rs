//! Terminal mobility and its mapping to Doppler spread / coherence time.
//!
//! The paper assumes a mean terminal speed of 50 km/h and a maximum of
//! 80 km/h, quotes a Doppler spread of roughly 100 Hz and uses
//! `T_c ≈ 1 / f_d ≈ 10 ms` as the short-term fading coherence time.  Those
//! numbers are consistent with a carrier around 2 GHz, which is what we adopt
//! as the default.

use charisma_des::{Sampler, SimDuration, Xoshiro256StarStar};
use serde::{Deserialize, Serialize};

/// Speed of light in metres per second.
pub const SPEED_OF_LIGHT_M_S: f64 = 299_792_458.0;

/// Default carrier frequency (2 GHz), consistent with the paper's quoted
/// Doppler spread of ~100 Hz at ~50 km/h.
pub const CARRIER_FREQUENCY_HZ: f64 = 2.0e9;

/// Maximum Doppler spread `f_d = v·f_c / c` for a terminal moving at
/// `speed_kmh`, in Hz.
pub fn doppler_hz(speed_kmh: f64, carrier_hz: f64) -> f64 {
    assert!(speed_kmh >= 0.0, "speed must be non-negative");
    assert!(carrier_hz > 0.0, "carrier frequency must be positive");
    let v = speed_kmh / 3.6;
    v * carrier_hz / SPEED_OF_LIGHT_M_S
}

/// How per-terminal speeds are assigned in a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpeedProfile {
    /// Every terminal moves at the same fixed speed (km/h).
    Fixed(f64),
    /// Speeds are drawn uniformly per terminal between `min_kmh` and
    /// `max_kmh` (the paper's "mean 50 km/h, maximum 80 km/h" population is
    /// approximated by `Uniform(20, 80)`).
    Uniform {
        /// Lower bound in km/h.
        min_kmh: f64,
        /// Upper bound in km/h.
        max_kmh: f64,
    },
    /// A heterogeneous two-class population: each terminal is independently a
    /// fast mover (probability `fraction_fast`, e.g. vehicular) or a slow one
    /// (e.g. pedestrian).  The paper only evaluates homogeneous populations;
    /// this profile opens the mixed-mobility scenarios the campaign registry
    /// adds, where CSI-aware scheduling can exploit the slow (long-coherence)
    /// terminals.
    Bimodal {
        /// Speed of the slow class in km/h.
        slow_kmh: f64,
        /// Speed of the fast class in km/h.
        fast_kmh: f64,
        /// Probability that a terminal belongs to the fast class, in `[0, 1]`.
        fraction_fast: f64,
    },
}

impl SpeedProfile {
    /// The paper's default population: mean 50 km/h, maximum 80 km/h.
    pub fn paper_default() -> Self {
        SpeedProfile::Uniform {
            min_kmh: 20.0,
            max_kmh: 80.0,
        }
    }

    /// Draws a speed for one terminal.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> f64 {
        match *self {
            SpeedProfile::Fixed(v) => {
                assert!(v >= 0.0, "fixed speed must be non-negative");
                v
            }
            SpeedProfile::Uniform { min_kmh, max_kmh } => {
                assert!(
                    (0.0..=max_kmh).contains(&min_kmh),
                    "invalid speed range [{min_kmh}, {max_kmh}]"
                );
                min_kmh + (max_kmh - min_kmh) * rng.next_f64()
            }
            SpeedProfile::Bimodal {
                slow_kmh,
                fast_kmh,
                fraction_fast,
            } => {
                assert!(
                    slow_kmh >= 0.0 && fast_kmh >= 0.0,
                    "bimodal speeds must be non-negative"
                );
                assert!(
                    (0.0..=1.0).contains(&fraction_fast),
                    "fraction_fast must be a probability, got {fraction_fast}"
                );
                if rng.next_f64() < fraction_fast {
                    fast_kmh
                } else {
                    slow_kmh
                }
            }
        }
    }

    /// Mean of the profile (used for reporting).
    pub fn mean_kmh(&self) -> f64 {
        match *self {
            SpeedProfile::Fixed(v) => v,
            SpeedProfile::Uniform { min_kmh, max_kmh } => 0.5 * (min_kmh + max_kmh),
            SpeedProfile::Bimodal {
                slow_kmh,
                fast_kmh,
                fraction_fast,
            } => slow_kmh + (fast_kmh - slow_kmh) * fraction_fast,
        }
    }
}

/// A point in the 2-D system plane, in metres.
///
/// Single-cell scenarios never materialise positions — the implicit cell has
/// no geometry — but the multi-cell system layer places every terminal on a
/// plane shared with the base-station layout, so distances (and with them
/// path loss) are well defined.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Position {
    /// Easting in metres.
    pub x_m: f64,
    /// Northing in metres.
    pub y_m: f64,
}

impl Position {
    /// The origin of the system plane.
    pub const ORIGIN: Position = Position { x_m: 0.0, y_m: 0.0 };

    /// Creates a position.
    pub fn new(x_m: f64, y_m: f64) -> Self {
        Position { x_m, y_m }
    }

    /// Euclidean distance to another position, in metres.
    pub fn distance_m(&self, other: Position) -> f64 {
        let dx = self.x_m - other.x_m;
        let dy = self.y_m - other.y_m;
        (dx * dx + dy * dy).sqrt()
    }
}

/// An axis-aligned rectangle bounding terminal motion (the union of the
/// system layout's cell footprints).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bounds {
    /// Lower-left corner.
    pub min: Position,
    /// Upper-right corner.
    pub max: Position,
}

impl Bounds {
    /// Creates a bounding rectangle; panics when the corners are reversed or
    /// degenerate.
    pub fn new(min: Position, max: Position) -> Self {
        assert!(
            min.x_m < max.x_m && min.y_m < max.y_m,
            "bounds must span a non-empty rectangle (min {min:?}, max {max:?})"
        );
        Bounds { min, max }
    }

    /// Whether the rectangle contains `p` (borders included).
    pub fn contains(&self, p: Position) -> bool {
        (self.min.x_m..=self.max.x_m).contains(&p.x_m)
            && (self.min.y_m..=self.max.y_m).contains(&p.y_m)
    }

    /// Draws a position uniformly inside the rectangle.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> Position {
        Position {
            x_m: self.min.x_m + (self.max.x_m - self.min.x_m) * rng.next_f64(),
            y_m: self.min.y_m + (self.max.y_m - self.min.y_m) * rng.next_f64(),
        }
    }
}

/// The random-waypoint motion model: a terminal moves in a straight line at
/// its fixed speed towards a waypoint drawn uniformly in the system bounds,
/// and draws a fresh waypoint the moment it arrives.
///
/// This is the standard mobility model for cellular system studies (the
/// paper itself stays inside one cell, so its mobility is speed-only — see
/// [`Mobility`]).  The model is deterministic given its RNG stream: waypoint
/// draws are the only consumption, so a stationary terminal consumes exactly
/// the draws of its initial waypoint and nothing more.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomWaypoint {
    position: Position,
    target: Position,
    speed_mps: f64,
}

impl RandomWaypoint {
    /// Starts the model at `start`, moving at `speed_kmh` towards a first
    /// waypoint drawn uniformly in `bounds`.
    pub fn new(
        start: Position,
        speed_kmh: f64,
        bounds: &Bounds,
        rng: &mut Xoshiro256StarStar,
    ) -> Self {
        assert!(speed_kmh >= 0.0, "speed must be non-negative");
        RandomWaypoint {
            position: start,
            target: bounds.sample(rng),
            speed_mps: speed_kmh / 3.6,
        }
    }

    /// The current position.
    pub fn position(&self) -> Position {
        self.position
    }

    /// The current waypoint.
    pub fn target(&self) -> Position {
        self.target
    }

    /// The model's speed in km/h.
    pub fn speed_kmh(&self) -> f64 {
        self.speed_mps * 3.6
    }

    /// Advances the motion by `dt_secs`, drawing new waypoints as they are
    /// reached.  Any distance budget left over at a waypoint is spent towards
    /// the next one, so long steps (coalesced idle stretches) traverse the
    /// same path a chain of short steps would.
    pub fn advance(&mut self, dt_secs: f64, bounds: &Bounds, rng: &mut Xoshiro256StarStar) {
        assert!(dt_secs >= 0.0, "time must move forwards");
        let mut budget = self.speed_mps * dt_secs;
        if budget <= 0.0 {
            return;
        }
        loop {
            let dist = self.position.distance_m(self.target);
            if dist > budget {
                let f = budget / dist;
                self.position.x_m += (self.target.x_m - self.position.x_m) * f;
                self.position.y_m += (self.target.y_m - self.position.y_m) * f;
                return;
            }
            budget -= dist;
            self.position = self.target;
            self.target = bounds.sample(rng);
            // A degenerate draw (target == position) would loop forever on a
            // zero-length leg; the budget strictly decreases otherwise.
            if budget <= f64::EPSILON {
                return;
            }
        }
    }
}

/// The mobility state of one terminal: its speed and the derived fading
/// time constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mobility {
    /// Terminal speed in km/h.
    pub speed_kmh: f64,
    /// Maximum Doppler spread in Hz.
    pub doppler_hz: f64,
}

impl Mobility {
    /// Creates the mobility state for a terminal at `speed_kmh` with the
    /// default carrier frequency.
    pub fn new(speed_kmh: f64) -> Self {
        Self::with_carrier(speed_kmh, CARRIER_FREQUENCY_HZ)
    }

    /// Creates the mobility state with an explicit carrier frequency.
    pub fn with_carrier(speed_kmh: f64, carrier_hz: f64) -> Self {
        Mobility {
            speed_kmh,
            doppler_hz: doppler_hz(speed_kmh, carrier_hz),
        }
    }

    /// Draws a terminal's mobility from a [`SpeedProfile`].
    pub fn from_profile(profile: &SpeedProfile, rng: &mut Xoshiro256StarStar) -> Self {
        Mobility::new(profile.sample(rng))
    }

    /// Short-term fading coherence time `T_c ≈ 1 / f_d`, as used by the paper
    /// (eq. (1)).  A stationary terminal is given a very long (but finite)
    /// coherence time instead of infinity so AR coefficients stay defined.
    pub fn coherence_time(&self) -> SimDuration {
        if self.doppler_hz <= 1e-9 {
            return SimDuration::from_secs(3600);
        }
        SimDuration::from_secs_f64(1.0 / self.doppler_hz)
    }

    /// Convenience wrapper used by traffic/radio setup code to derive a speed
    /// with a dedicated RNG stream, keeping speed draws independent of fading
    /// draws.
    pub fn sample_speed(profile: &SpeedProfile, rng: &mut Xoshiro256StarStar) -> f64 {
        let _ = Sampler::bernoulli(rng, 0.0); // keep the stream "touched" even for Fixed profiles
        profile.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_des::Xoshiro256StarStar;

    #[test]
    fn doppler_matches_papers_figure() {
        // ~50 km/h at 2 GHz ≈ 93 Hz; the paper rounds to 100 Hz.
        let fd = doppler_hz(50.0, CARRIER_FREQUENCY_HZ);
        assert!((85.0..105.0).contains(&fd), "fd = {fd}");
        // 80 km/h upper bound ≈ 148 Hz.
        let fd80 = doppler_hz(80.0, CARRIER_FREQUENCY_HZ);
        assert!((135.0..160.0).contains(&fd80), "fd80 = {fd80}");
    }

    #[test]
    fn coherence_time_near_10ms_at_50kmh() {
        let m = Mobility::new(50.0);
        let tc = m.coherence_time().as_millis_f64();
        assert!((8.0..13.0).contains(&tc), "Tc = {tc} ms");
    }

    #[test]
    fn stationary_terminal_gets_long_coherence() {
        let m = Mobility::new(0.0);
        assert!(m.coherence_time() >= SimDuration::from_secs(3600));
    }

    #[test]
    fn doppler_scales_linearly_with_speed() {
        let a = doppler_hz(10.0, CARRIER_FREQUENCY_HZ);
        let b = doppler_hz(20.0, CARRIER_FREQUENCY_HZ);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_speed_rejected() {
        let _ = doppler_hz(-1.0, CARRIER_FREQUENCY_HZ);
    }

    #[test]
    fn uniform_profile_samples_in_range_with_correct_mean() {
        let profile = SpeedProfile::Uniform {
            min_kmh: 20.0,
            max_kmh: 80.0,
        };
        let mut rng = Xoshiro256StarStar::from_seed_u64(11);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = profile.sample(&mut rng);
            assert!((20.0..=80.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 50.0).abs() < 1.0, "mean speed {mean}");
        assert_eq!(profile.mean_kmh(), 50.0);
    }

    #[test]
    fn fixed_profile_is_constant() {
        let mut rng = Xoshiro256StarStar::from_seed_u64(1);
        let profile = SpeedProfile::Fixed(30.0);
        for _ in 0..10 {
            assert_eq!(profile.sample(&mut rng), 30.0);
        }
    }

    #[test]
    fn paper_default_profile_mean_is_50() {
        assert_eq!(SpeedProfile::paper_default().mean_kmh(), 50.0);
    }

    #[test]
    fn bimodal_profile_draws_both_classes_with_the_right_rate() {
        let profile = SpeedProfile::Bimodal {
            slow_kmh: 3.0,
            fast_kmh: 80.0,
            fraction_fast: 0.25,
        };
        let mut rng = Xoshiro256StarStar::from_seed_u64(42);
        let n = 40_000;
        let mut fast = 0usize;
        for _ in 0..n {
            let v = profile.sample(&mut rng);
            assert!(v == 3.0 || v == 80.0, "unexpected speed {v}");
            if v == 80.0 {
                fast += 1;
            }
        }
        let frac = fast as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "fast fraction {frac}");
        let mean = profile.mean_kmh();
        assert!((mean - (3.0 + 77.0 * 0.25)).abs() < 1e-12, "mean {mean}");
    }

    #[test]
    fn waypoint_motion_stays_in_bounds_and_covers_distance() {
        let bounds = Bounds::new(Position::new(-500.0, -500.0), Position::new(500.0, 500.0));
        let mut rng = Xoshiro256StarStar::from_seed_u64(7);
        let mut rw = RandomWaypoint::new(Position::ORIGIN, 72.0, &bounds, &mut rng);
        assert_eq!(rw.speed_kmh(), 72.0); // 20 m/s
        let mut travelled = 0.0;
        let mut prev = rw.position();
        for _ in 0..10_000 {
            rw.advance(0.1, &bounds, &mut rng);
            assert!(
                bounds.contains(rw.position()),
                "escaped: {:?}",
                rw.position()
            );
            travelled += prev.distance_m(rw.position());
            prev = rw.position();
        }
        // 10 000 x 0.1 s at 20 m/s = 20 km of path.  Steps containing a
        // waypoint turn contribute a chord shorter than the path, so the
        // summed endpoint distances land slightly below 20 km.
        assert!(
            (19_000.0..=20_000.0 + 1e-6).contains(&travelled),
            "travelled {travelled}"
        );
    }

    #[test]
    fn waypoint_long_step_equals_chain_of_short_steps() {
        let bounds = Bounds::new(Position::new(0.0, 0.0), Position::new(1000.0, 1000.0));
        let mut rng_a = Xoshiro256StarStar::from_seed_u64(9);
        let mut rng_b = Xoshiro256StarStar::from_seed_u64(9);
        let start = Position::new(500.0, 500.0);
        let mut a = RandomWaypoint::new(start, 50.0, &bounds, &mut rng_a);
        let mut b = RandomWaypoint::new(start, 50.0, &bounds, &mut rng_b);
        a.advance(60.0, &bounds, &mut rng_a);
        for _ in 0..60 {
            b.advance(1.0, &bounds, &mut rng_b);
        }
        assert!(
            a.position().distance_m(b.position()) < 1e-6,
            "coalesced {:?} vs stepped {:?}",
            a.position(),
            b.position()
        );
    }

    #[test]
    fn stationary_waypoint_model_never_moves() {
        let bounds = Bounds::new(Position::new(-10.0, -10.0), Position::new(10.0, 10.0));
        let mut rng = Xoshiro256StarStar::from_seed_u64(3);
        let mut rw = RandomWaypoint::new(Position::new(1.0, 2.0), 0.0, &bounds, &mut rng);
        for _ in 0..100 {
            rw.advance(10.0, &bounds, &mut rng);
        }
        assert_eq!(rw.position(), Position::new(1.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "non-empty rectangle")]
    fn reversed_bounds_are_rejected() {
        let _ = Bounds::new(Position::new(1.0, 0.0), Position::new(0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bimodal_rejects_bad_fraction() {
        let mut rng = Xoshiro256StarStar::from_seed_u64(1);
        let _ = SpeedProfile::Bimodal {
            slow_kmh: 3.0,
            fast_kmh: 80.0,
            fraction_fast: 1.5,
        }
        .sample(&mut rng);
    }
}
