//! Short-term Rayleigh fading and long-term log-normal shadowing processes.
//!
//! Both processes are modelled as first-order Gauss–Markov (AR(1)) processes,
//! which is the standard discrete-time substitute for measured fading traces:
//! it preserves the marginal distribution (Rayleigh envelope with unit
//! mean-square power; log-normal local mean) and the temporal correlation
//! scale (coherence time ≈ 10 ms for fast fading at 50 km/h, ≈ 1 s for
//! shadowing), which are the two properties the CHARISMA evaluation depends
//! on.  The autocorrelation is exponential, `ρ(Δ) = exp(−Δ/T_c)`; the paper's
//! Jakes-spectrum channel has an oscillating (Bessel) autocorrelation instead,
//! but over the 2.5 ms frame both models agree that the channel is
//! approximately constant, and over ≥ T_c both agree it has decorrelated.
//!
//! # Hot-path step coefficients and the coalescing invariant
//!
//! Advancing an AR(1) process by `dt` needs `ρ = exp(−dt/T)` and the
//! innovation scale `σ·√(1 − ρ²)`.  The simulation steps every terminal's
//! channel on a fixed 2.5 ms frame grid, so both processes memoise the
//! coefficients of the most recent `dt` (`ArStepCoefficients`) and only pay
//! the `exp`/`sqrt` when the step size actually changes.
//!
//! Because the AR(1) kernel is *exactly* multiplicative —
//! `ρ(dt₁ + dt₂) = ρ(dt₁)·ρ(dt₂)` and the innovation variances compose to
//! `σ²(1 − ρ(dt₁+dt₂)²)` — advancing a process by one coalesced step of
//! `k` frames produces a state with exactly the same marginal distribution
//! and autocorrelation as `k` single-frame steps.  This is the invariant that
//! makes the simulator's *lazy* channel evaluation sound: an idle terminal's
//! channel may skip frames entirely and be advanced in one jump the next
//! time its SNR is sampled.  Only the *number of RNG draws* differs (one
//! innovation per coalesced step instead of one per frame), so a lazy run is
//! a different — equally valid — sample path of the same process.
//! `tests::coalesced_steps_preserve_stationary_distribution_and_correlation`
//! regression-tests the equivalence.

use charisma_des::{Sampler, SimDuration, Xoshiro256StarStar};
use serde::{Deserialize, Serialize};

/// Memoised AR(1) step coefficients for one step size `dt`:
/// `rho = exp(−dt/T)` and `innovation = σ·√(1 − ρ²)` (with `σ` the process's
/// stationary standard deviation folded in).
#[derive(Debug, Clone, Copy, PartialEq)]
struct ArStepCoefficients {
    dt: SimDuration,
    rho: f64,
    innovation: f64,
}

impl ArStepCoefficients {
    /// A sentinel that matches no real step, forcing the first `step` call to
    /// compute real coefficients (`dt == 0` short-circuits before lookup).
    const UNSET: ArStepCoefficients = ArStepCoefficients {
        dt: SimDuration::ZERO,
        rho: 1.0,
        innovation: 0.0,
    };

    /// Computes the coefficients for advancing by `dt` a process with
    /// correlation time `tau` and stationary standard deviation `sigma`.
    fn compute(dt: SimDuration, tau: SimDuration, sigma: f64) -> Self {
        let rho = (-(dt.as_secs_f64() / tau.as_secs_f64())).exp();
        ArStepCoefficients {
            dt,
            rho,
            innovation: (1.0 - rho * rho).sqrt() * sigma,
        }
    }
}

/// Complex-Gaussian short-term fading process with Rayleigh envelope and
/// `E[c_s²] = 1` (the paper's normalisation).
#[derive(Debug, Clone)]
pub struct ShortTermFading {
    /// In-phase component, `N(0, 1/2)` at stationarity.
    x: f64,
    /// Quadrature component, `N(0, 1/2)` at stationarity.
    y: f64,
    /// Coherence time controlling the AR(1) correlation.
    coherence: SimDuration,
    /// Coefficients of the most recent step size (the hot path steps on the
    /// fixed frame grid, so this almost always hits).
    coeffs: ArStepCoefficients,
}

impl PartialEq for ShortTermFading {
    /// Two processes are equal when their *state* is equal; the memoised step
    /// coefficients are a cache, not state.
    fn eq(&self, other: &Self) -> bool {
        self.x == other.x && self.y == other.y && self.coherence == other.coherence
    }
}

impl ShortTermFading {
    /// Creates a process with the given coherence time, drawing the initial
    /// state from the stationary distribution.
    pub fn new(coherence: SimDuration, rng: &mut Xoshiro256StarStar) -> Self {
        assert!(!coherence.is_zero(), "coherence time must be non-zero");
        let sigma = std::f64::consts::FRAC_1_SQRT_2;
        ShortTermFading {
            x: sigma * Sampler::standard_normal(rng),
            y: sigma * Sampler::standard_normal(rng),
            coherence,
            coeffs: ArStepCoefficients::UNSET,
        }
    }

    /// The coherence time of the process.
    pub fn coherence(&self) -> SimDuration {
        self.coherence
    }

    /// Advances the process by `dt` and returns the new envelope, reusing the
    /// memoised `rho`/innovation coefficients while `dt` stays the same.
    pub fn step(&mut self, dt: SimDuration, rng: &mut Xoshiro256StarStar) -> f64 {
        if dt.is_zero() {
            return self.envelope();
        }
        if self.coeffs.dt != dt {
            self.coeffs =
                ArStepCoefficients::compute(dt, self.coherence, std::f64::consts::FRAC_1_SQRT_2);
        }
        let ArStepCoefficients {
            rho, innovation, ..
        } = self.coeffs;
        self.x = rho * self.x + innovation * Sampler::standard_normal(rng);
        self.y = rho * self.y + innovation * Sampler::standard_normal(rng);
        self.envelope()
    }

    /// Advances the process by `dt`, recomputing the coefficients from
    /// scratch.  Draws the exact same innovations as [`Self::step`]; it only
    /// pays the pre-memoisation `exp`/`sqrt` cost every call.  Retained as
    /// the reference implementation for the eager-baseline benchmark and the
    /// cache-correctness tests.
    pub fn step_uncached(&mut self, dt: SimDuration, rng: &mut Xoshiro256StarStar) -> f64 {
        if dt.is_zero() {
            return self.envelope();
        }
        let c = ArStepCoefficients::compute(dt, self.coherence, std::f64::consts::FRAC_1_SQRT_2);
        self.x = c.rho * self.x + c.innovation * Sampler::standard_normal(rng);
        self.y = c.rho * self.y + c.innovation * Sampler::standard_normal(rng);
        self.envelope()
    }

    /// The current fading envelope `c_s ≥ 0`.
    pub fn envelope(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// The current fading power `c_s²`.
    pub fn power(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }
}

/// Configuration of the long-term (shadowing) component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowingConfig {
    /// Mean of the local mean in dB (`m_l` in the paper).
    pub mean_db: f64,
    /// Standard deviation of the local mean in dB (`σ_l`).
    pub std_db: f64,
    /// Correlation time of the shadowing process (≈ 1 s per the paper).
    pub correlation_time: SimDuration,
}

impl Default for ShadowingConfig {
    fn default() -> Self {
        ShadowingConfig {
            mean_db: 0.0,
            std_db: 6.0,
            correlation_time: SimDuration::from_secs(1),
        }
    }
}

/// Log-normal long-term shadowing (the "local mean"), evolved as an AR(1)
/// process on its dB value so the marginal stays exactly log-normal.
#[derive(Debug, Clone)]
pub struct LongTermShadowing {
    /// Current deviation from the mean, in dB.
    deviation_db: f64,
    config: ShadowingConfig,
    /// Coefficients of the most recent step size (see [`ShortTermFading`]).
    coeffs: ArStepCoefficients,
}

impl PartialEq for LongTermShadowing {
    /// State-only equality; the memoised step coefficients are a cache.
    fn eq(&self, other: &Self) -> bool {
        self.deviation_db == other.deviation_db && self.config == other.config
    }
}

impl LongTermShadowing {
    /// Creates a shadowing process, drawing the initial state from the
    /// stationary `N(mean_db, std_db²)` distribution.
    pub fn new(config: ShadowingConfig, rng: &mut Xoshiro256StarStar) -> Self {
        assert!(config.std_db >= 0.0, "shadowing std must be non-negative");
        assert!(
            !config.correlation_time.is_zero(),
            "shadowing correlation time must be non-zero"
        );
        LongTermShadowing {
            deviation_db: config.std_db * Sampler::standard_normal(rng),
            config,
            coeffs: ArStepCoefficients::UNSET,
        }
    }

    /// The configuration this process was built with.
    pub fn config(&self) -> &ShadowingConfig {
        &self.config
    }

    /// Advances the process by `dt` and returns the new local mean in dB,
    /// reusing the memoised `rho`/innovation coefficients while `dt` stays
    /// the same.
    pub fn step(&mut self, dt: SimDuration, rng: &mut Xoshiro256StarStar) -> f64 {
        if !dt.is_zero() && self.config.std_db > 0.0 {
            if self.coeffs.dt != dt {
                self.coeffs = ArStepCoefficients::compute(
                    dt,
                    self.config.correlation_time,
                    self.config.std_db,
                );
            }
            self.deviation_db = self.coeffs.rho * self.deviation_db
                + self.coeffs.innovation * Sampler::standard_normal(rng);
        }
        self.local_mean_db()
    }

    /// Advances the process by `dt`, recomputing the coefficients from
    /// scratch (same draws as [`Self::step`]; see
    /// [`ShortTermFading::step_uncached`]).
    pub fn step_uncached(&mut self, dt: SimDuration, rng: &mut Xoshiro256StarStar) -> f64 {
        if !dt.is_zero() && self.config.std_db > 0.0 {
            let c =
                ArStepCoefficients::compute(dt, self.config.correlation_time, self.config.std_db);
            self.deviation_db =
                c.rho * self.deviation_db + c.innovation * Sampler::standard_normal(rng);
        }
        self.local_mean_db()
    }

    /// The current local mean in dB (`20·log10(c_l)`).
    pub fn local_mean_db(&self) -> f64 {
        self.config.mean_db + self.deviation_db
    }

    /// The current local mean as a linear amplitude gain `c_l`.
    pub fn local_mean_linear(&self) -> f64 {
        10f64.powf(self.local_mean_db() / 20.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_des::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::from_seed_u64(seed)
    }

    #[test]
    fn short_term_power_is_unit_on_average() {
        let mut r = rng(1);
        let mut f = ShortTermFading::new(SimDuration::from_millis(10), &mut r);
        let dt = SimDuration::from_millis(20); // > Tc so samples are near-independent
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            f.step(dt, &mut r);
            sum += f.power();
        }
        let mean_power = sum / n as f64;
        assert!((mean_power - 1.0).abs() < 0.03, "E[c_s^2] = {mean_power}");
    }

    #[test]
    fn short_term_is_correlated_within_a_frame_and_decorrelated_beyond_tc() {
        let mut r = rng(2);
        let tc = SimDuration::from_millis(10);
        let frame = SimDuration::from_micros(2_500);

        // Correlation of power at lag = one frame should be clearly positive;
        // at lag = 10×Tc it should be near zero.
        let corr = |lag: SimDuration, r: &mut Xoshiro256StarStar| -> f64 {
            let mut f = ShortTermFading::new(tc, r);
            let n = 40_000;
            let mut xs = Vec::with_capacity(n);
            for _ in 0..n {
                f.step(lag, r);
                xs.push(f.power());
            }
            let mean = xs.iter().sum::<f64>() / n as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            let cov = xs
                .windows(2)
                .map(|w| (w[0] - mean) * (w[1] - mean))
                .sum::<f64>()
                / (n - 1) as f64;
            cov / var
        };

        let within_frame = corr(frame, &mut r);
        let beyond_tc = corr(SimDuration::from_millis(100), &mut r);
        assert!(within_frame > 0.5, "frame-lag correlation {within_frame}");
        assert!(beyond_tc.abs() < 0.1, "10×Tc-lag correlation {beyond_tc}");
    }

    #[test]
    fn short_term_zero_dt_is_identity() {
        let mut r = rng(3);
        let mut f = ShortTermFading::new(SimDuration::from_millis(10), &mut r);
        let before = f.envelope();
        let after = f.step(SimDuration::ZERO, &mut r);
        assert_eq!(before, after);
    }

    #[test]
    fn envelope_is_never_negative() {
        let mut r = rng(4);
        let mut f = ShortTermFading::new(SimDuration::from_millis(10), &mut r);
        for _ in 0..10_000 {
            assert!(f.step(SimDuration::from_micros(2_500), &mut r) >= 0.0);
        }
    }

    #[test]
    fn shadowing_marginal_statistics_match_config() {
        let mut r = rng(5);
        let cfg = ShadowingConfig {
            mean_db: -2.0,
            std_db: 6.0,
            correlation_time: SimDuration::from_secs(1),
        };
        let mut s = LongTermShadowing::new(cfg, &mut r);
        // Sample at lags of 10 s so draws are essentially independent.
        let n = 20_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let v = s.step(SimDuration::from_secs(10), &mut r);
            sum += v;
            sumsq += v * v;
        }
        let mean = sum / n as f64;
        let std = (sumsq / n as f64 - mean * mean).sqrt();
        assert!((mean + 2.0).abs() < 0.2, "mean {mean}");
        assert!((std - 6.0).abs() < 0.2, "std {std}");
    }

    #[test]
    fn shadowing_is_slow_relative_to_frames() {
        let mut r = rng(6);
        let cfg = ShadowingConfig::default();
        let mut s = LongTermShadowing::new(cfg, &mut r);
        let start = s.local_mean_db();
        // Over 8 frames (20 ms) shadowing should barely move (≪ 1 std).
        for _ in 0..8 {
            s.step(SimDuration::from_micros(2_500), &mut r);
        }
        assert!((s.local_mean_db() - start).abs() < 0.75 * cfg.std_db);
    }

    #[test]
    fn zero_std_shadowing_is_constant() {
        let mut r = rng(7);
        let cfg = ShadowingConfig {
            mean_db: 3.0,
            std_db: 0.0,
            correlation_time: SimDuration::from_secs(1),
        };
        let mut s = LongTermShadowing::new(cfg, &mut r);
        for _ in 0..100 {
            assert_eq!(s.step(SimDuration::from_millis(100), &mut r), 3.0);
        }
        assert!((s.local_mean_linear() - 10f64.powf(3.0 / 20.0)).abs() < 1e-12);
    }

    #[test]
    fn cached_and_uncached_steps_draw_identical_sample_paths() {
        // The memoised-coefficient path must be bit-identical to the
        // recompute-every-call path: same formula, same RNG draws.
        let mut ra = rng(40);
        let mut rb = rng(40);
        let mut a = ShortTermFading::new(SimDuration::from_millis(10), &mut ra);
        let mut b = ShortTermFading::new(SimDuration::from_millis(10), &mut rb);
        // Alternate step sizes so the cache is exercised through misses too.
        let dts = [2_500u64, 2_500, 2_500, 20_000, 2_500, 5_000, 5_000, 2_500];
        for &us in dts.iter().cycle().take(10_000) {
            let dt = SimDuration::from_micros(us);
            assert_eq!(a.step(dt, &mut ra), b.step_uncached(dt, &mut rb));
        }
        assert_eq!(a, b);

        let mut ra = rng(41);
        let mut rb = rng(41);
        let mut a = LongTermShadowing::new(ShadowingConfig::default(), &mut ra);
        let mut b = LongTermShadowing::new(ShadowingConfig::default(), &mut rb);
        for &us in dts.iter().cycle().take(10_000) {
            let dt = SimDuration::from_micros(us);
            assert_eq!(a.step(dt, &mut ra), b.step_uncached(dt, &mut rb));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn coalesced_steps_preserve_stationary_distribution_and_correlation() {
        // Lazy channel evaluation advances an idle terminal's process in one
        // coalesced jump of k frames instead of k single-frame steps.  For an
        // AR(1) process the two are distributionally identical: sampling the
        // power every k frames must show the same mean and the same lag-one
        // autocorrelation (= rho^(2k) for the squared complex-Gaussian)
        // whether the process was stepped eagerly or coalesced.
        let tc = SimDuration::from_millis(10);
        let frame = SimDuration::from_micros(2_500);
        let n = 60_000;

        // (mean power, lag-1 autocorrelation of power) of samples taken every
        // `k` frames, with the process advanced in `step_frames`-frame jumps.
        let stats = |k: u64, step_frames: u64, seed: u64| -> (f64, f64) {
            assert_eq!(k % step_frames, 0);
            let mut r = rng(seed);
            let mut f = ShortTermFading::new(tc, &mut r);
            let mut xs = Vec::with_capacity(n);
            for _ in 0..n {
                for _ in 0..k / step_frames {
                    f.step(frame * step_frames, &mut r);
                }
                xs.push(f.power());
            }
            let mean = xs.iter().sum::<f64>() / n as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            let cov = xs
                .windows(2)
                .map(|w| (w[0] - mean) * (w[1] - mean))
                .sum::<f64>()
                / (n - 1) as f64;
            (mean, cov / var)
        };

        for k in [4u64, 8] {
            let (mean_eager, corr_eager) = stats(k, 1, 50 + k);
            let (mean_lazy, corr_lazy) = stats(k, k, 60 + k);
            let rho = (-(frame.as_secs_f64() * k as f64) / tc.as_secs_f64()).exp();
            let theory = rho * rho;
            assert!(
                (mean_eager - 1.0).abs() < 0.05,
                "k={k} eager mean {mean_eager}"
            );
            assert!(
                (mean_lazy - 1.0).abs() < 0.05,
                "k={k} lazy mean {mean_lazy}"
            );
            assert!(
                (corr_eager - theory).abs() < 0.05,
                "k={k} eager corr {corr_eager} vs theory {theory}"
            );
            assert!(
                (corr_lazy - theory).abs() < 0.05,
                "k={k} lazy corr {corr_lazy} vs theory {theory}"
            );
            assert!(
                (corr_eager - corr_lazy).abs() < 0.05,
                "k={k} eager corr {corr_eager} vs lazy corr {corr_lazy}"
            );
        }
    }

    #[test]
    fn coalesced_shadowing_matches_eager_statistics() {
        // Same equivalence for the dB-domain AR(1) shadowing process, where
        // the autocorrelation of the value itself is rho^k.
        let cfg = ShadowingConfig::default();
        let frame = SimDuration::from_micros(2_500);
        let k = 400u64; // 1 s of frames: one coalesced jump per correlation time
        let n = 30_000;
        let stats = |step_frames: u64, seed: u64| -> (f64, f64, f64) {
            let mut r = rng(seed);
            let mut s = LongTermShadowing::new(cfg, &mut r);
            let mut xs = Vec::with_capacity(n);
            for _ in 0..n {
                for _ in 0..k / step_frames {
                    s.step(frame * step_frames, &mut r);
                }
                xs.push(s.local_mean_db());
            }
            let mean = xs.iter().sum::<f64>() / n as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            let cov = xs
                .windows(2)
                .map(|w| (w[0] - mean) * (w[1] - mean))
                .sum::<f64>()
                / (n - 1) as f64;
            (mean, var.sqrt(), cov / var)
        };
        let (mean_e, std_e, corr_e) = stats(100, 70);
        let (mean_l, std_l, corr_l) = stats(k, 71);
        let theory = (-(frame.as_secs_f64() * k as f64) / cfg.correlation_time.as_secs_f64()).exp();
        for (mean, std, corr, tag) in [
            (mean_e, std_e, corr_e, "eager"),
            (mean_l, std_l, corr_l, "lazy"),
        ] {
            assert!((mean - cfg.mean_db).abs() < 0.2, "{tag} mean {mean}");
            assert!((std - cfg.std_db).abs() < 0.2, "{tag} std {std}");
            assert!(
                (corr - theory).abs() < 0.05,
                "{tag} corr {corr} vs theory {theory}"
            );
        }
    }

    #[test]
    fn db_and_linear_views_are_consistent() {
        let mut r = rng(8);
        let s = LongTermShadowing::new(ShadowingConfig::default(), &mut r);
        let db = s.local_mean_db();
        let lin = s.local_mean_linear();
        assert!((20.0 * lin.log10() - db).abs() < 1e-9);
    }
}
