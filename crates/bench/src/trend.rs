//! The benchmark history ledger and the slow-drift detector behind
//! `campaign trend`.
//!
//! Every `campaign gate` run appends one strict-JSON line per gated entry to
//! the append-only ledger `results/BENCH_history.jsonl`: timestamp, git
//! revision, profile, gate verdict and — per check — the baseline, fresh and
//! allowed values plus the tolerance margin.  The per-run gate is blind to
//! slow drift by construction: a 10 % slowdown per run passes a 30 %
//! tolerance forever.  `campaign trend` reads the ledger back and flags the
//! drift the gate cannot see — at least [`MIN_CONSECUTIVE`] consecutive
//! declining steps in a series' health value, or a cumulative drop from the
//! series' peak beyond [`DEFAULT_CUMULATIVE_THRESHOLD`] — via
//! `charisma::metrics::detect_drift`.
//!
//! Robustness: a ledger with fewer than [`MIN_RUNS`] records per series is
//! "insufficient history" (exit 0, not an error), and empty or corrupt lines
//! are skipped with a warning — an append torn by a dying CI runner must
//! never brick the trend report.

use crate::gate::{GateOutcome, GateReport};
use crate::{output_dir, registry, BenchProfile};
use charisma::metrics::{detect_drift, DriftKind, DriftReport};
use charisma::Json;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Schema tag of one history ledger line.
pub const HISTORY_SCHEMA: &str = "charisma.bench_history.v1";

/// File name of the ledger under the results directory.
pub const HISTORY_FILE: &str = "BENCH_history.jsonl";

/// File name of the trend report `campaign trend` writes.
pub const TREND_REPORT_FILE: &str = "TREND_report.txt";

/// Minimum records a series needs before the trend detector will judge it.
pub const MIN_RUNS: usize = 3;

/// Declining steps in a row before a series is flagged as drifting.
pub const MIN_CONSECUTIVE: usize = 3;

/// Cumulative drop from a series' peak health before it is flagged, even
/// without a monotone decline (three runs 10 % slower each land here long
/// before any single gate run fails its 30 % tolerance).
pub const DEFAULT_CUMULATIVE_THRESHOLD: f64 = 0.15;

/// The default ledger path (`results/BENCH_history.jsonl`).
pub fn history_path() -> PathBuf {
    output_dir().join(HISTORY_FILE)
}

/// One gate check as recorded in the ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryCheck {
    /// The metric name, stripped of per-run noise (worst-row annotations).
    pub metric: String,
    /// The committed baseline value.
    pub baseline: f64,
    /// The freshly measured value.
    pub fresh: f64,
    /// The worst value (fps) / largest allowance (sweep) the gate accepted.
    pub allowed: f64,
    /// Tolerance headroom left, normalised so 0 means "at the limit":
    /// `(fresh - allowed) / baseline` for throughput checks, and
    /// `(allowance - |fresh - baseline|) / allowance` for sweep checks.
    pub margin: f64,
}

impl HistoryCheck {
    /// The health value trend analysis tracks for this check: larger is
    /// healthier.  Throughput checks track the fps itself (absolute drift is
    /// the signal); sweep checks track the tolerance margin.
    pub fn health(&self) -> f64 {
        if self.metric.contains("frames_per_second") {
            self.fresh
        } else {
            self.margin
        }
    }
}

/// One `campaign gate` run of one entry, as recorded in the ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRecord {
    /// Seconds since the Unix epoch when the gate ran.
    pub timestamp: u64,
    /// Git revision of the gated tree.
    pub git_revision: String,
    /// The gated registry entry.
    pub entry: String,
    /// Profile the gate ran under.
    pub profile: String,
    /// Relative tolerance the gate applied.
    pub tolerance: f64,
    /// `"pass"` or `"fail"`.
    pub verdict: String,
    /// Every comparison the gate performed.
    pub checks: Vec<HistoryCheck>,
}

impl HistoryRecord {
    /// Builds the ledger record for one finished gate report.
    pub fn from_gate_report(
        report: &GateReport,
        profile: BenchProfile,
        tolerance: f64,
        timestamp: u64,
        git_revision: String,
    ) -> Self {
        let checks = report
            .checks
            .iter()
            .map(|c| {
                // Sweep checks carry a per-run "(worst row: ...)" suffix;
                // strip it so (entry, metric) is a stable series key.
                let metric = c
                    .metric
                    .split(" (worst row")
                    .next()
                    .unwrap_or(&c.metric)
                    .to_string();
                let margin = if metric.contains("frames_per_second") {
                    if c.baseline.abs() > 0.0 {
                        (c.fresh - c.allowed) / c.baseline
                    } else {
                        0.0
                    }
                } else if c.allowed > 0.0 {
                    (c.allowed - (c.fresh - c.baseline).abs()) / c.allowed
                } else {
                    0.0
                };
                HistoryCheck {
                    metric,
                    baseline: c.baseline,
                    fresh: c.fresh,
                    allowed: c.allowed,
                    margin,
                }
            })
            .collect();
        HistoryRecord {
            timestamp,
            git_revision,
            entry: report.entry.clone(),
            profile: profile.label().to_string(),
            tolerance,
            verdict: if report.passed() { "pass" } else { "fail" }.to_string(),
            checks,
        }
    }

    /// Serialises the record to its single-line ledger form.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("schema".into(), Json::Str(HISTORY_SCHEMA.into())),
            ("timestamp".into(), Json::Int(self.timestamp)),
            ("git_revision".into(), Json::Str(self.git_revision.clone())),
            ("entry".into(), Json::Str(self.entry.clone())),
            ("profile".into(), Json::Str(self.profile.clone())),
            ("tolerance".into(), Json::Num(self.tolerance)),
            ("verdict".into(), Json::Str(self.verdict.clone())),
            (
                "checks".into(),
                Json::Array(
                    self.checks
                        .iter()
                        .map(|c| {
                            Json::Object(vec![
                                ("metric".into(), Json::Str(c.metric.clone())),
                                ("baseline".into(), Json::Num(c.baseline)),
                                ("fresh".into(), Json::Num(c.fresh)),
                                ("allowed".into(), Json::Num(c.allowed)),
                                ("margin".into(), Json::Num(c.margin)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Strictly decodes one ledger record; unknown keys are an error so a
    /// corrupted or foreign line is skipped rather than half-read.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let pairs = json
            .as_object()
            .ok_or_else(|| format!("record must be an object, got {}", json.type_name()))?;
        let mut timestamp = None;
        let mut git_revision = None;
        let mut entry = None;
        let mut profile = None;
        let mut tolerance = None;
        let mut verdict = None;
        let mut checks = None;
        for (k, v) in pairs {
            match k.as_str() {
                "schema" => {
                    let got = v.as_str().ok_or("\"schema\" must be a string")?;
                    if got != HISTORY_SCHEMA {
                        return Err(format!(
                            "schema is \"{got}\", expected \"{HISTORY_SCHEMA}\""
                        ));
                    }
                }
                "timestamp" => {
                    timestamp = Some(v.as_u64().ok_or("\"timestamp\" must be an integer")?)
                }
                "git_revision" => {
                    git_revision = Some(v.as_str().ok_or("\"git_revision\" must be a string")?)
                }
                "entry" => entry = Some(v.as_str().ok_or("\"entry\" must be a string")?),
                "profile" => profile = Some(v.as_str().ok_or("\"profile\" must be a string")?),
                "tolerance" => {
                    tolerance = Some(v.as_f64().ok_or("\"tolerance\" must be a number")?)
                }
                "verdict" => verdict = Some(v.as_str().ok_or("\"verdict\" must be a string")?),
                "checks" => {
                    let items = v.as_array().ok_or("\"checks\" must be an array")?;
                    checks = Some(
                        items
                            .iter()
                            .map(decode_check)
                            .collect::<Result<Vec<_>, String>>()?,
                    );
                }
                unknown => return Err(format!("unknown key \"{unknown}\" in history record")),
            }
        }
        Ok(HistoryRecord {
            timestamp: timestamp.ok_or("record is missing \"timestamp\"")?,
            git_revision: git_revision
                .ok_or("record is missing \"git_revision\"")?
                .into(),
            entry: entry.ok_or("record is missing \"entry\"")?.into(),
            profile: profile.ok_or("record is missing \"profile\"")?.into(),
            tolerance: tolerance.ok_or("record is missing \"tolerance\"")?,
            verdict: verdict.ok_or("record is missing \"verdict\"")?.into(),
            checks: checks.ok_or("record is missing \"checks\"")?,
        })
    }
}

fn decode_check(json: &Json) -> Result<HistoryCheck, String> {
    let pairs = json
        .as_object()
        .ok_or_else(|| format!("check must be an object, got {}", json.type_name()))?;
    let mut metric = None;
    let mut baseline = None;
    let mut fresh = None;
    let mut allowed = None;
    let mut margin = None;
    for (k, v) in pairs {
        match k.as_str() {
            "metric" => metric = Some(v.as_str().ok_or("check \"metric\" must be a string")?),
            "baseline" => baseline = Some(v.as_f64().ok_or("check \"baseline\" must be a number")?),
            "fresh" => fresh = Some(v.as_f64().ok_or("check \"fresh\" must be a number")?),
            "allowed" => allowed = Some(v.as_f64().ok_or("check \"allowed\" must be a number")?),
            "margin" => margin = Some(v.as_f64().ok_or("check \"margin\" must be a number")?),
            unknown => return Err(format!("unknown key \"{unknown}\" in history check")),
        }
    }
    Ok(HistoryCheck {
        metric: metric.ok_or("check is missing \"metric\"")?.into(),
        baseline: baseline.ok_or("check is missing \"baseline\"")?,
        fresh: fresh.ok_or("check is missing \"fresh\"")?,
        allowed: allowed.ok_or("check is missing \"allowed\"")?,
        margin: margin.ok_or("check is missing \"margin\"")?,
    })
}

/// Appends one record to the ledger at `path` (created on demand).
pub fn append_history(path: &Path, record: &HistoryRecord) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(format!("{}\n", record.to_json().to_compact_string()).as_bytes())?;
    file.flush()
}

/// Appends ledger records for every gated entry of a `gate` / `gate all`
/// invocation.  Failures to extend the ledger are reported, never fatal —
/// the gate verdict must not depend on history bookkeeping.
pub fn record_gate_outcomes(
    outcomes: &[(&GateReport, bool)],
    profile: BenchProfile,
    tolerance: f64,
    path: &Path,
) {
    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let revision = registry::git_revision();
    for (report, _passed) in outcomes {
        let record = HistoryRecord::from_gate_report(
            report,
            profile,
            tolerance,
            timestamp,
            revision.clone(),
        );
        if let Err(e) = append_history(path, &record) {
            eprintln!(
                "warning: could not extend {} for entry {}: {e}",
                path.display(),
                report.entry
            );
        }
    }
    if !outcomes.is_empty() {
        println!("extended {} (+{} records)", path.display(), outcomes.len());
    }
}

/// Convenience over [`record_gate_outcomes`] for `gate all` outcome lists.
pub fn record_gate_all_outcomes(
    outcomes: &[(&'static str, GateOutcome)],
    profile: BenchProfile,
    tolerance: f64,
    path: &Path,
) {
    let gated: Vec<(&GateReport, bool)> = outcomes
        .iter()
        .filter_map(|(_, o)| match o {
            GateOutcome::Pass(r) => Some((r, true)),
            GateOutcome::Fail(r) => Some((r, false)),
            GateOutcome::Skipped(_) | GateOutcome::Error(_) => None,
        })
        .collect();
    record_gate_outcomes(&gated, profile, tolerance, path);
}

/// Loads the ledger, skipping (with a warning string) empty and corrupt
/// lines.  A missing file is simply an empty history.
pub fn load_history(path: &Path) -> std::io::Result<(Vec<HistoryRecord>, Vec<String>)> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), Vec::new())),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut warnings = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            warnings.push(format!("line {n}: empty, skipped"));
            continue;
        }
        match Json::parse(line) {
            Err(e) => warnings.push(format!("line {n}: not valid JSON ({e}), skipped")),
            Ok(json) => match HistoryRecord::from_json(&json) {
                Err(e) => warnings.push(format!("line {n}: {e}, skipped")),
                Ok(record) => records.push(record),
            },
        }
    }
    Ok((records, warnings))
}

/// One (entry, metric) series judged by the drift detector.
#[derive(Debug)]
pub struct TrendSeries {
    /// The gated entry.
    pub entry: String,
    /// The check metric.
    pub metric: String,
    /// The health values, in ledger (chronological) order.
    pub values: Vec<f64>,
    /// The detector's verdict.
    pub report: DriftReport,
}

/// The full trend analysis over a loaded ledger.
#[derive(Debug)]
pub struct TrendAnalysis {
    /// Series with at least [`MIN_RUNS`] records, judged.
    pub series: Vec<TrendSeries>,
    /// `(entry, metric, runs)` triples with too little history to judge.
    pub insufficient: Vec<(String, String, usize)>,
}

impl TrendAnalysis {
    /// The judged series that are drifting.
    pub fn drifting(&self) -> Vec<&TrendSeries> {
        self.series
            .iter()
            .filter(|s| s.report.is_drifting())
            .collect()
    }
}

/// Groups ledger records into per-(entry, metric) health series and runs the
/// drift detector over each series with enough history.
pub fn analyze_history(records: &[HistoryRecord], cumulative_threshold: f64) -> TrendAnalysis {
    let mut keys: Vec<(String, String)> = Vec::new();
    let mut values: Vec<Vec<f64>> = Vec::new();
    for record in records {
        for check in &record.checks {
            let key = (record.entry.clone(), check.metric.clone());
            match keys.iter().position(|k| *k == key) {
                Some(i) => values[i].push(check.health()),
                None => {
                    keys.push(key);
                    values.push(vec![check.health()]);
                }
            }
        }
    }
    let mut series = Vec::new();
    let mut insufficient = Vec::new();
    for ((entry, metric), vals) in keys.into_iter().zip(values) {
        if vals.len() < MIN_RUNS {
            insufficient.push((entry, metric, vals.len()));
            continue;
        }
        let report = detect_drift(&vals, MIN_CONSECUTIVE, cumulative_threshold);
        series.push(TrendSeries {
            entry,
            metric,
            values: vals,
            report,
        });
    }
    TrendAnalysis {
        series,
        insufficient,
    }
}

fn kinds_label(report: &DriftReport) -> String {
    if report.kinds.is_empty() {
        return "ok".into();
    }
    let kinds: Vec<&str> = report
        .kinds
        .iter()
        .map(|k| match k {
            DriftKind::Consecutive => "consecutive",
            DriftKind::Cumulative => "cumulative",
        })
        .collect();
    format!("DRIFT ({})", kinds.join("+"))
}

/// Renders the human/CI-readable trend report.
pub fn render_report(
    analysis: &TrendAnalysis,
    path: &Path,
    records: usize,
    skipped: usize,
    cumulative_threshold: f64,
) -> String {
    let mut out = String::new();
    out.push_str("campaign trend — benchmark drift report\n");
    out.push_str(&format!(
        "history: {} ({records} records, {skipped} lines skipped)\n",
        path.display()
    ));
    out.push_str(&format!(
        "rules: >= {MIN_CONSECUTIVE} consecutive declining runs, or > {:.0}% cumulative \
         drop from the series peak\n\n",
        cumulative_threshold * 100.0
    ));
    if analysis.series.is_empty() {
        out.push_str(&format!(
            "insufficient history: no series has the {MIN_RUNS}+ runs the drift \
             detector needs (gate runs extend results/{HISTORY_FILE})\n"
        ));
    } else {
        out.push_str(&format!(
            "{:<20} {:<36} {:>5} {:>12} {:>12} {:>7} {:>7}  status\n",
            "entry", "metric", "runs", "latest", "peak", "drop", "streak"
        ));
        for s in &analysis.series {
            let latest = *s.values.last().unwrap_or(&f64::NAN);
            let peak = s.values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            out.push_str(&format!(
                "{:<20} {:<36} {:>5} {:>12.4} {:>12.4} {:>6.1}% {:>7}  {}\n",
                s.entry,
                s.metric,
                s.values.len(),
                latest,
                peak,
                s.report.drop_from_peak * 100.0,
                s.report.declining_streak,
                kinds_label(&s.report)
            ));
        }
    }
    if !analysis.insufficient.is_empty() {
        out.push('\n');
        for (entry, metric, runs) in &analysis.insufficient {
            out.push_str(&format!(
                "insufficient history: {entry} {metric} has {runs} run(s), needs {MIN_RUNS}\n"
            ));
        }
    }
    let drifting = analysis.drifting();
    out.push('\n');
    if drifting.is_empty() {
        out.push_str("verdict: no drift detected\n");
    } else {
        out.push_str(&format!(
            "verdict: DRIFT in {} series — slowdowns each inside the per-run gate \
             tolerance have compounded\n",
            drifting.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{check_fps, GateReport};

    fn fps_record(fps: f64, timestamp: u64) -> HistoryRecord {
        let check = check_fps("CHARISMA/lazy frames_per_second", 100_000.0, fps, 0.0, 0.30);
        let report = GateReport {
            entry: "bench_frame_loop".into(),
            checks: vec![check],
        };
        HistoryRecord::from_gate_report(
            &report,
            BenchProfile::Quick,
            0.30,
            timestamp,
            "deadbeef".into(),
        )
    }

    #[test]
    fn records_round_trip_through_the_ledger_line_format() {
        let record = fps_record(92_000.0, 1_700_000_000);
        let line = record.to_json().to_compact_string();
        let back = HistoryRecord::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, record);
        assert!(!line.contains('\n'));
    }

    #[test]
    fn unknown_keys_and_wrong_schema_are_rejected() {
        let record = fps_record(92_000.0, 1);
        let line = record.to_json().to_compact_string();
        let extra = line.replacen('{', "{\"bogus\":1,", 1);
        let e = HistoryRecord::from_json(&Json::parse(&extra).unwrap()).unwrap_err();
        assert!(e.contains("unknown key"), "{e}");
        let wrong = line.replace(HISTORY_SCHEMA, "charisma.other.v9");
        let e = HistoryRecord::from_json(&Json::parse(&wrong).unwrap()).unwrap_err();
        assert!(e.contains("schema"), "{e}");
    }

    #[test]
    fn corrupt_and_empty_ledger_lines_are_skipped_with_warnings() {
        let dir = std::env::temp_dir().join(format!(
            "charisma-trend-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(HISTORY_FILE);
        let good = fps_record(95_000.0, 10).to_json().to_compact_string();
        fs::write(
            &path,
            format!("{good}\n\nnot json at all\n{{\"schema\":\"wrong\"}}\n{good}\n"),
        )
        .unwrap();
        let (records, warnings) = load_history(&path).unwrap();
        assert_eq!(records.len(), 2, "{warnings:?}");
        assert_eq!(warnings.len(), 3, "{warnings:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_ledger_is_empty_history() {
        let (records, warnings) =
            load_history(Path::new("/nonexistent/definitely/missing.jsonl")).unwrap();
        assert!(records.is_empty() && warnings.is_empty());
    }

    /// The acceptance scenario: three runs, each ~10 % slower than the
    /// previous.  Every individual gate passes its 30 % tolerance, but the
    /// cumulative 19 % drop from the series peak is exactly the slow drift
    /// `campaign trend` exists to flag.
    #[test]
    fn three_run_ten_percent_drift_passes_the_gate_but_trips_the_trend() {
        let fps = [100_000.0, 90_000.0, 81_000.0];
        for f in fps {
            let check = check_fps("m", 100_000.0, f, 0.0, 0.30);
            assert!(check.passed, "each individual gate run must pass: {check}");
        }
        let records: Vec<HistoryRecord> = fps
            .iter()
            .enumerate()
            .map(|(i, &f)| fps_record(f, i as u64))
            .collect();
        let analysis = analyze_history(&records, DEFAULT_CUMULATIVE_THRESHOLD);
        assert_eq!(analysis.series.len(), 1);
        assert!(analysis.insufficient.is_empty());
        let drifting = analysis.drifting();
        assert_eq!(drifting.len(), 1, "{:?}", analysis.series);
        assert!(
            drifting[0].report.kinds.contains(&DriftKind::Cumulative),
            "{:?}",
            drifting[0].report
        );
    }

    #[test]
    fn two_runs_are_insufficient_history() {
        let records = vec![fps_record(100_000.0, 0), fps_record(90_000.0, 1)];
        let analysis = analyze_history(&records, DEFAULT_CUMULATIVE_THRESHOLD);
        assert!(analysis.series.is_empty());
        assert_eq!(analysis.insufficient.len(), 1);
        let report = render_report(&analysis, Path::new("x.jsonl"), 2, 0, 0.15);
        assert!(report.contains("insufficient history"), "{report}");
    }

    #[test]
    fn steady_or_improving_series_do_not_drift() {
        let records: Vec<HistoryRecord> = [100_000.0, 99_000.0, 101_000.0, 100_500.0]
            .iter()
            .enumerate()
            .map(|(i, &f)| fps_record(f, i as u64))
            .collect();
        let analysis = analyze_history(&records, DEFAULT_CUMULATIVE_THRESHOLD);
        assert_eq!(analysis.series.len(), 1);
        assert!(analysis.drifting().is_empty(), "{:?}", analysis.series);
    }

    #[test]
    fn sweep_checks_track_the_tolerance_margin() {
        let sweep = HistoryCheck {
            metric: "voice_loss_rate".into(),
            baseline: 0.010,
            fresh: 0.011,
            allowed: 0.004,
            margin: (0.004 - 0.001) / 0.004,
        };
        assert_eq!(sweep.health(), sweep.margin);
        let fps = HistoryCheck {
            metric: "CHARISMA/lazy frames_per_second".into(),
            baseline: 100_000.0,
            fresh: 95_000.0,
            allowed: 70_000.0,
            margin: 0.25,
        };
        assert_eq!(fps.health(), 95_000.0);
    }
}
