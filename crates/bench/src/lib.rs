//! # charisma-bench — the experiment campaign harness
//!
//! Every evaluation artifact of the paper — and every scenario beyond the
//! paper — is a named entry in the [`registry`]: a declarative
//! [`Campaign`](charisma::Campaign) of
//! [`ScenarioSpec`](charisma::ScenarioSpec)s for the sweep-shaped
//! experiments, or a bespoke generator ([`artifacts`]) for the handful that
//! are not sweeps (the parameter table, the fading trace, the PHY curves and
//! the frame-loop perf benchmark).  One binary drives them all:
//!
//! ```text
//! cargo run --release -p charisma_bench --bin campaign -- list
//! cargo run --release -p charisma_bench --bin campaign -- describe fig11
//! cargo run --release -p charisma_bench --bin campaign -- run fig11 --profile quick
//! cargo run --release -p charisma_bench --bin campaign -- run all --profile full
//! ```
//!
//! Each run prints aligned text tables (the rows/series the paper reports),
//! writes its artifacts under `results/`, and records provenance — spec
//! JSON, profile, seeds, git revision — in `results/MANIFEST.json`.  The
//! per-figure binaries (`fig11`, `capacity_table`, …) still exist as thin
//! wrappers over the same registry entries.  Parameter values and exact
//! commands are recorded in `EXPERIMENTS.md` at the repository root, whose
//! generated section the `campaign` binary maintains via `--write-handbook`.
//!
//! The run length per sweep point is set by the [`BenchProfile`]
//! (`--profile` or `CHARISMA_BENCH_PROFILE=quick|standard|full`; an
//! unrecognised value is an error, not a silent default).

use charisma::{FrameBudget, ReplicationPolicy, SimConfig};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

pub mod artifacts;
pub mod checkpoint;
pub mod gate;
pub mod registry;
pub mod trend;

/// Whether a run may refresh committed baseline files under `results/`.
///
/// The committed frame-loop baseline (`results/BENCH_frame_loop.json`) is
/// the reference the CI regression gate compares against, so regenerating it
/// must be a deliberate act: only an **explicitly named** standard-profile
/// run (`campaign run bench_frame_loop --profile standard`, or the
/// `bench_frame_loop` wrapper binary) writes it.  Bulk runs
/// (`campaign run all`) and non-standard profiles are routed to untracked
/// sidecar files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineWrite {
    /// The entry was named explicitly: a standard-profile run refreshes the
    /// committed baseline.
    Allowed,
    /// The entry runs as part of a bulk `run all`: baseline output is routed
    /// to an untracked sidecar file so the committed baseline can never be
    /// clobbered incidentally.
    Sidecar,
}

/// How long each sweep point simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchProfile {
    /// ~10 simulated seconds per point: smoke-test quality, minutes overall.
    Quick,
    /// ~40 simulated seconds per point (default).
    Standard,
    /// ~100 simulated seconds per point: paper-quality curves.
    Full,
}

impl BenchProfile {
    /// Every profile, with its canonical name.
    pub const ALL: [BenchProfile; 3] = [
        BenchProfile::Quick,
        BenchProfile::Standard,
        BenchProfile::Full,
    ];

    /// The canonical (lowercase) name of the profile.
    pub fn label(self) -> &'static str {
        match self {
            BenchProfile::Quick => "quick",
            BenchProfile::Standard => "standard",
            BenchProfile::Full => "full",
        }
    }

    /// Parses a profile name (case-insensitive).  Unrecognised values are an
    /// error that lists the valid choices — never a silent fallback.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_lowercase().as_str() {
            "quick" => Ok(BenchProfile::Quick),
            "standard" => Ok(BenchProfile::Standard),
            "full" => Ok(BenchProfile::Full),
            other => Err(format!(
                "unrecognised profile \"{other}\" (valid: quick, standard, full)"
            )),
        }
    }

    /// Reads the profile from `CHARISMA_BENCH_PROFILE` (unset: `standard`).
    ///
    /// # Panics
    ///
    /// Panics with the valid choices if the variable is set to an
    /// unrecognised value, so a typo like `CHARISMA_BENCH_PROFILE=ful` fails
    /// loudly instead of silently running the standard profile.
    pub fn from_env() -> Self {
        match std::env::var("CHARISMA_BENCH_PROFILE") {
            Err(std::env::VarError::NotPresent) => BenchProfile::Standard,
            Err(e) => panic!("CHARISMA_BENCH_PROFILE is not valid unicode: {e}"),
            Ok(value) => match Self::parse(&value) {
                Ok(profile) => profile,
                Err(e) => panic!("CHARISMA_BENCH_PROFILE: {e}"),
            },
        }
    }

    /// Number of measured frames per sweep point.
    pub fn measured_frames(self) -> u64 {
        match self {
            BenchProfile::Quick => 4_000,
            BenchProfile::Standard => 16_000,
            BenchProfile::Full => 40_000,
        }
    }

    /// Number of warm-up frames per sweep point.
    pub fn warmup_frames(self) -> u64 {
        match self {
            BenchProfile::Quick => 800,
            BenchProfile::Standard => 2_000,
            BenchProfile::Full => 4_000,
        }
    }

    /// The frame budget [`DurationSpec::Profile`](charisma::DurationSpec)
    /// scenario specs expand with under this profile.
    pub fn budget(self) -> FrameBudget {
        FrameBudget {
            warmup: self.warmup_frames(),
            measured: self.measured_frames(),
        }
    }

    /// One line describing what this profile implies per sweep point — run
    /// length and replication policy.  `campaign list`/`describe` and the
    /// handbook preamble all print this string, so the CLI and the docs can
    /// never drift apart.
    pub fn describe(self) -> String {
        let budget = self.budget();
        format!(
            "{} warm-up + {} measured frames/point, {}",
            budget.warmup,
            budget.measured,
            self.replications().describe()
        )
    }

    /// The default replication policy per sweep point under this profile
    /// (specs may override it via their `replications` field).
    ///
    /// Quick runs a fixed 3 replications — enough for a confidence interval
    /// without blowing the smoke-run budget.  Standard and full enable the
    /// sequential stopping rule: replications keep accumulating (up to the
    /// cap) until every headline metric's relative 95 % CI half-width is
    /// below the target.
    pub fn replications(self) -> ReplicationPolicy {
        match self {
            BenchProfile::Quick => ReplicationPolicy::fixed(3),
            BenchProfile::Standard => ReplicationPolicy::adaptive(3, 6, 0.10),
            BenchProfile::Full => ReplicationPolicy::adaptive(5, 10, 0.05),
        }
    }
}

/// The base configuration shared by every experiment binary: the paper's
/// Table 1 parameters with the run length set by the bench profile.
pub fn base_config(profile: BenchProfile) -> SimConfig {
    let mut cfg = SimConfig::default_paper();
    cfg.warmup_frames = profile.warmup_frames();
    cfg.measured_frames = profile.measured_frames();
    cfg
}

/// The directory where CSV outputs are written (`results/`, created on
/// demand next to the workspace root or the current directory).
pub fn output_dir() -> PathBuf {
    let dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: could not create {dir:?}: {e}");
    }
    dir.to_path_buf()
}

/// Writes an arbitrary text artifact (e.g. a JSON report) under
/// [`output_dir`]; returns the path written.
///
/// Unlike [`write_csv`] (whose CSVs are redundant with the printed tables),
/// this propagates write failures: callers persisting a record that CI
/// uploads must fail loudly rather than let a stale checked-in file
/// masquerade as the run's output.
pub fn write_output(name: &str, contents: &str) -> std::io::Result<PathBuf> {
    write_output_to(&output_dir(), name, contents)
}

/// [`write_output`] into an explicit results directory (created on demand).
///
/// The durable campaign runner ([`checkpoint`]) renders artifacts into the
/// directory its [`checkpoint::DurableOptions`] names — `results/` for real
/// runs, scratch directories for the fault-injection tests and the CI resume
/// smoke test — so everything that writes files takes the directory as data.
pub fn write_output_to(dir: &Path, name: &str, contents: &str) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    fs::write(&path, contents)?;
    println!("wrote {}", path.display());
    Ok(path)
}

/// Writes a CSV file under [`output_dir`]; returns the path written.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = output_dir().join(name);
    match fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(f, "{header}");
            for row in rows {
                let _ = writeln!(f, "{row}");
            }
            println!("wrote {}", path.display());
        }
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    path
}

/// The voice-user sweep used by Fig. 11 for the given profile.
pub fn fig11_voice_counts(profile: BenchProfile) -> Vec<u32> {
    match profile {
        BenchProfile::Quick => vec![20, 60, 100, 140, 180],
        _ => vec![20, 40, 60, 80, 100, 120, 140, 160, 180, 200],
    }
}

/// The data-user sweep used by Figs. 12 and 13 for the given profile.
pub fn fig12_data_counts(profile: BenchProfile) -> Vec<u32> {
    match profile {
        BenchProfile::Quick => vec![2, 6, 10, 14, 20],
        _ => vec![2, 4, 6, 8, 10, 12, 14, 16, 20, 24],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_scale_run_length() {
        assert!(BenchProfile::Quick.measured_frames() < BenchProfile::Standard.measured_frames());
        assert!(BenchProfile::Standard.measured_frames() < BenchProfile::Full.measured_frames());
    }

    #[test]
    fn profile_parsing_is_strict() {
        for p in BenchProfile::ALL {
            assert_eq!(BenchProfile::parse(p.label()), Ok(p));
            assert_eq!(BenchProfile::parse(&p.label().to_uppercase()), Ok(p));
        }
        for bad in ["", "ful", "QUICKLY", "default", "Standard "] {
            let e = BenchProfile::parse(bad).unwrap_err();
            assert!(
                e.contains("quick, standard, full"),
                "error must list the valid choices, got {e:?}"
            );
        }
    }

    #[test]
    fn profile_replication_policies_are_valid_and_scale_up() {
        for p in BenchProfile::ALL {
            p.replications().validate().unwrap();
        }
        assert_eq!(BenchProfile::Quick.replications().min_reps, 3);
        assert!(BenchProfile::Quick.replications().target_rel_ci95.is_none());
        assert!(
            BenchProfile::Full.replications().min_reps
                >= BenchProfile::Standard.replications().min_reps
        );
        let std_target = BenchProfile::Standard
            .replications()
            .target_rel_ci95
            .unwrap();
        let full_target = BenchProfile::Full.replications().target_rel_ci95.unwrap();
        assert!(full_target < std_target, "full demands tighter intervals");
    }

    #[test]
    fn budget_matches_the_frame_counts() {
        for p in BenchProfile::ALL {
            let b = p.budget();
            assert_eq!(b.warmup, p.warmup_frames());
            assert_eq!(b.measured, p.measured_frames());
        }
    }

    #[test]
    fn base_config_is_valid_for_every_profile() {
        for p in [
            BenchProfile::Quick,
            BenchProfile::Standard,
            BenchProfile::Full,
        ] {
            base_config(p).validate();
        }
    }
}
