//! Shared infrastructure for the figure/table regeneration binaries.
//!
//! Every evaluation artifact of the paper has its own binary in `src/bin/`:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — simulation parameters |
//! | `fig5_fading` | Fig. 5 — sample of the combined fading process |
//! | `fig7_abicm` | Fig. 7 — ABICM BER / throughput vs CSI |
//! | `fig11` | Fig. 11(a)–(f) — voice packet loss vs voice users |
//! | `fig12` | Fig. 12(a)–(f) — data throughput vs data users |
//! | `fig13` | Fig. 13(a)–(f) — data delay vs data users |
//! | `capacity_table` | §5.1 capacities at the 1 % loss threshold |
//! | `qos_capacity` | §5.2 (delay ≤ 1 s, 0.25 pkt/frame) QoS capacities |
//! | `speed_sweep` | §5.3.3 mobile-speed sensitivity |
//! | `ablation_csi` | §5.3.1/5.3.2 ablation: CHARISMA without CSI awareness |
//! | `bench_frame_loop` | frame-loop throughput trajectory (`results/BENCH_frame_loop.json`) |
//!
//! Each binary prints an aligned text table (the "rows/series the paper
//! reports") and writes a CSV under `results/` for plotting.  Set
//! `CHARISMA_BENCH_PROFILE=quick|full` to trade accuracy for runtime
//! (default: `standard`).

use charisma::{ProtocolKind, SimConfig};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// How long each sweep point simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchProfile {
    /// ~10 simulated seconds per point: smoke-test quality, minutes overall.
    Quick,
    /// ~40 simulated seconds per point (default).
    Standard,
    /// ~100 simulated seconds per point: paper-quality curves.
    Full,
}

impl BenchProfile {
    /// Reads the profile from `CHARISMA_BENCH_PROFILE`.
    pub fn from_env() -> Self {
        match std::env::var("CHARISMA_BENCH_PROFILE")
            .unwrap_or_default()
            .to_lowercase()
            .as_str()
        {
            "quick" => BenchProfile::Quick,
            "full" => BenchProfile::Full,
            _ => BenchProfile::Standard,
        }
    }

    /// Number of measured frames per sweep point.
    pub fn measured_frames(self) -> u64 {
        match self {
            BenchProfile::Quick => 4_000,
            BenchProfile::Standard => 16_000,
            BenchProfile::Full => 40_000,
        }
    }

    /// Number of warm-up frames per sweep point.
    pub fn warmup_frames(self) -> u64 {
        match self {
            BenchProfile::Quick => 800,
            BenchProfile::Standard => 2_000,
            BenchProfile::Full => 4_000,
        }
    }
}

/// The base configuration shared by every experiment binary: the paper's
/// Table 1 parameters with the run length set by the bench profile.
pub fn base_config(profile: BenchProfile) -> SimConfig {
    let mut cfg = SimConfig::default_paper();
    cfg.warmup_frames = profile.warmup_frames();
    cfg.measured_frames = profile.measured_frames();
    cfg
}

/// The directory where CSV outputs are written (`results/`, created on
/// demand next to the workspace root or the current directory).
pub fn output_dir() -> PathBuf {
    let dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: could not create {dir:?}: {e}");
    }
    dir.to_path_buf()
}

/// Writes an arbitrary text artifact (e.g. a JSON report) under
/// [`output_dir`]; returns the path written.
///
/// Unlike [`write_csv`] (whose CSVs are redundant with the printed tables),
/// this propagates write failures: callers persisting a record that CI
/// uploads must fail loudly rather than let a stale checked-in file
/// masquerade as the run's output.
pub fn write_output(name: &str, contents: &str) -> std::io::Result<PathBuf> {
    let path = output_dir().join(name);
    fs::write(&path, contents)?;
    println!("wrote {}", path.display());
    Ok(path)
}

/// Writes a CSV file under [`output_dir`]; returns the path written.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = output_dir().join(name);
    match fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(f, "{header}");
            for row in rows {
                let _ = writeln!(f, "{row}");
            }
            println!("wrote {}", path.display());
        }
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    path
}

/// The voice-user sweep used by Fig. 11 for the given profile.
pub fn fig11_voice_counts(profile: BenchProfile) -> Vec<u32> {
    match profile {
        BenchProfile::Quick => vec![20, 60, 100, 140, 180],
        _ => vec![20, 40, 60, 80, 100, 120, 140, 160, 180, 200],
    }
}

/// The data-user sweep used by Figs. 12 and 13 for the given profile.
pub fn fig12_data_counts(profile: BenchProfile) -> Vec<u32> {
    match profile {
        BenchProfile::Quick => vec![2, 6, 10, 14, 20],
        _ => vec![2, 4, 6, 8, 10, 12, 14, 16, 20, 24],
    }
}

/// The (fixed other-class population, request queue) panels of Figs. 11–13:
/// the paper's sub-figures (a)–(f).
pub fn figure_panels() -> Vec<(u32, bool, &'static str)> {
    vec![
        (0, false, "(a) without request queue"),
        (0, true, "(b) with request queue"),
        (10, false, "(c) without request queue"),
        (10, true, "(d) with request queue"),
        (20, false, "(e) without request queue"),
        (20, true, "(f) with request queue"),
    ]
}

/// Formats a protocol row of a sweep table.
pub fn format_row(label: &str, values: &[f64], formatter: impl Fn(f64) -> String) -> String {
    let mut row = format!("{label:<12}");
    for &v in values {
        row.push_str(&format!("{:>10}", formatter(v)));
    }
    row
}

/// Formats a sweep table header.
pub fn format_header(first: &str, loads: &[u32]) -> String {
    let mut h = format!("{first:<12}");
    for l in loads {
        h.push_str(&format!("{l:>10}"));
    }
    h
}

/// All six protocols in the paper's listing order.
pub fn all_protocols() -> [ProtocolKind; 6] {
    ProtocolKind::ALL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_scale_run_length() {
        assert!(BenchProfile::Quick.measured_frames() < BenchProfile::Standard.measured_frames());
        assert!(BenchProfile::Standard.measured_frames() < BenchProfile::Full.measured_frames());
    }

    #[test]
    fn base_config_is_valid_for_every_profile() {
        for p in [
            BenchProfile::Quick,
            BenchProfile::Standard,
            BenchProfile::Full,
        ] {
            base_config(p).validate();
        }
    }

    #[test]
    fn figure_panels_match_the_papers_six_subfigures() {
        let panels = figure_panels();
        assert_eq!(panels.len(), 6);
        assert_eq!(panels.iter().filter(|(_, q, _)| *q).count(), 3);
        assert_eq!(panels.iter().filter(|(n, _, _)| *n == 0).count(), 2);
    }

    #[test]
    fn table_formatting_is_aligned() {
        let header = format_header("protocol", &[20, 40]);
        let row = format_row("CHARISMA", &[0.001, 0.01], |v| format!("{:.2}%", v * 100.0));
        assert_eq!(header.len(), row.len());
    }
}
