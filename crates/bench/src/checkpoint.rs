//! Durable campaign execution: per-entry checkpoint manifests and resume.
//!
//! Every sweep entry run through [`run_entry_durable`] maintains a
//! checkpoint manifest at `results/.checkpoint/<entry>.jsonl`: a header line
//! binding the checkpoint to its (entry, profile, git revision, campaign
//! definition, point count), then one strict-JSON record per completed sweep
//! point — appended the moment the point finishes, each carrying the point's
//! identity key, its replication count, an FNV-1a hash of the serialised
//! result, and the full bit-exact result itself (floats persisted as IEEE-754
//! bit patterns; see `charisma::persist`).
//!
//! A run killed partway — by a crash, a CI timeout, or the deterministic
//! fault-injection hook (`CHARISMA_FAULT_POINT`, or
//! [`DurableOptions::fault_point`] in-process) — can then be resumed with
//! `campaign run --resume`: the checkpoint is validated against the current
//! spec/profile/revision (any mismatch refuses the resume, exit 2), the
//! completed points are spliced back verbatim, and only the remainder is
//! simulated.  Because the persisted results round-trip bit-exactly, the
//! rendered CSVs and the manifest of an interrupted-and-resumed campaign are
//! byte-identical to an uninterrupted run at any thread count
//! (`crates/bench/tests/durability.rs` pins this).
//!
//! Torn tails: a process killed mid-append can leave a final partial line.
//! Only an **unparsable final fragment without a trailing newline** is
//! dropped (with a warning) on resume; any complete line that fails strict
//! validation — unknown keys, a stale revision, a foreign campaign — refuses
//! the resume instead.

use crate::registry::{self, EntryKind, EntryReport};
use crate::{write_output_to, BaselineWrite, BenchProfile};
use charisma::spec::CampaignPoint;
use charisma::{
    decode_replicated_result, encode_replicated_result, fnv1a_64, Json, ReplicatedResult,
};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Schema tag of the checkpoint header line.
pub const CHECKPOINT_SCHEMA: &str = "charisma.checkpoint.v1";

/// Environment variable carrying the fault-injection point for CLI runs: the
/// campaign aborts (exit 3) after this many newly completed sweep points.
pub const FAULT_POINT_ENV: &str = "CHARISMA_FAULT_POINT";

/// How a durable campaign run executes.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Resume from an existing checkpoint instead of starting fresh.
    pub resume: bool,
    /// Deterministic fault injection: abort the campaign after this many
    /// *newly* completed points (replayed points do not count).  `None`
    /// disables injection.
    pub fault_point: Option<u64>,
    /// Directory artifacts, the manifest and `.checkpoint/` live under.
    pub results_dir: PathBuf,
}

impl DurableOptions {
    /// Fresh (non-resuming, fault-free) options writing under `results_dir`.
    pub fn new(results_dir: impl Into<PathBuf>) -> Self {
        DurableOptions {
            resume: false,
            fault_point: None,
            results_dir: results_dir.into(),
        }
    }
}

/// Why a durable campaign run did not complete.
#[derive(Debug)]
pub enum DurableError {
    /// `--resume` found a checkpoint that does not match the current
    /// spec/profile/revision (or is otherwise invalid).  The CLI maps this
    /// to exit code 2: resuming would silently mix incompatible runs.
    Mismatch(String),
    /// The run aborted after `completed` of `total` points — the injected
    /// fault fired (or an observer write failed).  CLI exit code 3; the
    /// checkpoint retains every completed point for a later `--resume`.
    Aborted {
        /// The entry whose campaign was aborted.
        entry: String,
        /// Points present in the checkpoint when the run stopped.
        completed: usize,
        /// Total points of the campaign.
        total: usize,
    },
    /// Any other failure (I/O, spec validation, unknown entry).  Exit 1.
    Failure(String),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
            DurableError::Aborted {
                entry,
                completed,
                total,
            } => write!(
                f,
                "{entry}: aborted after {completed}/{total} points \
                 (checkpoint retained; finish with `campaign run {entry} --resume`)"
            ),
            DurableError::Failure(m) => write!(f, "{m}"),
        }
    }
}

impl DurableError {
    /// The process exit code the CLI reports for this error.
    pub fn exit_code(&self) -> u8 {
        match self {
            DurableError::Failure(_) => 1,
            DurableError::Mismatch(_) => 2,
            DurableError::Aborted { .. } => 3,
        }
    }
}

/// The checkpoint directory under a results directory.
pub fn checkpoint_dir(results_dir: &Path) -> PathBuf {
    results_dir.join(".checkpoint")
}

/// The checkpoint manifest path of one entry.
pub fn checkpoint_path(results_dir: &Path, entry: &str) -> PathBuf {
    checkpoint_dir(results_dir).join(format!("{entry}.jsonl"))
}

/// Parses [`FAULT_POINT_ENV`].  Unset: no fault.  Anything but a positive
/// integer is an error — a typo must not silently run fault-free.
pub fn fault_point_from_env() -> Result<Option<u64>, String> {
    match std::env::var(FAULT_POINT_ENV) {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(e) => Err(format!("{FAULT_POINT_ENV} is not valid unicode: {e}")),
        Ok(value) => match value.parse::<u64>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(format!(
                "{FAULT_POINT_ENV} must be a positive integer (abort after N \
                 completed points), got \"{value}\""
            )),
        },
    }
}

/// 16-hex-digit FNV-1a 64 digest of a byte string.
fn hash_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a_64(bytes))
}

/// The stable identity of one expanded campaign point: the same seven
/// coordinates that open every row of the uniform campaign CSV.
pub fn point_key(p: &CampaignPoint) -> String {
    format!(
        "{},{},{},{},{},{:.2},{}",
        p.scenario,
        p.point.protocol.label(),
        p.point.config.request_queue,
        p.point.config.num_voice,
        p.point.config.num_data,
        p.speed_kmh,
        p.point.load
    )
}

fn header_json(
    entry: &str,
    profile: BenchProfile,
    git_revision: &str,
    campaign_hash: &str,
    points: usize,
) -> Json {
    Json::Object(vec![
        ("schema".into(), Json::Str(CHECKPOINT_SCHEMA.into())),
        ("entry".into(), Json::Str(entry.into())),
        ("profile".into(), Json::Str(profile.label().into())),
        ("git_revision".into(), Json::Str(git_revision.into())),
        ("campaign".into(), Json::Str(campaign_hash.into())),
        ("points".into(), Json::Int(points as u64)),
    ])
}

fn record_json(idx: usize, key: &str, result: &ReplicatedResult) -> (Json, String) {
    let encoded = encode_replicated_result(result);
    let hash = hash_hex(encoded.to_compact_string().as_bytes());
    (
        Json::Object(vec![
            ("point".into(), Json::Int(idx as u64)),
            ("key".into(), Json::Str(key.into())),
            ("reps".into(), Json::Int(result.stats.reps())),
            ("hash".into(), Json::Str(hash.clone())),
            ("result".into(), encoded),
        ]),
        hash,
    )
}

/// One serialised checkpoint record line (without the trailing newline).
/// Exposed so the property tests can round-trip record lines through the
/// strict codec exactly.
pub fn record_line(idx: usize, key: &str, result: &ReplicatedResult) -> String {
    record_json(idx, key, result).0.to_compact_string()
}

/// Strictly parses one checkpoint record line back into its parts,
/// validating the identity key, the replication count and the result hash.
/// `keys` maps point index -> expected identity key.
pub fn parse_record_line(line: &str, keys: &[String]) -> Result<(usize, ReplicatedResult), String> {
    let json = Json::parse(line).map_err(|e| format!("record is not valid JSON: {e}"))?;
    let pairs = json
        .as_object()
        .ok_or_else(|| format!("record must be an object, got {}", json.type_name()))?;
    let mut point: Option<u64> = None;
    let mut key: Option<&str> = None;
    let mut reps: Option<u64> = None;
    let mut hash: Option<&str> = None;
    let mut result: Option<&Json> = None;
    for (k, v) in pairs {
        match k.as_str() {
            "point" => point = Some(v.as_u64().ok_or("\"point\" must be an integer")?),
            "key" => key = Some(v.as_str().ok_or("\"key\" must be a string")?),
            "reps" => reps = Some(v.as_u64().ok_or("\"reps\" must be an integer")?),
            "hash" => hash = Some(v.as_str().ok_or("\"hash\" must be a string")?),
            "result" => result = Some(v),
            unknown => return Err(format!("unknown key \"{unknown}\" in checkpoint record")),
        }
    }
    let point = point.ok_or("record is missing \"point\"")? as usize;
    let key = key.ok_or("record is missing \"key\"")?;
    let reps = reps.ok_or("record is missing \"reps\"")?;
    let hash = hash.ok_or("record is missing \"hash\"")?;
    let result = result.ok_or("record is missing \"result\"")?;
    if point >= keys.len() {
        return Err(format!(
            "record point {point} is out of range (campaign has {} points)",
            keys.len()
        ));
    }
    if key != keys[point] {
        return Err(format!(
            "record key \"{key}\" does not match point {point}'s identity \
             \"{}\" — the campaign definition changed",
            keys[point]
        ));
    }
    let recomputed = hash_hex(result.to_compact_string().as_bytes());
    if recomputed != hash {
        return Err(format!(
            "record hash {hash} does not match the stored result ({recomputed}) \
             — the checkpoint is corrupt"
        ));
    }
    let decoded = decode_replicated_result(result).map_err(|e| e.to_string())?;
    if decoded.stats.reps() != reps {
        return Err(format!(
            "record claims {reps} replications but the stored result has {}",
            decoded.stats.reps()
        ));
    }
    Ok((point, decoded))
}

/// Validates the header line of a checkpoint against the current run.
fn validate_header(
    line: &str,
    entry: &str,
    profile: BenchProfile,
    git_revision: &str,
    campaign_hash: &str,
    points: usize,
) -> Result<(), String> {
    let json = Json::parse(line).map_err(|e| format!("header is not valid JSON: {e}"))?;
    let pairs = json
        .as_object()
        .ok_or_else(|| format!("header must be an object, got {}", json.type_name()))?;
    let mut seen = Vec::new();
    for (k, v) in pairs {
        let expect = |want: &str, what: &str| -> Result<(), String> {
            let got = v
                .as_str()
                .ok_or_else(|| format!("header {what} must be a string"))?;
            if got != want {
                return Err(format!(
                    "checkpoint {what} is \"{got}\" but this run has \"{want}\""
                ));
            }
            Ok(())
        };
        match k.as_str() {
            "schema" => expect(CHECKPOINT_SCHEMA, "schema")?,
            "entry" => expect(entry, "entry")?,
            "profile" => expect(profile.label(), "profile")?,
            "git_revision" => expect(git_revision, "git_revision")?,
            "campaign" => expect(campaign_hash, "campaign hash")?,
            "points" => {
                let got = v.as_u64().ok_or("header points must be an integer")?;
                if got != points as u64 {
                    return Err(format!(
                        "checkpoint covers {got} points but this run expands to {points}"
                    ));
                }
            }
            unknown => return Err(format!("unknown key \"{unknown}\" in checkpoint header")),
        }
        seen.push(k.as_str());
    }
    for required in [
        "schema",
        "entry",
        "profile",
        "git_revision",
        "campaign",
        "points",
    ] {
        if !seen.contains(&required) {
            return Err(format!("checkpoint header is missing \"{required}\""));
        }
    }
    Ok(())
}

/// Loads and validates an existing checkpoint, returning one slot per point
/// (`Some` = replayed verbatim) and the number of completed points.
#[allow(clippy::type_complexity)]
fn load_checkpoint(
    path: &Path,
    entry: &str,
    profile: BenchProfile,
    git_revision: &str,
    campaign_hash: &str,
    keys: &[String],
) -> Result<(Vec<Option<ReplicatedResult>>, usize), DurableError> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(DurableError::Mismatch(format!(
                "{}: nothing to resume (no checkpoint exists; run without --resume)",
                path.display()
            )));
        }
        Err(e) => {
            return Err(DurableError::Failure(format!(
                "could not read {}: {e}",
                path.display()
            )));
        }
    };
    let mismatch = |m: String| DurableError::Mismatch(format!("{}: {m}", path.display()));
    // Split into complete lines; a final fragment without a trailing newline
    // is the signature of a torn append.
    let complete_ends_with_newline = text.ends_with('\n');
    let mut lines: Vec<&str> = text.split('\n').collect();
    // split leaves a trailing "" when the text ends with '\n'; drop it.
    if complete_ends_with_newline {
        lines.pop();
    }
    let torn_tail = if !complete_ends_with_newline {
        lines.pop()
    } else {
        None
    };
    let mut iter = lines.into_iter();
    let header = iter
        .next()
        .ok_or_else(|| mismatch("checkpoint is empty".into()))?;
    validate_header(
        header,
        entry,
        profile,
        git_revision,
        campaign_hash,
        keys.len(),
    )
    .map_err(&mismatch)?;
    let mut slots: Vec<Option<ReplicatedResult>> = (0..keys.len()).map(|_| None).collect();
    let mut completed = 0usize;
    let mut restore = |line: &str| -> Result<(), DurableError> {
        let (idx, result) = parse_record_line(line, keys).map_err(&mismatch)?;
        if slots[idx].is_some() {
            return Err(mismatch(format!("duplicate record for point {idx}")));
        }
        slots[idx] = Some(result);
        completed += 1;
        Ok(())
    };
    for line in iter {
        restore(line)?;
    }
    if let Some(fragment) = torn_tail {
        // Tolerate only an *unparsable* torn tail: a complete, parseable
        // final line merely lost its newline to the kill, so it must still
        // validate like any other record.
        if Json::parse(fragment).is_ok() {
            restore(fragment)?;
        } else {
            eprintln!(
                "warning: {}: dropping torn partial record at end of checkpoint \
                 ({} bytes) — the previous run was killed mid-append",
                path.display(),
                fragment.len()
            );
        }
    }
    Ok((slots, completed))
}

/// Runs one registry entry durably: sweep entries execute through the
/// checkpoint manifest (written as points complete, resumable with
/// [`DurableOptions::resume`]); bespoke entries run exactly as before.
/// Artifacts and the checkpoint land under `opts.results_dir`.
pub fn run_entry_durable(
    name: &str,
    profile: BenchProfile,
    threads: usize,
    baseline: BaselineWrite,
    opts: &DurableOptions,
) -> Result<EntryReport, DurableError> {
    let entry = registry::find(name).ok_or_else(|| {
        DurableError::Failure(format!(
            "unknown scenario \"{name}\" — registered scenarios: {}",
            registry::names().join(", ")
        ))
    })?;
    let (build, render) = match entry.kind {
        EntryKind::Sweep { build, render } => (build, render),
        EntryKind::Custom { .. } => {
            // Bespoke generators have no sweep shape to checkpoint; they run
            // to completion or not at all, which is already resume-safe.
            return registry::run_entry(name, profile, threads, baseline)
                .map_err(DurableError::Failure);
        }
    };
    println!(
        "=== {} — {} [{} profile{}] ===",
        entry.name,
        entry.title,
        profile.label(),
        if opts.resume { ", resuming" } else { "" }
    );
    let campaign = build(profile);
    let budget = profile.budget();
    let expanded = campaign
        .expand(budget)
        .map_err(|e| DurableError::Failure(e.to_string()))?;
    let total = expanded.len();
    let keys: Vec<String> = expanded.iter().map(point_key).collect();
    let campaign_hash = hash_hex(campaign.to_json_string().as_bytes());
    let git_revision = registry::git_revision();
    let path = checkpoint_path(&opts.results_dir, name);

    let (precomputed, replayed) = if opts.resume {
        let (slots, completed) =
            load_checkpoint(&path, name, profile, &git_revision, &campaign_hash, &keys)?;
        println!(
            "{}: resuming from {} — {completed}/{total} points replayed from the checkpoint",
            name,
            path.display()
        );
        (slots, completed)
    } else {
        fs::create_dir_all(checkpoint_dir(&opts.results_dir)).map_err(|e| {
            DurableError::Failure(format!("could not create {}: {e}", path.display()))
        })?;
        let header = header_json(name, profile, &git_revision, &campaign_hash, total);
        // A fresh run truncates any stale checkpoint: the header and every
        // later record describe only this run.
        fs::write(&path, format!("{}\n", header.to_compact_string())).map_err(|e| {
            DurableError::Failure(format!("could not write {}: {e}", path.display()))
        })?;
        ((0..total).map(|_| None).collect(), 0)
    };

    let file = fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .map_err(|e| DurableError::Failure(format!("could not open {}: {e}", path.display())))?;
    let writer = Mutex::new(file);
    let write_error: Mutex<Option<String>> = Mutex::new(None);
    let newly_completed = AtomicUsize::new(0);
    let fault_point = opts.fault_point;
    let keys_ref = &keys;
    // The completion observer: append the point's record (one atomic line)
    // the moment it finishes, then decide whether the campaign may keep
    // starting points — `false` after the injected fault count, or after an
    // append failure (continuing would lose completed work silently).
    let observer = |idx: usize, result: &ReplicatedResult| -> bool {
        let line = format!(
            "{}\n",
            record_json(idx, &keys_ref[idx], result)
                .0
                .to_compact_string()
        );
        {
            let mut f = writer.lock().expect("checkpoint writer poisoned");
            if let Err(e) = f.write_all(line.as_bytes()).and_then(|()| f.flush()) {
                *write_error.lock().expect("error slot poisoned") =
                    Some(format!("could not append to checkpoint: {e}"));
                return false;
            }
        }
        let n = newly_completed.fetch_add(1, Ordering::SeqCst) + 1;
        match fault_point {
            Some(k) => (n as u64) < k,
            None => true,
        }
    };

    let started = Instant::now();
    let rows = campaign
        .run_replicated_observed(
            budget,
            profile.replications(),
            threads,
            precomputed,
            &observer,
        )
        .map_err(|e| DurableError::Failure(e.to_string()))?;
    if let Some(e) = write_error.into_inner().expect("error slot poisoned") {
        return Err(DurableError::Failure(format!("{name}: {e}")));
    }
    let completed_now = rows.iter().filter(|r| r.is_some()).count();
    if completed_now < total {
        return Err(DurableError::Aborted {
            entry: name.to_string(),
            completed: completed_now,
            total,
        });
    }

    let run = charisma::CampaignRun {
        campaign: campaign.name.clone(),
        rows: rows
            .into_iter()
            .map(|r| r.expect("all points completed"))
            .collect(),
    };
    let artifacts = render(&run);
    let mut outputs = Vec::new();
    for artifact in artifacts {
        outputs.push(
            write_output_to(&opts.results_dir, artifact.file, &artifact.contents)
                .map_err(|e| DurableError::Failure(e.to_string()))?,
        );
    }
    let replications: u64 = run.rows.iter().map(|r| r.reps()).sum();
    println!(
        "{}: {} sweep points ({} replications, {} replayed) in {:.1} s",
        entry.name,
        run.rows.len(),
        replications,
        replayed,
        started.elapsed().as_secs_f64()
    );
    Ok(EntryReport {
        name: entry.name,
        points: run.rows.len(),
        replications,
        seeds: campaign.seeds(),
        outputs,
        campaign_json: Some(campaign.to_json()),
    })
}

/// Durable counterpart of `registry::run_and_record_with`: runs the named
/// entries through [`run_entry_durable`] and writes the provenance manifest
/// under `opts.results_dir` — even when an entry fails or aborts partway, so
/// the artifacts that *did* land are never described by a stale manifest.
pub fn run_and_record_durable(
    run_names: &[String],
    profile: BenchProfile,
    threads: usize,
    baseline: BaselineWrite,
    opts: &DurableOptions,
) -> Result<Vec<EntryReport>, DurableError> {
    let mut reports = Vec::new();
    let mut failure: Option<DurableError> = None;
    for name in run_names {
        match run_entry_durable(name, profile, threads, baseline, opts) {
            Ok(report) => reports.push(report),
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
        println!();
    }
    let manifest = registry::manifest_json(&reports, profile, threads);
    let manifest_written =
        write_output_to(&opts.results_dir, "MANIFEST.json", &format!("{manifest}\n"));
    match failure {
        Some(e) => Err(e),
        None => {
            manifest_written.map_err(|e| DurableError::Failure(e.to_string()))?;
            Ok(reports)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_env_parses_strictly() {
        // The env var itself is process-global, so the test exercises only
        // the parse layer the CLI feeds it through.
        for (raw, want) in [("1", Some(1)), ("7", Some(7)), ("100", Some(100))] {
            assert_eq!(raw.parse::<u64>().ok().filter(|&n| n >= 1), want);
        }
        for bad in ["0", "-3", "two", ""] {
            assert!(bad.parse::<u64>().ok().filter(|&n| n >= 1).is_none());
        }
    }

    #[test]
    fn header_round_trips_and_rejects_every_mismatch() {
        let header = header_json("fig11", BenchProfile::Quick, "abc123", "00ff", 7);
        let line = header.to_compact_string();
        validate_header(&line, "fig11", BenchProfile::Quick, "abc123", "00ff", 7).unwrap();
        // Each coordinate individually refuses.
        let e = validate_header(&line, "fig12", BenchProfile::Quick, "abc123", "00ff", 7);
        assert!(e.unwrap_err().contains("entry"));
        let e = validate_header(&line, "fig11", BenchProfile::Standard, "abc123", "00ff", 7);
        assert!(e.unwrap_err().contains("profile"));
        let e = validate_header(&line, "fig11", BenchProfile::Quick, "def456", "00ff", 7);
        assert!(e.unwrap_err().contains("git_revision"));
        let e = validate_header(&line, "fig11", BenchProfile::Quick, "abc123", "11ee", 7);
        assert!(e.unwrap_err().contains("campaign"));
        let e = validate_header(&line, "fig11", BenchProfile::Quick, "abc123", "00ff", 8);
        assert!(e.unwrap_err().contains("points"));
        // Unknown keys are rejected, missing keys are rejected.
        let extra = line.replace("}", ",\"surprise\":1}");
        let e = validate_header(&extra, "fig11", BenchProfile::Quick, "abc123", "00ff", 7);
        assert!(e.unwrap_err().contains("unknown key"));
        let e = validate_header("{}", "fig11", BenchProfile::Quick, "abc123", "00ff", 7);
        assert!(e.unwrap_err().contains("missing"));
    }

    #[test]
    fn checkpoint_paths_nest_under_the_results_dir() {
        let p = checkpoint_path(Path::new("results"), "multicell_baseline");
        assert_eq!(p, Path::new("results/.checkpoint/multicell_baseline.jsonl"));
    }
}
