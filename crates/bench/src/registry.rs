//! The scenario-campaign registry: every experiment, by name.
//!
//! Each [`Entry`] re-expresses one evaluation artifact — the paper's figures
//! and tables, plus scenarios the paper never plotted — either as a
//! declarative [`Campaign`] of [`ScenarioSpec`]s executed on the sweep
//! workers, or as a bespoke generator from [`crate::artifacts`] for the few
//! artifacts that are not sweeps.  The `campaign` binary (and the thin
//! per-figure wrapper binaries) drive everything through
//! [`run_entry`] / [`run_and_record`], which also maintain the provenance
//! manifest (`results/MANIFEST.json`) and the generated section of the
//! reproduction handbook (`EXPERIMENTS.md`).

use crate::{
    artifacts, fig11_voice_counts, fig12_data_counts, write_output, BaselineWrite, BenchProfile,
};
use charisma::metrics::capacity_at_threshold;
use charisma::radio::SpeedProfile;
use charisma::spec::{Axis, DurationSpec, QueueToggle, RampSpec, ScenarioSpec};
use charisma::{
    Campaign, CampaignRow, CampaignRun, HandoffAdmission, HandoffConfig, Json, Layout, ProtocolKind,
};
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// A file produced by rendering a campaign run.
pub struct Artifact {
    /// File name under `results/`.
    pub file: &'static str,
    /// Full file contents.
    pub contents: String,
}

/// How an entry executes.
pub enum EntryKind {
    /// A declarative scenario campaign run through the sweep executor.
    Sweep {
        /// Builds the campaign for a profile (grids may depend on it).
        build: fn(BenchProfile) -> Campaign,
        /// Prints the human-readable tables and produces the files to write.
        render: fn(&CampaignRun) -> Vec<Artifact>,
    },
    /// A bespoke artifact generator (no sweep shape).
    Custom {
        /// Runs the generator; returns the files it wrote.  The
        /// [`BaselineWrite`] context tells it whether committed baseline
        /// files may be refreshed (explicit run) or must be routed to
        /// sidecars (bulk `run all`).
        run: fn(BenchProfile, BaselineWrite) -> Vec<PathBuf>,
    },
}

/// One named experiment.
pub struct Entry {
    /// Registry name (the `campaign run <name>` argument).
    pub name: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// Which artifact of the paper this reproduces ("beyond the paper" for
    /// the new scenarios).
    pub paper: &'static str,
    /// A short handbook paragraph: what the experiment shows and how.
    pub details: &'static str,
    /// Files written under `results/`.
    pub outputs: &'static [&'static str],
    /// The CSV columns of the primary output.
    pub columns: &'static str,
    /// Rough single-core runtime guidance per profile.
    pub runtime: &'static str,
    /// How the entry executes.
    pub kind: EntryKind,
}

/// What one executed entry reported (the manifest's raw material).
#[derive(Debug)]
pub struct EntryReport {
    /// Registry name.
    pub name: &'static str,
    /// Sweep points executed (0 for bespoke artifacts).
    pub points: usize,
    /// Total replications executed across all sweep points (0 for bespoke
    /// artifacts; equals `points` for single-replication runs).
    pub replications: u64,
    /// Distinct master seeds used by the sweep points.
    pub seeds: Vec<u64>,
    /// Files written.
    pub outputs: Vec<PathBuf>,
    /// The campaign definition (sweep entries only).
    pub campaign_json: Option<Json>,
}

// --- campaign builders ----------------------------------------------------

fn fig11_campaign(profile: BenchProfile) -> Campaign {
    let mut spec = ScenarioSpec::new("fig11");
    spec.axis = Axis::VoiceUsers;
    spec.voice_users = fig11_voice_counts(profile);
    spec.data_users = vec![0, 10, 20];
    spec.request_queue = QueueToggle::Both;
    Campaign::new("fig11").with_spec(spec)
}

fn fig12_campaign(profile: BenchProfile) -> Campaign {
    let mut spec = ScenarioSpec::new("fig12");
    spec.axis = Axis::DataUsers;
    spec.data_users = fig12_data_counts(profile);
    spec.voice_users = vec![0, 10, 20];
    spec.request_queue = QueueToggle::Both;
    Campaign::new("fig12").with_spec(spec)
}

// fig13 and capacity_table deliberately re-run the fig12/fig11 campaign
// shapes instead of sharing one execution: every registry entry stays an
// independent, individually runnable unit (`campaign run capacity_table`
// works alone, with its own manifest row), at the cost of roughly a minute
// of duplicated simulation in a full-profile `run all`.

fn fig13_campaign(profile: BenchProfile) -> Campaign {
    let mut campaign = fig12_campaign(profile);
    campaign.name = "fig13".into();
    campaign.specs[0].name = "fig13".into();
    campaign
}

fn capacity_table_campaign(profile: BenchProfile) -> Campaign {
    let mut campaign = fig11_campaign(profile);
    campaign.name = "capacity_table".into();
    campaign.specs[0].name = "capacity_table".into();
    campaign
}

fn qos_capacity_campaign(profile: BenchProfile) -> Campaign {
    let mut spec = ScenarioSpec::new("qos_capacity");
    spec.axis = Axis::DataUsers;
    spec.data_users = fig12_data_counts(profile);
    spec.voice_users = vec![10];
    spec.request_queue = QueueToggle::Both;
    Campaign::new("qos_capacity").with_spec(spec)
}

fn speed_sweep_campaign(_profile: BenchProfile) -> Campaign {
    let mut spec = ScenarioSpec::new("speed_sweep");
    spec.protocols = vec![ProtocolKind::Charisma];
    spec.axis = Axis::SpeedKmh;
    spec.speed_grid_kmh = vec![10.0, 20.0, 30.0, 40.0, 50.0, 65.0, 80.0];
    spec.voice_users = vec![120];
    spec.data_users = vec![5];
    spec.request_queue = QueueToggle::On;
    Campaign::new("speed_sweep").with_spec(spec)
}

fn ablation_csi_campaign(profile: BenchProfile) -> Campaign {
    let base = {
        let mut spec = ScenarioSpec::new("csi_aware");
        spec.protocols = vec![ProtocolKind::Charisma];
        spec.axis = Axis::VoiceUsers;
        spec.voice_users = fig11_voice_counts(profile);
        spec.data_users = vec![10];
        spec.request_queue = QueueToggle::On;
        spec
    };
    let mut blind = base.clone();
    blind.name = "csi_blind".into();
    blind.csi_aware = false;
    let mut dtdma = base.clone();
    dtdma.name = "dtdma_vr".into();
    dtdma.protocols = vec![ProtocolKind::DTdmaVr];
    Campaign::new("ablation_csi")
        .with_spec(base)
        .with_spec(blind)
        .with_spec(dtdma)
}

fn mixed_mobility_campaign(profile: BenchProfile) -> Campaign {
    let mut spec = ScenarioSpec::new("mixed_mobility");
    spec.axis = Axis::VoiceUsers;
    spec.voice_users = fig11_voice_counts(profile);
    spec.data_users = vec![10];
    spec.request_queue = QueueToggle::On;
    // Half the terminals walk (3 km/h, ~1.7 s coherence), half drive
    // (80 km/h, ~7 ms coherence): a heterogeneous population the paper never
    // evaluates, where CSI-aware scheduling can exploit the slow users.
    spec.speed = SpeedProfile::Bimodal {
        slow_kmh: 3.0,
        fast_kmh: 80.0,
        fraction_fast: 0.5,
    };
    Campaign::new("mixed_mobility").with_spec(spec)
}

fn load_ramp_campaign(_profile: BenchProfile) -> Campaign {
    let mut ramped = ScenarioSpec::new("ramped");
    ramped.axis = Axis::Single;
    ramped.voice_users = vec![120];
    ramped.data_users = vec![10];
    ramped.request_queue = QueueToggle::On;
    ramped.ramp = Some(RampSpec {
        initial_voice: 40,
        at_measured_fraction: 0.5,
    });
    let mut steady = ramped.clone();
    steady.name = "steady".into();
    steady.ramp = None;
    Campaign::new("load_ramp")
        .with_spec(ramped)
        .with_spec(steady)
}

fn multicell_baseline_campaign(profile: BenchProfile) -> Campaign {
    let mut spec = ScenarioSpec::new("multicell_baseline");
    spec.axis = Axis::VoiceUsers;
    spec.voice_users = match profile {
        BenchProfile::Quick => vec![10, 20],
        _ => vec![10, 15, 20, 25, 30],
    };
    spec.data_users = vec![5];
    // The classic 7-cell hexagonal cluster with small (250 m) cells, so the
    // vehicular half of the population crosses several cell boundaries even
    // inside a quick-profile run.
    spec.cells = 7;
    spec.layout = Layout::Hex {
        cell_radius_m: 250.0,
    };
    spec.handoff = HandoffConfig {
        admission: HandoffAdmission::Queue,
        cell_capacity: 0, // unlimited: the baseline measures pure mobility
        retry_frames: 40,
        hysteresis_m: 15.0,
    };
    // Mixed pedestrian/vehicular population (cf. the mixed_mobility entry).
    spec.speed = SpeedProfile::Bimodal {
        slow_kmh: 3.0,
        fast_kmh: 80.0,
        fraction_fast: 0.5,
    };
    Campaign::new("multicell_baseline").with_spec(spec)
}

fn handoff_stress_campaign(_profile: BenchProfile) -> Campaign {
    let base = {
        let mut spec = ScenarioSpec::new("handoff_drop");
        spec.protocols = vec![
            ProtocolKind::Charisma,
            ProtocolKind::DTdmaVr,
            ProtocolKind::DTdmaFr,
        ];
        spec.axis = Axis::Single;
        spec.voice_users = vec![20];
        spec.data_users = vec![5];
        // A 3-cell highway corridor of small cells; 80% of the terminals
        // drive at 80 km/h, so cell crossings are constant and the tight
        // admission capacity (25 initial + 5 headroom) is under permanent
        // pressure.
        spec.cells = 3;
        spec.layout = Layout::Line {
            cell_radius_m: 200.0,
        };
        spec.speed = SpeedProfile::Bimodal {
            slow_kmh: 3.0,
            fast_kmh: 80.0,
            fraction_fast: 0.8,
        };
        spec.handoff = HandoffConfig {
            admission: HandoffAdmission::DropOnFull,
            cell_capacity: 30,
            retry_frames: 40,
            hysteresis_m: 10.0,
        };
        spec
    };
    let mut queued = base.clone();
    queued.name = "handoff_queue".into();
    queued.handoff.admission = HandoffAdmission::Queue;
    Campaign::new("handoff_stress")
        .with_spec(base)
        .with_spec(queued)
}

fn city_scale_campaign(_profile: BenchProfile) -> Campaign {
    let mut spec = ScenarioSpec::new("city_scale");
    // Two protocols, one point, one replication: the entry exists to
    // exercise the sharded frame loop at city scale (127 cells = 6 complete
    // hex rings), not to sweep a grid, and it must stay CI-sized even under
    // the quick profile.
    spec.protocols = vec![ProtocolKind::Charisma, ProtocolKind::DTdmaVr];
    spec.axis = Axis::Single;
    spec.voice_users = vec![6];
    spec.data_users = vec![2];
    spec.cells = charisma::hex_cells_for_rings(6);
    spec.layout = Layout::Hex {
        cell_radius_m: 150.0,
    };
    spec.handoff = HandoffConfig {
        admission: HandoffAdmission::Queue,
        cell_capacity: 0,
        retry_frames: 40,
        hysteresis_m: 10.0,
    };
    spec.speed = SpeedProfile::Bimodal {
        slow_kmh: 3.0,
        fast_kmh: 80.0,
        fraction_fast: 0.5,
    };
    spec.replications = charisma::RepsSpec::Policy(charisma::ReplicationPolicy::fixed(1));
    // Four worker threads; the CSV bytes are identical at any thread count
    // (the determinism suite pins 0/1/2/4 on this very entry).
    spec.system_threads = 4;
    Campaign::new("city_scale").with_spec(spec)
}

fn smoke_10k_campaign(_profile: BenchProfile) -> Campaign {
    let mut spec = ScenarioSpec::new("smoke_10k");
    // One point, one replication, a fixed 1,000-frame run: the entry exists
    // to push the structure-of-arrays frame core through a 10,000-terminal
    // cell (two orders of magnitude past the paper's populations), not to
    // produce meaningful QoS curves — at this load every protocol is far
    // beyond saturation.  The duration ignores the profile so the entry
    // costs the same CI-sized wall-clock under quick gate runs and
    // full-profile regenerations alike.
    spec.protocols = vec![ProtocolKind::Charisma, ProtocolKind::DTdmaVr];
    spec.axis = Axis::Single;
    spec.voice_users = vec![9_000];
    spec.data_users = vec![1_000];
    spec.request_queue = QueueToggle::On;
    spec.duration = DurationSpec::Frames {
        warmup: 200,
        measured: 800,
    };
    spec.replications = charisma::RepsSpec::Policy(charisma::ReplicationPolicy::fixed(1));
    Campaign::new("smoke_10k").with_spec(spec)
}

fn data_heavy_campaign(profile: BenchProfile) -> Campaign {
    let mut spec = ScenarioSpec::new("data_heavy");
    spec.axis = Axis::DataUsers;
    spec.data_users = match profile {
        BenchProfile::Quick => vec![4, 8, 16, 24, 32],
        _ => vec![2, 4, 8, 12, 16, 20, 24, 28, 32],
    };
    spec.voice_users = vec![5];
    spec.request_queue = QueueToggle::Both;
    Campaign::new("data_heavy").with_spec(spec)
}

// --- rendering helpers ----------------------------------------------------

// The rendered tables and capacity searches all consume the
// across-replication means (with a single replication these equal the lone
// run's metrics, so the quick smoke paths are unchanged in shape).

fn loss(r: &CampaignRow) -> f64 {
    r.voice_loss_mean()
}

fn throughput(r: &CampaignRow) -> f64 {
    r.data_throughput_mean()
}

fn delay(r: &CampaignRow) -> f64 {
    r.data_delay_mean()
}

fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

fn plain3(v: f64) -> String {
    format!("{v:.3}")
}

fn trim_load(load: f64) -> String {
    if load.fract() == 0.0 {
        format!("{}", load as i64)
    } else {
        format!("{load:.1}")
    }
}

fn uniform_csv(run: &CampaignRun, file: &'static str) -> Artifact {
    Artifact {
        file,
        contents: run.to_csv(),
    }
}

/// One printed series: a (scenario, protocol, queue, fixed-population) curve.
struct Curve<'a> {
    scenario: &'a str,
    protocol: ProtocolKind,
    queue: bool,
    fixed: String,
    points: Vec<&'a CampaignRow>,
}

/// Groups a run's rows into curves, preserving first-appearance order.  The
/// swept coordinate of a scenario is recovered from the rows themselves
/// (whichever population equals the load on every row; otherwise the load is
/// an external axis such as the speed).
fn curves(run: &CampaignRun) -> Vec<Curve<'_>> {
    let mut out: Vec<Curve<'_>> = Vec::new();
    for row in &run.rows {
        let scenario_rows = run.rows.iter().filter(|r| r.scenario == row.scenario);
        let voice_axis = scenario_rows.clone().all(|r| r.load == r.num_voice as f64);
        let data_axis = !voice_axis && scenario_rows.clone().all(|r| r.load == r.num_data as f64);
        let fixed = if voice_axis {
            format!("Nd={}", row.num_data)
        } else if data_axis {
            format!("Nv={}", row.num_voice)
        } else {
            format!("Nv={} Nd={}", row.num_voice, row.num_data)
        };
        match out.iter_mut().find(|c| {
            c.scenario == row.scenario
                && c.protocol == row.protocol
                && c.queue == row.request_queue
                && c.fixed == fixed
        }) {
            Some(curve) => curve.points.push(row),
            None => out.push(Curve {
                scenario: &row.scenario,
                protocol: row.protocol,
                queue: row.request_queue,
                fixed,
                points: vec![row],
            }),
        }
    }
    out
}

/// Prints one aligned table per scenario: a row per curve, a column per axis
/// value, plus (optionally) the capacity at `capacity_threshold` on the
/// metric.
fn print_curve_tables(
    run: &CampaignRun,
    metric_name: &str,
    metric: fn(&CampaignRow) -> f64,
    fmt: fn(f64) -> String,
    capacity_threshold: Option<f64>,
) {
    let all = curves(run);
    let mut scenarios: Vec<&str> = Vec::new();
    for c in &all {
        if !scenarios.contains(&c.scenario) {
            scenarios.push(c.scenario);
        }
    }
    for scenario in scenarios {
        let scenario_curves: Vec<&Curve<'_>> =
            all.iter().filter(|c| c.scenario == scenario).collect();
        let mut loads: Vec<f64> = Vec::new();
        for c in &scenario_curves {
            for p in &c.points {
                if !loads.contains(&p.load) {
                    loads.push(p.load);
                }
            }
        }
        loads.sort_by(|a, b| a.total_cmp(b));

        println!();
        println!("--- {scenario}: {metric_name} vs load ---");
        let mut header = format!("{:<30}", "series");
        for l in &loads {
            header.push_str(&format!("{:>10}", trim_load(*l)));
        }
        if capacity_threshold.is_some() {
            header.push_str(&format!("{:>12}", "capacity"));
        }
        println!("{header}");

        for c in scenario_curves {
            let label = format!(
                "{} {} {}",
                c.protocol.label(),
                if c.queue { "+queue" } else { "-queue" },
                c.fixed
            );
            let mut line = format!("{label:<30}");
            for l in &loads {
                match c.points.iter().find(|p| p.load == *l) {
                    Some(p) => line.push_str(&format!("{:>10}", fmt(metric(p)))),
                    None => line.push_str(&format!("{:>10}", "-")),
                }
            }
            if let Some(threshold) = capacity_threshold {
                let mut curve: Vec<(f64, f64)> =
                    c.points.iter().map(|p| (p.load, metric(p))).collect();
                curve.sort_by(|a, b| a.0.total_cmp(&b.0));
                let cap = capacity_at_threshold(&curve, threshold);
                match cap {
                    Some(v) => line.push_str(&format!("{v:>12.0}")),
                    None => line.push_str(&format!("{:>12}", format!("<{}", trim_load(loads[0])))),
                }
            }
            println!("{line}");
        }
    }
}

// --- renderers ------------------------------------------------------------

fn render_fig11(run: &CampaignRun) -> Vec<Artifact> {
    print_curve_tables(run, "voice packet loss", loss, pct, Some(0.01));
    println!();
    println!("Expected shape: CHARISMA lowest everywhere; RMAV collapses immediately; RAMA and");
    println!("DRMA degrade gracefully at overload; data users shrink every protocol's capacity.");
    vec![uniform_csv(run, "fig11_voice_loss.csv")]
}

fn render_fig12(run: &CampaignRun) -> Vec<Artifact> {
    print_curve_tables(run, "data throughput (pkt/frame)", throughput, plain3, None);
    println!();
    println!("Expected shape: throughput grows with offered load until each protocol's capacity,");
    println!("then saturates; CHARISMA saturates highest, RMAV almost immediately.");
    vec![uniform_csv(run, "fig12_data_throughput.csv")]
}

fn render_fig13(run: &CampaignRun) -> Vec<Artifact> {
    print_curve_tables(run, "data delay (s)", delay, plain3, None);
    println!();
    println!("Expected shape: delay stays small until each protocol's capacity then grows");
    println!("sharply; the knee appears latest for CHARISMA and earliest for RMAV.");
    vec![uniform_csv(run, "fig13_data_delay.csv")]
}

fn render_capacity_table(run: &CampaignRun) -> Vec<Artifact> {
    println!("Voice capacity at the 1% packet-loss threshold (number of voice users)");
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "protocol", "Nd=0", "Nd=0 +queue", "Nd=10", "Nd=10 +queue", "Nd=20", "Nd=20 +queue"
    );
    let min_load = run
        .rows
        .iter()
        .map(|r| r.load)
        .fold(f64::INFINITY, f64::min);
    let mut csv_rows = Vec::new();
    for protocol in ProtocolKind::ALL {
        let mut cells = Vec::new();
        for &num_data in &[0u32, 10, 20] {
            for &queue in &[false, true] {
                if queue && !protocol.supports_request_queue() {
                    cells.push("n/a".to_string());
                    continue;
                }
                let cap = run.capacity(
                    "capacity_table",
                    protocol,
                    queue,
                    Some((num_data, true)),
                    loss,
                    0.01,
                );
                let cell = match cap {
                    Some(c) => format!("{c:.0}"),
                    None => format!("<{}", trim_load(min_load)),
                };
                csv_rows.push(format!("{},{num_data},{queue},{cell}", protocol.label()));
                cells.push(cell);
            }
        }
        println!(
            "{:<12} {:>14} {:>14} {:>14} {:>14} {:>14} {:>14}",
            protocol.label(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4],
            cells[5]
        );
    }
    println!();
    println!("Paper reference points (§5.1): without queue, Nd=0 — CHARISMA ≈ 100, DRMA ≈ 80,");
    println!("D-TDMA/VR ≈ 80, RAMA ≈ 60, D-TDMA/FR ≈ 60, RMAV unstable; with queue CHARISMA ≈ 160");
    println!("and D-TDMA/VR gains ≈ 25% while RAMA/DRMA barely change.");
    let mut contents = String::from("protocol,num_data,request_queue,capacity_voice_users\n");
    for row in &csv_rows {
        contents.push_str(row);
        contents.push('\n');
    }
    vec![Artifact {
        file: "capacity_1pct.csv",
        contents,
    }]
}

fn render_qos_capacity(run: &CampaignRun) -> Vec<Artifact> {
    // A point satisfies the QoS level when the mean delay is below 1 s AND
    // the per-user throughput is still ~the offered 0.25 pkt/frame.
    fn effective_delay(r: &CampaignRow) -> f64 {
        if r.data_throughput_per_user_mean() >= 0.20 {
            r.data_delay_mean()
        } else {
            f64::MAX
        }
    }
    let min_load = run
        .rows
        .iter()
        .map(|r| r.load)
        .fold(f64::INFINITY, f64::min);
    println!("Data QoS capacity at (delay <= 1 s, per-user throughput >= 0.25 pkt/frame), Nv = 10");
    println!(
        "{:<12} {:>26} {:>26}",
        "protocol", "capacity (no queue)", "capacity (with queue)"
    );
    let mut csv_rows = Vec::new();
    let mut no_queue: Vec<(ProtocolKind, Option<f64>)> = Vec::new();
    for protocol in ProtocolKind::ALL {
        let mut cells = Vec::new();
        for &queue in &[false, true] {
            if queue && !protocol.supports_request_queue() {
                cells.push("n/a".to_string());
                continue;
            }
            let cap = run.capacity("qos_capacity", protocol, queue, None, effective_delay, 1.0);
            if !queue {
                no_queue.push((protocol, cap));
            }
            let cell = match cap {
                Some(c) => format!("{c:.1}"),
                None => format!("<{}", trim_load(min_load)),
            };
            csv_rows.push(format!("{},{queue},{cell}", protocol.label()));
            cells.push(cell);
        }
        println!("{:<12} {:>26} {:>26}", protocol.label(), cells[0], cells[1]);
    }
    let lookup = |k: ProtocolKind| no_queue.iter().find(|(p, _)| *p == k).and_then(|(_, c)| *c);
    if let (Some(ch), Some(vr), Some(rama)) = (
        lookup(ProtocolKind::Charisma),
        lookup(ProtocolKind::DTdmaVr),
        lookup(ProtocolKind::Rama),
    ) {
        println!();
        println!(
            "CHARISMA / D-TDMA/VR capacity ratio: {:.2} (paper ≈ 1.5)",
            ch / vr
        );
        println!(
            "CHARISMA / RAMA capacity ratio:      {:.2} (paper ≈ 3)",
            ch / rama
        );
    }
    let mut contents = String::from("protocol,request_queue,qos_capacity_data_users\n");
    for row in &csv_rows {
        contents.push_str(row);
        contents.push('\n');
    }
    vec![Artifact {
        file: "qos_capacity.csv",
        contents,
    }]
}

fn render_speed_sweep(run: &CampaignRun) -> Vec<Artifact> {
    println!("CHARISMA vs terminal speed (Nv = 120, Nd = 5, request queue on)");
    println!(
        "{:>12} {:>14} {:>18} {:>14} {:>22}",
        "speed (km/h)", "voice loss", "data thpt (p/f)", "data delay (s)", "rel. loss vs 10 km/h"
    );
    let mut reference: Option<f64> = None;
    for r in &run.rows {
        let l = loss(r);
        let reference_loss = *reference.get_or_insert(l);
        let relative = if reference_loss > 0.0 {
            l / reference_loss
        } else {
            1.0
        };
        println!(
            "{:>12.0} {:>13.3}% {:>18.3} {:>14.3} {:>21.2}x",
            r.load,
            l * 100.0,
            throughput(r),
            delay(r),
            relative
        );
    }
    println!();
    println!("Expected: essentially flat up to 50 km/h, only mild degradation at 80 km/h.");
    vec![uniform_csv(run, "speed_sweep.csv")]
}

fn render_ablation_csi(run: &CampaignRun) -> Vec<Artifact> {
    print_curve_tables(run, "voice packet loss", loss, pct, Some(0.01));
    println!();
    println!("Expected: disabling the CSI term (csi_blind, pure earliest-deadline-first over");
    println!("the same adaptive PHY) costs a sizeable share of CHARISMA's capacity advantage");
    println!("over D-TDMA/VR — the cross-layer scheduling argument of Sections 5.3.1–5.3.2.");
    vec![uniform_csv(run, "ablation_csi.csv")]
}

fn render_mixed_mobility(run: &CampaignRun) -> Vec<Artifact> {
    print_curve_tables(run, "voice packet loss", loss, pct, Some(0.01));
    println!();
    println!("Half the terminals walk at 3 km/h, half drive at 80 km/h (the paper only evaluates");
    println!("homogeneous populations).  Compare against the fig11 Nd=10 +queue panel: protocols");
    println!("with CSI-aware scheduling should hold capacity better than the CSI-blind baselines");
    println!("because the slow half of the cell has a near-static, exploitable channel.");
    vec![uniform_csv(run, "mixed_mobility.csv")]
}

fn render_load_ramp(run: &CampaignRun) -> Vec<Artifact> {
    println!("Load ramp: 40 voice users, stepping to 120 halfway through measurement");
    println!("(Nd = 10, request queue on; \"steady\" runs all 120 users from frame 0)");
    println!(
        "{:<12} {:>16} {:>16} {:>18} {:>16}",
        "protocol", "ramped loss", "steady loss", "ramped thpt(p/f)", "ramped delay(s)"
    );
    for protocol in ProtocolKind::ALL {
        let find = |scenario: &str| {
            run.rows
                .iter()
                .find(|r| r.scenario == scenario && r.protocol == protocol)
        };
        if let (Some(ramped), Some(steady)) = (find("ramped"), find("steady")) {
            println!(
                "{:<12} {:>15.3}% {:>15.3}% {:>18.3} {:>16.3}",
                protocol.label(),
                loss(ramped) * 100.0,
                loss(steady) * 100.0,
                throughput(ramped),
                delay(ramped)
            );
        }
    }
    println!();
    println!("The ramped run averages a half-window at light load with a half-window at heavy");
    println!("load, so its loss sits between the 40-user and 120-user operating points; how far");
    println!("below the steady 120-user loss it lands shows how gracefully each protocol absorbs");
    println!("a flash crowd.");
    vec![uniform_csv(run, "load_ramp.csv")]
}

/// The CSV schema of the per-row handoff artifact emitted by the multi-cell
/// entries (system-level counters of replication 0, whose seed is the point
/// seed — deterministic bytes like every campaign CSV).
pub const HANDOFF_COLUMNS: &str = "scenario,protocol,request_queue,num_voice,num_data,\
                                   speed_kmh,load,cells,\
                                   handoff_attempts,handoff_successes,handoff_failures,\
                                   handoff_queued,voice_dropped_handoff,\
                                   peak_cell_occupancy,mean_queued_terminals";

fn handoff_csv(run: &CampaignRun, file: &'static str) -> Artifact {
    let mut contents = String::from(HANDOFF_COLUMNS);
    contents.push('\n');
    for r in &run.rows {
        let h = &r.report.metrics.handoff;
        // The streaming per-cell statistics, folded once per measured frame:
        // the busiest any cell ever got, and the mean number of terminals
        // parked in admission queues system-wide.
        let peak_occupancy = r
            .report
            .metrics
            .per_cell
            .iter()
            .filter_map(|c| c.occupancy.max())
            .fold(0.0f64, f64::max);
        let mean_queued: f64 = r
            .report
            .metrics
            .per_cell
            .iter()
            .map(|c| c.admission_queue.mean())
            .sum();
        contents.push_str(&format!(
            "{},{},{},{},{},{:.2},{},{},{},{},{},{},{},{:.0},{:.4}\n",
            r.scenario,
            r.protocol.label(),
            r.request_queue,
            r.num_voice,
            r.num_data,
            r.speed_kmh,
            r.load,
            r.report.metrics.per_cell.len(),
            h.attempts,
            h.successes,
            h.failures,
            h.queued,
            r.report.metrics.voice.dropped_handoff,
            peak_occupancy,
            mean_queued,
        ));
    }
    Artifact { file, contents }
}

fn print_handoff_table(run: &CampaignRun) {
    println!();
    println!("--- handoff counters (replication 0) ---");
    println!(
        "{:<34} {:>9} {:>9} {:>9} {:>8} {:>14}",
        "series", "attempts", "admitted", "refused", "queued", "voice dropped"
    );
    for r in &run.rows {
        let h = &r.report.metrics.handoff;
        println!(
            "{:<34} {:>9} {:>9} {:>9} {:>8} {:>14}",
            format!("{} {} Nv={}", r.scenario, r.protocol.label(), r.num_voice),
            h.attempts,
            h.successes,
            h.failures,
            h.queued,
            r.report.metrics.voice.dropped_handoff,
        );
    }
}

fn render_multicell_baseline(run: &CampaignRun) -> Vec<Artifact> {
    print_curve_tables(run, "voice packet loss", loss, pct, Some(0.01));
    print_handoff_table(run);
    println!();
    println!("Seven hexagonal cells, per-cell loads on the x axis, mixed 3/80 km/h population.");
    println!("Handoffs succeed freely (unlimited admission); the loss above the single-cell");
    println!("mixed_mobility figures is the price of path-loss SNR at cell edges plus the");
    println!("hard-handoff voice interruptions counted in the handoff table.");
    vec![
        uniform_csv(run, "multicell_baseline.csv"),
        handoff_csv(run, "multicell_baseline_handoff.csv"),
    ]
}

fn render_handoff_stress(run: &CampaignRun) -> Vec<Artifact> {
    print_curve_tables(run, "voice packet loss", loss, pct, None);
    print_handoff_table(run);
    println!();
    println!("A 3-cell highway corridor at 80% vehicular load with admission capacity 30 per");
    println!("cell: the drop_on_full series loses every in-flight voice packet of a refused");
    println!("handoff, while the handoff_queue series parks terminals on their old cell until");
    println!("the target frees capacity — compare the refused/queued columns and the voice");
    println!("loss they induce.");
    vec![
        uniform_csv(run, "handoff_stress.csv"),
        handoff_csv(run, "handoff_stress_handoff.csv"),
    ]
}

fn render_city_scale(run: &CampaignRun) -> Vec<Artifact> {
    print_curve_tables(run, "voice packet loss", loss, pct, None);
    print_handoff_table(run);
    println!();
    println!("A 127-cell hexagonal city (6 complete rings of 150 m cells) stepped by the");
    println!("sharded frame loop on 4 worker threads.  Cells advance in parallel inside each");
    println!("frame; handoffs travel through per-frame mailboxes merged in cell-id order, so");
    println!("the CSVs below are byte-identical to a single-threaded round-robin run.");
    vec![
        uniform_csv(run, "city_scale.csv"),
        handoff_csv(run, "city_scale_handoff.csv"),
    ]
}

fn render_smoke_10k(run: &CampaignRun) -> Vec<Artifact> {
    println!("10,000-terminal single cell (Nv = 9000, Nd = 1000, queue on, 1,000 frames)");
    println!(
        "{:<12} {:>14} {:>18} {:>16}",
        "protocol", "voice loss", "data thpt (p/f)", "data delay (s)"
    );
    for r in &run.rows {
        println!(
            "{:<12} {:>13.3}% {:>18.3} {:>16.3}",
            r.protocol.label(),
            loss(r) * 100.0,
            throughput(r),
            delay(r)
        );
    }
    println!();
    println!("A scalability smoke, not a QoS experiment: 10,000 terminals is ~90x the 1%");
    println!("voice capacity, so losses are near-total by design.  What the entry pins is");
    println!("the column-oriented frame core itself — the begin-frame sweep, the index-");
    println!("sliced MAC surface and the contention machinery must stay linear in the");
    println!("population and byte-deterministic at a scale the per-object layout never");
    println!("reached, inside a CI-sized wall-clock budget.");
    vec![uniform_csv(run, "smoke_10k.csv")]
}

fn render_data_heavy(run: &CampaignRun) -> Vec<Artifact> {
    print_curve_tables(run, "data throughput (pkt/frame)", throughput, plain3, None);
    print_curve_tables(run, "data delay (s)", delay, plain3, None);
    println!();
    println!("A data-dominated cell (Nv = 5, up to 32 data users) the paper never plots: the");
    println!("figures stop at 24 data users with at least moderate voice populations.  Adaptive");
    println!("PHY protocols should keep scaling throughput; fixed-rate baselines saturate.");
    vec![uniform_csv(run, "data_heavy.csv")]
}

// --- the registry ---------------------------------------------------------

/// The uniform sweep-CSV column list (kept here so handbook text and tests
/// reference one constant).
pub const SWEEP_COLUMNS: &str = CampaignRun::CSV_HEADER;

/// All registry entries, in handbook order: the paper's artifacts first,
/// then the scenarios beyond the paper.
pub fn entries() -> Vec<Entry> {
    vec![
        Entry {
            name: "table1",
            title: "simulation parameters",
            paper: "Table 1",
            details: "Prints every parameter of the common simulation platform with the values \
                      this reproduction derived from the constraints stated in the paper's text, \
                      and records them as a two-column CSV.",
            outputs: &["table1_parameters.csv"],
            columns: "parameter,value",
            runtime: "instant on every profile",
            kind: EntryKind::Custom {
                run: artifacts::run_table1,
            },
        },
        Entry {
            name: "fig5_fading",
            title: "sample of the combined fading process",
            paper: "Fig. 5",
            details: "Generates a 2-second trace of one terminal's channel at 50 km/h — fast \
                      Rayleigh fading superimposed on log-normal shadowing — and prints summary \
                      statistics (deep-fade fraction vs Rayleigh theory, shadowing drift).",
            outputs: &["fig5_fading.csv"],
            columns: "time_s,fast_fading_db,shadowing_db,snr_db",
            runtime: "instant on every profile",
            kind: EntryKind::Custom {
                run: artifacts::run_fig5_fading,
            },
        },
        Entry {
            name: "fig7_abicm",
            title: "ABICM throughput and error behaviour vs CSI",
            paper: "Fig. 7",
            details: "Sweeps the CSI from -20 dB to +35 dB and tabulates the selected ABICM \
                      transmission mode, its normalised throughput, and the adaptive vs fixed \
                      packet error probabilities.",
            outputs: &["fig7_abicm.csv"],
            columns: "csi_db,mode,normalised_throughput,adaptive_per,fixed_per",
            runtime: "instant on every profile",
            kind: EntryKind::Custom {
                run: artifacts::run_fig7_abicm,
            },
        },
        Entry {
            name: "fig11",
            title: "voice packet loss vs voice users",
            paper: "Fig. 11(a)–(f) and the §5.1 1 % capacities",
            details: "All six protocols over the voice-user grid, for Nd in {0, 10, 20} data \
                      users, with and without the base-station request queue (the paper's six \
                      panels in one campaign).  The printed tables include each curve's capacity \
                      at the 1 % loss threshold.",
            outputs: &["fig11_voice_loss.csv"],
            columns: SWEEP_COLUMNS,
            runtime: "quick ≈ 4 s, standard ≈ 20 s, full ≈ 1 min (release build, one core)",
            kind: EntryKind::Sweep {
                build: fig11_campaign,
                render: render_fig11,
            },
        },
        Entry {
            name: "fig12",
            title: "data throughput vs data users",
            paper: "Fig. 12(a)–(f)",
            details: "All six protocols over the data-user grid, for Nv in {0, 10, 20} voice \
                      users, with and without the request queue.",
            outputs: &["fig12_data_throughput.csv"],
            columns: SWEEP_COLUMNS,
            runtime: "quick ≈ 1 s, standard ≈ 5 s, full ≈ 15 s (release build, one core)",
            kind: EntryKind::Sweep {
                build: fig12_campaign,
                render: render_fig12,
            },
        },
        Entry {
            name: "fig13",
            title: "data delay vs data users",
            paper: "Fig. 13(a)–(f)",
            details: "The same campaign shape as fig12, rendered for the mean data access delay \
                      (the delay counterpart of the throughput panels).",
            outputs: &["fig13_data_delay.csv"],
            columns: SWEEP_COLUMNS,
            runtime: "quick ≈ 1 s, standard ≈ 5 s, full ≈ 15 s (release build, one core)",
            kind: EntryKind::Sweep {
                build: fig13_campaign,
                render: render_fig13,
            },
        },
        Entry {
            name: "capacity_table",
            title: "voice capacities at the 1 % loss threshold",
            paper: "§5.1 capacity figures quoted in the prose",
            details: "Runs the fig11 campaign shape and reduces each curve to its capacity at \
                      the 1 % voice-loss threshold (paper: CHARISMA ≈ 100 without queue and \
                      ≈ 160 with it, DRMA/D-TDMA/VR ≈ 80, RAMA/D-TDMA/FR ≈ 60, RMAV unstable).",
            outputs: &["capacity_1pct.csv"],
            columns: "protocol,num_data,request_queue,capacity_voice_users",
            runtime: "quick ≈ 4 s, standard ≈ 20 s, full ≈ 1 min (release build, one core)",
            kind: EntryKind::Sweep {
                build: capacity_table_campaign,
                render: render_capacity_table,
            },
        },
        Entry {
            name: "qos_capacity",
            title: "data QoS capacities at (1 s, 0.25 pkt/frame)",
            paper: "§5.2 QoS capacity figures",
            details: "Sweeps the data population at Nv = 10 and finds the largest load whose \
                      mean delay stays below 1 s while per-user throughput stays at the offered \
                      0.25 pkt/frame (paper: CHARISMA ≈ 1.5x D-TDMA/VR and ≈ 3x RAMA/DRMA).",
            outputs: &["qos_capacity.csv"],
            columns: "protocol,request_queue,qos_capacity_data_users",
            runtime: "quick ≈ 1 s, standard ≈ 2 s, full ≈ 6 s (release build, one core)",
            kind: EntryKind::Sweep {
                build: qos_capacity_campaign,
                render: render_qos_capacity,
            },
        },
        Entry {
            name: "speed_sweep",
            title: "CHARISMA sensitivity to terminal speed",
            paper: "§5.3.3 mobile-speed discussion",
            details: "CHARISMA at 120 voice + 5 data users with the request queue, at fixed \
                      speeds from 10 to 80 km/h (paper: flat to 50 km/h, < 5 % degradation at \
                      80 km/h thanks to the CSI-refresh mechanism).",
            outputs: &["speed_sweep.csv"],
            columns: SWEEP_COLUMNS,
            runtime: "quick ≈ 1 s, standard ≈ 2 s, full ≈ 5 s (release build, one core)",
            kind: EntryKind::Sweep {
                build: speed_sweep_campaign,
                render: render_speed_sweep,
            },
        },
        Entry {
            name: "ablation_csi",
            title: "CSI-aware vs CSI-blind scheduling",
            paper: "§5.3.1 / §5.3.2 ablation",
            details: "Three series over the voice grid at Nd = 10 with the queue: CHARISMA, \
                      CHARISMA with its CSI term disabled (pure earliest-deadline-first over the \
                      same adaptive PHY), and D-TDMA/VR.  Separates the gain of cross-layer \
                      scheduling from the gain of merely using an adaptive PHY.",
            outputs: &["ablation_csi.csv"],
            columns: SWEEP_COLUMNS,
            runtime: "quick ≈ 1 s, standard ≈ 3 s, full ≈ 8 s (release build, one core)",
            kind: EntryKind::Sweep {
                build: ablation_csi_campaign,
                render: render_ablation_csi,
            },
        },
        Entry {
            name: "bench_frame_loop",
            title: "frame-loop throughput benchmark",
            paper: "performance trajectory (not a paper artifact)",
            details: "Runs the reference 60-voice + 10-data scenario under CHARISMA and \
                      D-TDMA/VR with both the eager channel baseline and the lazy hot path, and \
                      records wall-clock frames per second plus the lazy/eager speedup.  Only \
                      an explicitly named standard-profile run writes the committed baseline \
                      results/BENCH_frame_loop.json; quick/full runs and `run all` go to \
                      untracked sidecar files, and `campaign gate bench_frame_loop` compares a \
                      fresh run against the committed baseline (the CI regression gate).",
            outputs: &["BENCH_frame_loop.json"],
            columns: "JSON, schema charisma.bench_frame_loop.v1",
            runtime: "quick ≈ 1 s, standard/full ≈ 5 s (release build, one core)",
            kind: EntryKind::Custom {
                run: artifacts::run_bench_frame_loop,
            },
        },
        Entry {
            name: "mixed_mobility",
            title: "heterogeneous pedestrian/vehicular cell",
            paper: "beyond the paper (uses the paper's §5.1 axes)",
            details: "A bimodal speed population — half the terminals at 3 km/h, half at \
                      80 km/h — over the fig11 voice grid at Nd = 10 with the queue.  The paper \
                      only evaluates homogeneous populations; here CSI-aware protocols can mine \
                      the near-static channels of the slow half for extra capacity.",
            outputs: &["mixed_mobility.csv"],
            columns: SWEEP_COLUMNS,
            runtime: "quick ≈ 1 s, standard ≈ 3 s, full ≈ 8 s (release build, one core)",
            kind: EntryKind::Sweep {
                build: mixed_mobility_campaign,
                render: render_mixed_mobility,
            },
        },
        Entry {
            name: "load_ramp",
            title: "flash crowd: voice users stepped mid-run",
            paper: "beyond the paper",
            details: "40 voice users for the first half of the measured window, stepping to 120 \
                      (plus 10 data users, queue on) at the midpoint — against a steady 120-user \
                      control.  Dormant terminals advance their traffic sources so the \
                      activation is draw-for-draw aligned with the control run.",
            outputs: &["load_ramp.csv"],
            columns: SWEEP_COLUMNS,
            runtime: "quick ≈ 1 s, standard ≈ 2 s, full ≈ 5 s (release build, one core)",
            kind: EntryKind::Sweep {
                build: load_ramp_campaign,
                render: render_load_ramp,
            },
        },
        Entry {
            name: "data_heavy",
            title: "data-dominated cell",
            paper: "beyond the paper (extends the Fig. 12/13 axes)",
            details: "Only 5 voice users but up to 32 data users, with and without the queue — \
                      past the edge of the paper's figures, which stop at 24 data users.  Shows \
                      where each protocol's data service saturates once voice no longer \
                      dominates the frame.",
            outputs: &["data_heavy.csv"],
            columns: SWEEP_COLUMNS,
            runtime: "quick ≈ 1 s, standard ≈ 2 s, full ≈ 6 s (release build, one core)",
            kind: EntryKind::Sweep {
                build: data_heavy_campaign,
                render: render_data_heavy,
            },
        },
        Entry {
            name: "multicell_baseline",
            title: "7-cell hexagonal system with mixed mobility",
            paper: "beyond the paper (multi-cell system layer)",
            details: "The classic 7-cell hexagonal cluster with 250 m cells: terminals roam \
                      under the random-waypoint model, their mean SNR follows log-distance \
                      path loss plus site shadowing, and boundary crossings trigger handoffs \
                      (unlimited admission).  All six protocols over a per-cell voice grid at \
                      Nd = 5 with a mixed 3/80 km/h population.  Emits the uniform sweep CSV \
                      plus a per-row handoff-counter CSV.",
            outputs: &["multicell_baseline.csv", "multicell_baseline_handoff.csv"],
            columns: SWEEP_COLUMNS,
            runtime: "quick ≈ 2 s, standard ≈ 1 min, full ≈ 4 min (release build, one core)",
            kind: EntryKind::Sweep {
                build: multicell_baseline_campaign,
                render: render_multicell_baseline,
            },
        },
        Entry {
            name: "handoff_stress",
            title: "3-cell corridor under handoff admission pressure",
            paper: "beyond the paper (multi-cell system layer)",
            details: "A highway corridor of three 200 m cells with 80% of terminals at \
                      80 km/h and admission capacity 30 per cell (25 initial + 5 headroom): \
                      the drop_on_full scenario loses in-flight voice packets whenever a full \
                      cell refuses a handoff, the handoff_queue scenario parks terminals on \
                      their old cell instead.  CHARISMA and the two D-TDMA baselines.",
            outputs: &["handoff_stress.csv", "handoff_stress_handoff.csv"],
            columns: SWEEP_COLUMNS,
            runtime: "quick ≈ 1 s, standard ≈ 10 s, full ≈ 40 s (release build, one core)",
            kind: EntryKind::Sweep {
                build: handoff_stress_campaign,
                render: render_handoff_stress,
            },
        },
        Entry {
            name: "city_scale",
            title: "127-cell hexagonal city on the sharded frame loop",
            paper: "beyond the paper (intra-point parallelism)",
            details: "Six complete hexagonal rings of 150 m cells — 127 base stations, \
                      8 terminals each at start — stepped by the sharded SystemWorld on 4 \
                      worker threads: cells roam and run their MACs in parallel within each \
                      frame, cross-cell handoffs travel through per-frame mailboxes merged \
                      in cell-id order, and the run is byte-identical at any thread count.  \
                      CHARISMA and D-TDMA/VR, one replication, sized to stay CI-friendly \
                      under the quick profile.",
            outputs: &["city_scale.csv", "city_scale_handoff.csv"],
            columns: SWEEP_COLUMNS,
            runtime: "quick ≈ 10 s, standard ≈ 45 s, full ≈ 3 min (release build, 4 threads)",
            kind: EntryKind::Sweep {
                build: city_scale_campaign,
                render: render_city_scale,
            },
        },
        Entry {
            name: "smoke_10k",
            title: "10,000-terminal single-cell smoke",
            paper: "beyond the paper (frame-core scalability)",
            details: "A single cell carrying 9,000 voice and 1,000 data terminals — two \
                      orders of magnitude past the paper's populations — run for a fixed \
                      1,000 frames (2.5 simulated seconds) on every profile.  The point is \
                      not the (saturated) QoS metrics but the structure-of-arrays frame \
                      core: the begin-frame sweep, the index-sliced MAC surface and the \
                      contention machinery must stay linear in the population and \
                      byte-deterministic at this scale, within a CI-sized wall-clock \
                      budget.  CHARISMA and D-TDMA/VR, one replication.",
            outputs: &["smoke_10k.csv"],
            columns: SWEEP_COLUMNS,
            runtime: "≈ 1 s on every profile (fixed frame count; release build, one core)",
            kind: EntryKind::Sweep {
                build: smoke_10k_campaign,
                render: render_smoke_10k,
            },
        },
    ]
}

/// The registry names, in handbook order.
pub fn names() -> Vec<&'static str> {
    entries().iter().map(|e| e.name).collect()
}

/// Looks an entry up by name.
pub fn find(name: &str) -> Option<Entry> {
    entries().into_iter().find(|e| e.name == name)
}

/// Builds the campaign of a sweep entry (None for bespoke entries or unknown
/// names).  Exposed so tests can exercise registry campaigns directly.
pub fn build_campaign(name: &str, profile: BenchProfile) -> Option<Campaign> {
    match find(name)?.kind {
        EntryKind::Sweep { build, .. } => Some(build(profile)),
        EntryKind::Custom { .. } => None,
    }
}

/// Runs one entry: executes its campaign (or bespoke generator), prints its
/// tables and writes its artifacts under `results/`.
pub fn run_entry(
    name: &str,
    profile: BenchProfile,
    threads: usize,
    baseline: BaselineWrite,
) -> Result<EntryReport, String> {
    let entry = find(name).ok_or_else(|| {
        format!(
            "unknown scenario \"{name}\" — registered scenarios: {}",
            names().join(", ")
        )
    })?;
    println!(
        "=== {} — {} [{} profile] ===",
        entry.name,
        entry.title,
        profile.label()
    );
    match entry.kind {
        EntryKind::Sweep { build, render } => {
            let campaign = build(profile);
            let started = Instant::now();
            let run = campaign
                .run_replicated(profile.budget(), profile.replications(), threads)
                .map_err(|e| e.to_string())?;
            let artifacts = render(&run);
            let mut outputs = Vec::new();
            for artifact in artifacts {
                outputs.push(
                    write_output(artifact.file, &artifact.contents).map_err(|e| e.to_string())?,
                );
            }
            let replications: u64 = run.rows.iter().map(|r| r.reps()).sum();
            println!(
                "{}: {} sweep points ({} replications) in {:.1} s",
                entry.name,
                run.rows.len(),
                replications,
                started.elapsed().as_secs_f64()
            );
            Ok(EntryReport {
                name: entry.name,
                points: run.rows.len(),
                replications,
                seeds: campaign.seeds(),
                outputs,
                campaign_json: Some(campaign.to_json()),
            })
        }
        EntryKind::Custom { run } => {
            let outputs = run(profile, baseline);
            Ok(EntryReport {
                name: entry.name,
                points: 0,
                replications: 0,
                seeds: Vec::new(),
                outputs,
                campaign_json: None,
            })
        }
    }
}

/// The current git revision (for provenance), or `"unknown"` outside a git
/// checkout.
pub fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// The provenance manifest for a set of executed entries.
pub fn manifest_json(reports: &[EntryReport], profile: BenchProfile, threads: usize) -> Json {
    Json::Object(vec![
        (
            "schema".into(),
            Json::Str("charisma.campaign_manifest.v1".into()),
        ),
        ("profile".into(), Json::Str(profile.label().into())),
        ("threads".into(), Json::Int(threads as u64)),
        ("git_revision".into(), Json::Str(git_revision())),
        (
            "entries".into(),
            Json::Array(
                reports
                    .iter()
                    .map(|r| {
                        Json::Object(vec![
                            ("name".into(), Json::Str(r.name.into())),
                            ("points".into(), Json::Int(r.points as u64)),
                            ("replications".into(), Json::Int(r.replications)),
                            (
                                "seeds".into(),
                                Json::Array(r.seeds.iter().map(|&s| Json::Int(s)).collect()),
                            ),
                            (
                                "outputs".into(),
                                Json::Array(
                                    r.outputs
                                        .iter()
                                        .map(|p| {
                                            Json::Str(
                                                p.file_name()
                                                    .map(|f| f.to_string_lossy().into_owned())
                                                    .unwrap_or_else(|| p.display().to_string()),
                                            )
                                        })
                                        .collect(),
                                ),
                            ),
                            (
                                "campaign".into(),
                                r.campaign_json.clone().unwrap_or(Json::Null),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Runs a list of explicitly named entries and records the provenance
/// manifest (`results/MANIFEST.json`): spec JSON, profile, seeds, outputs
/// and git revision of the run.  Explicit naming means committed baselines
/// may be refreshed ([`BaselineWrite::Allowed`]); bulk `run all` invocations
/// go through [`run_and_record_with`] with [`BaselineWrite::Sidecar`].
///
/// The manifest is (re)written even when an entry fails partway through, so
/// the artifacts that *did* land in `results/` are never described by a
/// stale manifest from an earlier invocation.
pub fn run_and_record(
    run_names: &[String],
    profile: BenchProfile,
    threads: usize,
) -> Result<Vec<EntryReport>, String> {
    run_and_record_with(run_names, profile, threads, BaselineWrite::Allowed)
}

/// [`run_and_record`] with an explicit baseline-write context.
pub fn run_and_record_with(
    run_names: &[String],
    profile: BenchProfile,
    threads: usize,
    baseline: BaselineWrite,
) -> Result<Vec<EntryReport>, String> {
    let mut reports = Vec::new();
    let mut failure: Option<String> = None;
    for name in run_names {
        match run_entry(name, profile, threads, baseline) {
            Ok(report) => reports.push(report),
            Err(e) => {
                failure = Some(format!("{name}: {e}"));
                break;
            }
        }
        println!();
    }
    let manifest = manifest_json(&reports, profile, threads);
    write_output("MANIFEST.json", &format!("{manifest}\n")).map_err(|e| e.to_string())?;
    match failure {
        Some(e) => Err(format!(
            "{e} (results/MANIFEST.json covers the {} completed entr{})",
            reports.len(),
            if reports.len() == 1 { "y" } else { "ies" }
        )),
        None => Ok(reports),
    }
}

// --- the reproduction handbook -------------------------------------------

/// Marker opening the generated section of `EXPERIMENTS.md`.
pub const GENERATED_BEGIN: &str =
    "<!-- BEGIN GENERATED SCENARIOS (campaign --write-handbook; do not edit by hand) -->";
/// Marker closing the generated section of `EXPERIMENTS.md`.
pub const GENERATED_END: &str = "<!-- END GENERATED SCENARIOS -->";

/// The generated handbook section: one subsection per registry entry.
pub fn handbook_markdown() -> String {
    let mut out = String::new();
    for entry in entries() {
        out.push_str(&format!("### `{}` — {}\n\n", entry.name, entry.title));
        out.push_str(&format!("**Paper artifact:** {}.\n\n", entry.paper));
        out.push_str(&format!("{}\n\n", entry.details));
        out.push_str(&format!(
            "- **Run:** `cargo run --release -p charisma_bench --bin campaign -- run {} \
             --profile quick` (or `standard` / `full`)\n",
            entry.name
        ));
        let files = entry
            .outputs
            .iter()
            .map(|f| format!("`results/{f}`"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("- **Output:** {files}\n"));
        out.push_str(&format!("- **Columns:** `{}`\n", entry.columns));
        out.push_str(&format!("- **Runtime:** {}\n\n", entry.runtime));
    }
    out
}

/// The per-profile summary lines shared by `campaign list`, `campaign
/// describe` and the handbook preamble (one source, no drift).
pub fn profile_summary_lines() -> String {
    BenchProfile::ALL
        .iter()
        .map(|p| format!("- `{}`: {}", p.label(), p.describe()))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The full `EXPERIMENTS.md` document used when the handbook does not exist
/// yet: a hand-written preamble plus the generated scenario section.
pub fn handbook_document() -> String {
    format!(
        "# EXPERIMENTS — the reproduction handbook\n\
         \n\
         How to regenerate every evaluation artifact of\n\
         \n\
         > Y.-K. Kwok and V. K. N. Lau, *\"A Novel Channel-Adaptive Uplink Access\n\
         > Control Protocol for Nomadic Computing\"*, ICPP 2000 / IEEE TPDS 13(11), 2002.\n\
         \n\
         Every experiment is a named entry in the scenario-campaign registry\n\
         (`crates/bench/src/registry.rs`).  One binary drives them all:\n\
         \n\
         ```sh\n\
         cargo run --release -p charisma_bench --bin campaign -- list\n\
         cargo run --release -p charisma_bench --bin campaign -- describe fig11\n\
         cargo run --release -p charisma_bench --bin campaign -- run fig11 --profile quick\n\
         cargo run --release -p charisma_bench --bin campaign -- run all --profile full\n\
         ```\n\
         \n\
         The sweep-shaped experiments are declarative `ScenarioSpec`s (protocol set,\n\
         voice/data user grids, speed profile, channel mode, duration, replications,\n\
         seed) expanded onto the deterministic parallel sweep executor;\n\
         `describe <name>` prints the exact spec JSON.  Run length and replication\n\
         policy per sweep point are set by the profile (`--profile` or\n\
         `CHARISMA_BENCH_PROFILE`; `campaign list` prints the same summary):\n\
         \n\
         {profiles}\n\
         \n\
         The campaign CSVs report each metric as a mean with its 95 % Student-t\n\
         confidence half-width.  Unrecognised profile values are an error.\n\
         `campaign gate <name>` re-runs an entry and compares it against its\n\
         committed baseline under `results/` (the CI benchmark regression gate);\n\
         `campaign gate all` gates every entry with a committed baseline and prints\n\
         a one-line pass/fail summary table.  Every gate run appends its checks to\n\
         the append-only ledger `results/BENCH_history.jsonl`, and `campaign trend`\n\
         reads the ledger back to flag slow drift the per-run tolerance cannot see.\n\
         \n\
         Sweep runs are durable: each completed point is appended to the entry's\n\
         checkpoint manifest `results/.checkpoint/<entry>.jsonl`, an interrupted\n\
         run exits 3, and `campaign run <name> --resume` replays the completed\n\
         points byte-for-byte (refusing, exit 2, if the spec, profile or git\n\
         revision changed).  `CHARISMA_FAULT_POINT=N` aborts deterministically\n\
         after N points — the hook the durability tests and the CI resume smoke\n\
         test inject faults with.\n\
         \n\
         Every invocation of `campaign run` writes `results/MANIFEST.json` recording\n\
         the executed specs, profile, seeds, replication counts, output files and git\n\
         revision.  Runs are deterministic: the same (spec, profile) pair produces\n\
         byte-identical CSVs on every machine, at every sweep thread count\n\
         (`tests/determinism.rs` pins this).  All commands below are run from the\n\
         repository root.\n\
         \n\
         The scenario sections between the markers are generated — regenerate with:\n\
         \n\
         ```sh\n\
         cargo run --release -p charisma_bench --bin campaign -- write-handbook\n\
         ```\n\
         \n\
         {}\n\
         {}\
         {}\n",
        GENERATED_BEGIN,
        handbook_markdown(),
        GENERATED_END,
        profiles = profile_summary_lines(),
    )
}

/// Creates or refreshes the handbook at `path`: a missing file is created
/// from [`handbook_document`]; an existing file has the section between the
/// generated-section markers replaced in place.
pub fn write_handbook(path: &Path) -> io::Result<PathBuf> {
    let contents = match std::fs::read_to_string(path) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => handbook_document(),
        Err(e) => return Err(e),
        Ok(existing) => {
            let begin = existing.find(GENERATED_BEGIN).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: missing marker {GENERATED_BEGIN:?}", path.display()),
                )
            })?;
            let end = existing.find(GENERATED_END).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: missing marker {GENERATED_END:?}", path.display()),
                )
            })?;
            if end < begin {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: generated-section markers are reversed", path.display()),
                ));
            }
            format!(
                "{}\n{}{}",
                &existing[..begin + GENERATED_BEGIN.len()],
                handbook_markdown(),
                &existing[end..]
            )
        }
    };
    std::fs::write(path, contents)?;
    println!("wrote {}", path.display());
    Ok(path.to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let names = names();
        assert!(names.len() >= 14, "expected >= 14 entries, got {names:?}");
        for (i, n) in names.iter().enumerate() {
            assert!(!n.is_empty());
            assert!(!names[..i].contains(n), "duplicate entry {n}");
        }
    }

    #[test]
    fn registry_covers_all_legacy_binaries_and_the_new_scenarios() {
        let names = names();
        for required in [
            "table1",
            "fig5_fading",
            "fig7_abicm",
            "fig11",
            "fig12",
            "fig13",
            "capacity_table",
            "qos_capacity",
            "speed_sweep",
            "ablation_csi",
            "bench_frame_loop",
            "mixed_mobility",
            "load_ramp",
            "data_heavy",
            "multicell_baseline",
            "handoff_stress",
            "city_scale",
        ] {
            assert!(
                names.contains(&required),
                "missing registry entry {required}"
            );
        }
    }

    #[test]
    fn every_sweep_campaign_validates_and_expands_on_every_profile() {
        for profile in BenchProfile::ALL {
            for entry in entries() {
                if let EntryKind::Sweep { build, .. } = entry.kind {
                    let campaign = build(profile);
                    assert_eq!(campaign.name, entry.name);
                    let points = campaign
                        .expand(profile.budget())
                        .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
                    assert!(!points.is_empty(), "{} expanded to nothing", entry.name);
                    for p in &points {
                        p.point.config.validate();
                    }
                }
            }
        }
    }

    #[test]
    fn entry_metadata_is_complete() {
        for entry in entries() {
            assert!(!entry.title.is_empty(), "{}: empty title", entry.name);
            assert!(!entry.paper.is_empty(), "{}: empty paper ref", entry.name);
            assert!(!entry.details.is_empty(), "{}: empty details", entry.name);
            assert!(!entry.outputs.is_empty(), "{}: no outputs", entry.name);
            assert!(!entry.columns.is_empty(), "{}: no columns", entry.name);
            assert!(!entry.runtime.is_empty(), "{}: no runtime", entry.name);
        }
    }

    #[test]
    fn handbook_section_documents_every_entry() {
        let handbook = handbook_markdown();
        for entry in entries() {
            assert!(
                handbook.contains(&format!("### `{}`", entry.name)),
                "handbook section missing {}",
                entry.name
            );
            assert!(
                handbook.contains(&format!("run {} --profile", entry.name)),
                "handbook section missing the run command for {}",
                entry.name
            );
        }
    }

    #[test]
    fn unknown_entries_error_with_the_valid_names() {
        let e = run_entry("fig99", BenchProfile::Quick, 1, BaselineWrite::Allowed).unwrap_err();
        assert!(e.contains("fig99"));
        assert!(e.contains("fig11"), "error should list the registry: {e}");
    }

    #[test]
    fn manifest_shape_is_stable() {
        let reports = vec![EntryReport {
            name: "fig11",
            points: 3,
            replications: 9,
            seeds: vec![1, 2],
            outputs: vec![PathBuf::from("results/fig11_voice_loss.csv")],
            campaign_json: Some(Json::Null),
        }];
        let m = manifest_json(&reports, BenchProfile::Quick, 4);
        assert_eq!(
            m.get("schema").and_then(Json::as_str),
            Some("charisma.campaign_manifest.v1")
        );
        assert_eq!(m.get("profile").and_then(Json::as_str), Some("quick"));
        assert_eq!(m.get("threads").and_then(Json::as_u64), Some(4));
        let entries = m.get("entries").and_then(Json::as_array).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(
            entries[0].get("replications").and_then(Json::as_u64),
            Some(9)
        );
        assert_eq!(
            entries[0].get("outputs").and_then(Json::as_array).unwrap()[0].as_str(),
            Some("fig11_voice_loss.csv")
        );
        // The manifest re-parses as valid JSON.
        assert_eq!(Json::parse(&m.to_string()).unwrap(), m);
    }
}
