//! Bespoke (non-sweep) artifact generators.
//!
//! Four of the paper's artifacts are not parameter sweeps and therefore do
//! not fit the declarative [`ScenarioSpec`](charisma::ScenarioSpec) shape:
//! the Table 1 parameter listing, the Fig. 5 fading trace, the Fig. 7 ABICM
//! curves and the frame-loop performance benchmark.  They live here as plain
//! functions so the campaign registry can drive them exactly like the sweep
//! campaigns; the corresponding `src/bin/` binaries are thin wrappers.

use crate::{base_config, write_csv, write_output, BaselineWrite, BenchProfile};
use charisma::des::{RngStreams, SimDuration, StreamId};
use charisma::metrics::RunningStat;
use charisma::phy::{AdaptivePhy, FixedPhy, Phy};
use charisma::radio::{ChannelConfig, ChannelMode, CombinedChannel, Mobility};
use charisma::{ProtocolKind, Scenario, SimConfig};
use std::path::PathBuf;
use std::time::Instant;

/// Table 1 — prints every parameter of the common simulation platform and
/// writes `results/table1_parameters.csv`.
pub fn run_table1(profile: BenchProfile, _baseline: BaselineWrite) -> Vec<PathBuf> {
    let cfg = base_config(profile);
    let frame = &cfg.frame;

    println!("Table 1 — simulation parameters (reproduction values)");
    println!("{:-<72}", "");
    let mut rows: Vec<(String, String)> = Vec::new();
    let mut add = |k: &str, v: String| rows.push((k.to_string(), v));

    add("transmission bandwidth", "320 kHz (paper)".into());
    add("speech source rate", "8 kbps (paper)".into());
    add("frame duration", format!("{}", frame.frame_duration));
    add(
        "information slots per frame (N_i)",
        frame.info_slots.to_string(),
    );
    add(
        "request minislots per frame (N_r)",
        frame.request_slots.to_string(),
    );
    add(
        "CSI pilot/poll slots per frame (N_b)",
        frame.pilot_slots.to_string(),
    );
    add(
        "sub-slot scheduling granularity",
        format!("1/{}", frame.subslots_per_slot),
    );
    add(
        "RAMA auction slots per frame (N_a)",
        frame.rama_auction_slots.to_string(),
    );
    add(
        "DRMA information slots per frame (N_k)",
        frame.drma_info_slots.to_string(),
    );
    add(
        "DRMA minislots per converted slot (N_x)",
        frame.drma_minislots.to_string(),
    );
    add(
        "RMAV information slots per frame",
        frame.rmav_info_slots.to_string(),
    );
    add(
        "RMAV maximum data grant (P_max)",
        frame.rmav_max_data_slots.to_string(),
    );
    add(
        "mean talkspurt duration (t_t)",
        format!("{}", cfg.voice_source.mean_talkspurt),
    );
    add(
        "mean silence duration (t_s)",
        format!("{}", cfg.voice_source.mean_silence),
    );
    add(
        "voice activity factor",
        format!("{:.3}", cfg.voice_source.activity_factor()),
    );
    add(
        "voice packet period",
        format!("{}", cfg.voice_source.packet_period),
    );
    add(
        "voice packet deadline",
        format!("{}", cfg.voice_source.deadline),
    );
    add(
        "mean data burst inter-arrival",
        format!("{}", cfg.data_source.mean_interarrival),
    );
    add(
        "mean data burst size",
        format!("{:.0} packets", cfg.data_source.mean_burst_packets),
    );
    add(
        "voice permission probability (p_v)",
        format!("{:.2}", cfg.contention.pv),
    );
    add(
        "data permission probability (p_d)",
        format!("{:.2}", cfg.contention.pd),
    );
    add(
        "mean received SNR",
        format!("{:.1} dB", cfg.channel.mean_snr_db),
    );
    add(
        "shadowing std deviation",
        format!("{:.1} dB", cfg.channel.shadowing.std_db),
    );
    add(
        "shadowing correlation time",
        format!("{}", cfg.channel.shadowing.correlation_time),
    );
    add("terminal speed profile", format!("{:?}", cfg.speed));
    add(
        "ABICM modes (normalised throughput)",
        "outage, 1/2, 1, 2, 3, 4, 5".to_string(),
    );
    add(
        "ABICM adaptation thresholds",
        format!("{:?} dB", cfg.adaptive_phy.thresholds.boundaries),
    );
    add(
        "ABICM in-range packet error rate",
        format!("{:.0e}", cfg.adaptive_phy.in_range_per),
    );
    add(
        "fixed-PHY design threshold",
        format!("{:.1} dB", cfg.fixed_phy.design_threshold_db),
    );
    add(
        "CSI estimation error std",
        format!("{:.1} dB", cfg.csi.error_std_db),
    );
    add("CSI estimate validity", format!("{}", cfg.csi.validity));
    add(
        "request queue capacity",
        cfg.request_queue_capacity.to_string(),
    );
    add(
        "warm-up / measured frames",
        format!("{} / {}", cfg.warmup_frames, cfg.measured_frames),
    );
    add("master seed", format!("0x{:X}", cfg.seed));

    let csv_rows: Vec<String> = rows.iter().map(|(k, v)| format!("{k},{v}")).collect();
    for (k, v) in &rows {
        println!("{k:<42} {v}");
    }
    vec![write_csv(
        "table1_parameters.csv",
        "parameter,value",
        &csv_rows,
    )]
}

/// Fig. 5 — a 2-second sample of the combined fading process at 50 km/h;
/// writes `results/fig5_fading.csv`.
pub fn run_fig5_fading(_profile: BenchProfile, _baseline: BaselineWrite) -> Vec<PathBuf> {
    let streams = RngStreams::new(0xF165_BEEF);
    let mut channel = CombinedChannel::new(
        ChannelConfig::default(),
        Mobility::new(50.0),
        streams.stream(StreamId::new(StreamId::DOMAIN_CHANNEL, 0)),
    );

    // 2 seconds sampled every 0.5 ms: fast fading varies within ~10 ms while
    // the shadowing component drifts over the whole trace.
    let step = SimDuration::from_micros(500);
    let samples = 4_000;
    let rows = channel.trace(step, samples);

    let mut csv = Vec::with_capacity(rows.len());
    let mut min_snr = f64::INFINITY;
    let mut max_snr = f64::NEG_INFINITY;
    let mut deep_fade_samples = 0usize;
    for &(t, short_db, long_db, snr_db) in &rows {
        csv.push(format!(
            "{:.6},{:.3},{:.3},{:.3}",
            t.as_secs_f64(),
            short_db,
            long_db,
            snr_db
        ));
        min_snr = min_snr.min(snr_db);
        max_snr = max_snr.max(snr_db);
        if short_db < -10.0 {
            deep_fade_samples += 1;
        }
    }

    println!("Fig. 5 — sample of combined channel fading (50 km/h, 2 s, 0.5 ms sampling)");
    println!("samples:                  {}", rows.len());
    println!(
        "SNR range:                {:.1} dB … {:.1} dB",
        min_snr, max_snr
    );
    println!(
        "time in >10 dB fast fade: {:.1}%  (Rayleigh theory ≈ 9.5%)",
        100.0 * deep_fade_samples as f64 / rows.len() as f64
    );
    println!(
        "shadowing drift over trace: {:.1} dB",
        (rows.last().unwrap().2 - rows[0].2).abs()
    );
    vec![write_csv(
        "fig5_fading.csv",
        "time_s,fast_fading_db,shadowing_db,snr_db",
        &csv,
    )]
}

/// Fig. 7 — ABICM throughput and error behaviour versus CSI; writes
/// `results/fig7_abicm.csv`.
pub fn run_fig7_abicm(_profile: BenchProfile, _baseline: BaselineWrite) -> Vec<PathBuf> {
    let adaptive = AdaptivePhy::default();
    let fixed = FixedPhy::default();

    println!("Fig. 7 — ABICM throughput and error behaviour vs CSI");
    println!(
        "{:>8} {:>8} {:>22} {:>22} {:>18}",
        "CSI(dB)", "mode", "normalised throughput", "adaptive packet error", "fixed packet error"
    );

    let mut rows = Vec::new();
    let mut snr = -20.0f64;
    while snr <= 35.0 + 1e-9 {
        let mode = adaptive.mode_for(snr);
        let tput = adaptive.packets_per_slot(snr);
        let per = adaptive.packet_error_probability(snr);
        let fper = fixed.packet_error_probability(snr);
        println!(
            "{snr:>8.1} {:>8} {tput:>22.1} {per:>22.2e} {fper:>18.2e}",
            mode.index()
        );
        rows.push(format!(
            "{snr:.1},{},{tput:.2},{per:.6},{fper:.6}",
            mode.index()
        ));
        snr += 1.0;
    }

    println!();
    println!("Inside the adaptation range the packet error probability is constant (the");
    println!("constant-BER operating mode of Fig. 7a) while the throughput steps from 1/2 to 5");
    println!("(Fig. 7b); below the range the scheme is in outage (mode 0).");
    vec![write_csv(
        "fig7_abicm.csv",
        "csi_db,mode,normalised_throughput,adaptive_per,fixed_per",
        &rows,
    )]
}

/// One measured (protocol, channel mode) combination of the frame-loop
/// benchmark.
pub struct Measurement {
    /// The protocol measured.
    pub protocol: ProtocolKind,
    /// The channel evaluation mode measured.
    pub mode: ChannelMode,
    /// Wall-clock repetitions taken.
    pub reps: u32,
    /// Fastest repetition, in seconds.
    pub best_elapsed_secs: f64,
    /// Frames per second of the fastest repetition.
    pub frames_per_second: f64,
    /// Per-repetition frames-per-second samples (mean/CI for the gate).
    pub fps: RunningStat,
    /// Voice loss of the (deterministic) run, as a sanity check.
    pub voice_loss_rate: f64,
}

/// The JSON label of a channel mode in the benchmark record.
pub fn mode_label(mode: ChannelMode) -> &'static str {
    match mode {
        ChannelMode::Eager => "eager",
        ChannelMode::Lazy => "lazy",
    }
}

/// The (protocol, mode) grid the frame-loop benchmark measures.
pub const BENCH_PROTOCOLS: [ProtocolKind; 2] = [ProtocolKind::Charisma, ProtocolKind::DTdmaVr];

/// The reference scenario of the frame-loop benchmark for a profile.
pub fn reference_config(profile: BenchProfile) -> SimConfig {
    let mut cfg = SimConfig::default_paper();
    cfg.num_voice = 60;
    cfg.num_data = 10;
    if profile == BenchProfile::Quick {
        cfg.warmup_frames = 500;
        cfg.measured_frames = 1_500;
    } else {
        cfg.warmup_frames = 2_000;
        cfg.measured_frames = 18_000;
    }
    cfg
}

/// Measures one (protocol, mode) combination: `reps` wall-clock repetitions
/// of the same deterministic run.
pub fn measure(
    base: &SimConfig,
    protocol: ProtocolKind,
    mode: ChannelMode,
    reps: u32,
) -> Measurement {
    let mut cfg = base.clone();
    cfg.channel_mode = mode;
    let scenario = Scenario::new(cfg);
    let total_frames = scenario.config().total_frames();
    let mut best = f64::INFINITY;
    let mut fps = RunningStat::new();
    let mut loss = 0.0;
    for _ in 0..reps {
        let start = Instant::now();
        let report = scenario.run(protocol);
        let elapsed = start.elapsed().as_secs_f64();
        best = best.min(elapsed);
        fps.push(total_frames as f64 / elapsed);
        loss = report.voice_loss_rate();
    }
    Measurement {
        protocol,
        mode,
        reps,
        best_elapsed_secs: best,
        frames_per_second: total_frames as f64 / best,
        fps,
        voice_loss_rate: loss,
    }
}

/// The file the frame-loop benchmark record is written to under `results/`.
///
/// Only an explicitly named standard-profile run writes the canonical
/// `BENCH_frame_loop.json` — the committed baseline the CI regression gate
/// compares against.  Quick and full runs (CI smoke steps, local
/// experiments) go to profile-suffixed siblings, and a bulk `run all` at the
/// standard profile goes to a `.standard.json` sidecar, so the committed
/// baseline is only ever regenerated deliberately.
pub fn bench_frame_loop_file(profile: BenchProfile, baseline: BaselineWrite) -> &'static str {
    match (profile, baseline) {
        (BenchProfile::Standard, BaselineWrite::Allowed) => "BENCH_frame_loop.json",
        (BenchProfile::Standard, BaselineWrite::Sidecar) => "BENCH_frame_loop.standard.json",
        (BenchProfile::Quick, _) => "BENCH_frame_loop.quick.json",
        (BenchProfile::Full, _) => "BENCH_frame_loop.full.json",
    }
}

/// The frame-loop throughput benchmark: the perf trajectory every PR is
/// measured against.  Runs the reference scenario (60 voice + 10 data
/// terminals) under CHARISMA and D-TDMA/VR with both the eager baseline and
/// the lazy hot path, prints frames per second, and writes the routed
/// record file (schema `charisma.bench_frame_loop.v1`, see
/// [`bench_frame_loop_file`]).
pub fn run_bench_frame_loop(profile: BenchProfile, baseline: BaselineWrite) -> Vec<PathBuf> {
    let config = reference_config(profile);
    let reps = if profile == BenchProfile::Quick { 1 } else { 3 };
    let protocols = BENCH_PROTOCOLS;
    let profile_label = profile.label();

    println!(
        "Frame-loop throughput: {} voice + {} data terminals, {} frames, best of {reps}",
        config.num_voice,
        config.num_data,
        config.total_frames()
    );
    println!(
        "{:<12}{:>8}{:>14}{:>16}{:>12}",
        "protocol", "mode", "elapsed [s]", "frames/s", "Ploss"
    );

    let mut runs: Vec<Measurement> = Vec::new();
    for protocol in protocols {
        for mode in [ChannelMode::Eager, ChannelMode::Lazy] {
            let m = measure(&config, protocol, mode, reps);
            println!(
                "{:<12}{:>8}{:>14.3}{:>16.0}{:>12.4}",
                m.protocol.label(),
                mode_label(m.mode),
                m.best_elapsed_secs,
                m.frames_per_second,
                m.voice_loss_rate
            );
            runs.push(m);
        }
    }

    let mut run_objects: Vec<String> = Vec::new();
    for m in &runs {
        run_objects.push(format!(
            concat!(
                "    {{\"protocol\": \"{}\", \"mode\": \"{}\", \"reps\": {}, ",
                "\"best_elapsed_secs\": {:.6}, \"frames_per_second\": {:.1}, ",
                "\"voice_loss_rate\": {:.6}}}"
            ),
            m.protocol.label(),
            mode_label(m.mode),
            m.reps,
            m.best_elapsed_secs,
            m.frames_per_second,
            m.voice_loss_rate
        ));
    }

    let mut speedups: Vec<String> = Vec::new();
    println!();
    for protocol in protocols {
        let fps_of = |mode: ChannelMode| {
            runs.iter()
                .find(|m| m.protocol == protocol && m.mode == mode)
                .map(|m| m.frames_per_second)
                .unwrap_or(f64::NAN)
        };
        let eager = fps_of(ChannelMode::Eager);
        let lazy = fps_of(ChannelMode::Lazy);
        let speedup = lazy / eager;
        println!("{:<12} lazy/eager speedup: {speedup:.2}x", protocol.label());
        speedups.push(format!(
            concat!(
                "    {{\"protocol\": \"{}\", \"eager_fps\": {:.1}, ",
                "\"lazy_fps\": {:.1}, \"lazy_over_eager\": {:.3}}}"
            ),
            protocol.label(),
            eager,
            lazy,
            speedup
        ));
    }

    let json = format!(
        "{{\n\
         \x20 \"schema\": \"charisma.bench_frame_loop.v1\",\n\
         \x20 \"profile\": \"{profile_label}\",\n\
         \x20 \"scenario\": {{\n\
         \x20   \"num_voice\": {},\n\
         \x20   \"num_data\": {},\n\
         \x20   \"warmup_frames\": {},\n\
         \x20   \"measured_frames\": {},\n\
         \x20   \"total_frames\": {},\n\
         \x20   \"seed\": {}\n\
         \x20 }},\n\
         \x20 \"runs\": [\n{}\n  ],\n\
         \x20 \"speedup\": [\n{}\n  ]\n\
         }}\n",
        config.num_voice,
        config.num_data,
        config.warmup_frames,
        config.measured_frames,
        config.total_frames(),
        config.seed,
        run_objects.join(",\n"),
        speedups.join(",\n"),
    );
    let path = write_output(bench_frame_loop_file(profile, baseline), &json)
        .expect("failed to persist the benchmark record");
    vec![path]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_an_explicit_standard_run_writes_the_committed_baseline() {
        assert_eq!(
            bench_frame_loop_file(BenchProfile::Standard, BaselineWrite::Allowed),
            "BENCH_frame_loop.json"
        );
        // Every other (profile, context) combination is routed elsewhere.
        for p in BenchProfile::ALL {
            for b in [BaselineWrite::Allowed, BaselineWrite::Sidecar] {
                if p == BenchProfile::Standard && b == BaselineWrite::Allowed {
                    continue;
                }
                assert_ne!(
                    bench_frame_loop_file(p, b),
                    "BENCH_frame_loop.json",
                    "{} / {b:?} must never overwrite the committed standard baseline",
                    p.label()
                );
            }
        }
    }

    #[test]
    fn measure_collects_per_repetition_fps_samples() {
        let mut cfg = SimConfig::quick_test();
        cfg.num_voice = 5;
        cfg.num_data = 1;
        cfg.warmup_frames = 50;
        cfg.measured_frames = 300;
        let m = measure(&cfg, ProtocolKind::Charisma, ChannelMode::Lazy, 3);
        assert_eq!(m.reps, 3);
        assert_eq!(m.fps.count(), 3);
        assert!(m.fps.mean() > 0.0);
        assert!(m.frames_per_second >= m.fps.mean(), "best >= mean fps");
    }
}
