//! The benchmark regression gate: `campaign gate <entry>`.
//!
//! The gate re-runs a registry entry and machine-compares the fresh results
//! against the committed baseline under `results/`, emitting a pass/fail
//! report CI can consume (exit 0 / nonzero).  Two entry shapes are gated:
//!
//! * **`bench_frame_loop`** — the committed perf baseline
//!   `results/BENCH_frame_loop.json` (always a standard-profile record; the
//!   gate refuses a baseline recorded under any other profile, which is the
//!   symptom of an accidental overwrite).  The gate measures fresh
//!   frames-per-second figures with several wall-clock repetitions and —
//!   matching the baseline's own best-of-reps definition — fails a
//!   combination only when its best fps, credited with the 95 % CI
//!   half-width of the repetitions, still falls short of
//!   `baseline * (1 - tolerance)`; timing noise alone cannot fail the gate.
//!   The fresh record is written to `results/GATE_frame_loop.json` (never
//!   the committed baseline path).
//! * **Sweep campaigns** — any sweep entry whose primary CSV exists at the
//!   baseline path (by default `results/<output>` for the standard profile
//!   and `results/quick/<output>` for the quick profile the CI gate runs
//!   under; see [`default_baseline_file`]).  The fresh run must reproduce
//!   every row key —
//!   coordinates *and* replication count, so a baseline generated under
//!   different grids or a different replication policy (the usual symptoms
//!   of a profile mismatch) is an error rather than a bogus comparison —
//!   and each headline metric must agree within
//!   `atol + rtol·|baseline| + ci95(baseline) + ci95(fresh)`, the
//!   per-metric tolerance informed by both confidence intervals.
//!
//! All comparison logic is pure (string/number in, report out) so the
//! regression tests drive it with synthetic baselines.

use crate::artifacts::{
    bench_frame_loop_file, measure, mode_label, reference_config, BENCH_PROTOCOLS,
};
use crate::{output_dir, registry, write_output, BaselineWrite, BenchProfile};
use charisma::radio::ChannelMode;
use charisma::{CampaignRun, Json};
use std::fmt;
use std::path::{Path, PathBuf};

/// Default allowed relative regression before the gate fails (30 %).
pub const DEFAULT_TOLERANCE: f64 = 0.30;

/// Wall-clock repetitions per (protocol, mode) in a gate measurement: enough
/// for a Student-t interval over the fps samples without slowing CI.
const GATE_FPS_REPS: u32 = 3;

/// Absolute slack when comparing sweep metrics (absorbs CSV rounding: the
/// renderer prints 6 decimals, so half a ULP of the last printed digit).
const SWEEP_ATOL: f64 = 5e-7;

/// One compared metric.
#[derive(Debug, Clone)]
pub struct GateCheck {
    /// What was compared (e.g. `CHARISMA/lazy frames_per_second`).
    pub metric: String,
    /// The committed baseline value.
    pub baseline: f64,
    /// The freshly measured value (best-of-reps fps for the bench gate —
    /// matching the baseline's definition — and a replication mean for
    /// sweep gates).
    pub fresh: f64,
    /// The worst fresh value the gate would still accept.
    pub allowed: f64,
    /// Whether the check passed.
    pub passed: bool,
}

impl fmt::Display for GateCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<42} baseline {:>14.3}  fresh {:>14.3}  allowed {:>14.3}  {}",
            self.metric,
            self.baseline,
            self.fresh,
            self.allowed,
            if self.passed { "ok" } else { "FAIL" }
        )
    }
}

/// The outcome of one gate invocation.
#[derive(Debug)]
pub struct GateReport {
    /// The gated registry entry.
    pub entry: String,
    /// Every comparison performed.
    pub checks: Vec<GateCheck>,
}

impl GateReport {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Number of failed checks.
    pub fn failures(&self) -> usize {
        self.checks.iter().filter(|c| !c.passed).count()
    }
}

// --- bench_frame_loop baseline --------------------------------------------

/// One (protocol, mode) row of the committed frame-loop baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRun {
    /// Protocol label (e.g. `CHARISMA`).
    pub protocol: String,
    /// Channel mode label (`lazy` / `eager`).
    pub mode: String,
    /// Recorded frames per second.
    pub frames_per_second: f64,
}

/// The parsed committed frame-loop baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchBaseline {
    /// The profile the baseline was recorded under.
    pub profile: String,
    /// The recorded (protocol, mode) measurements.
    pub runs: Vec<BaselineRun>,
}

/// Parses a `charisma.bench_frame_loop.v1` record.
pub fn parse_bench_baseline(text: &str) -> Result<BenchBaseline, String> {
    let json = Json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let schema = json.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "charisma.bench_frame_loop.v1" {
        return Err(format!(
            "baseline schema is \"{schema}\", expected \"charisma.bench_frame_loop.v1\""
        ));
    }
    let profile = json
        .get("profile")
        .and_then(Json::as_str)
        .ok_or("baseline is missing the \"profile\" field")?
        .to_string();
    let runs = json
        .get("runs")
        .and_then(Json::as_array)
        .ok_or("baseline is missing the \"runs\" array")?
        .iter()
        .map(|r| {
            Ok(BaselineRun {
                protocol: r
                    .get("protocol")
                    .and_then(Json::as_str)
                    .ok_or("baseline run is missing \"protocol\"")?
                    .to_string(),
                mode: r
                    .get("mode")
                    .and_then(Json::as_str)
                    .ok_or("baseline run is missing \"mode\"")?
                    .to_string(),
                frames_per_second: r
                    .get("frames_per_second")
                    .and_then(Json::as_f64)
                    .ok_or("baseline run is missing \"frames_per_second\"")?,
            })
        })
        .collect::<Result<Vec<_>, &str>>()
        .map_err(|e| e.to_string())?;
    if runs.is_empty() {
        return Err("baseline \"runs\" array is empty".into());
    }
    Ok(BenchBaseline { profile, runs })
}

/// Checks one fps figure against its baseline: the fresh figure (best-of-reps
/// fps, like the baseline records), credited with the 95 % CI half-width of
/// its repetitions, must reach `baseline * (1 - tolerance)`.
pub fn check_fps(
    metric: impl Into<String>,
    baseline_fps: f64,
    fresh_fps: f64,
    fresh_ci95: f64,
    tolerance: f64,
) -> GateCheck {
    let allowed = baseline_fps * (1.0 - tolerance);
    GateCheck {
        metric: metric.into(),
        baseline: baseline_fps,
        fresh: fresh_fps,
        allowed,
        passed: fresh_fps + fresh_ci95 >= allowed,
    }
}

// --- sweep-campaign CSV comparison ----------------------------------------

/// One parsed row of the uniform campaign CSV.
#[derive(Debug, Clone)]
struct CsvRow {
    key: String,
    metrics: [(f64, f64); 3], // (mean, ci95) per headline metric
}

/// The headline-metric column names, in CSV order.
const METRIC_NAMES: [&str; 3] = [
    "voice_loss_rate",
    "data_throughput_per_frame",
    "data_delay_s",
];

fn parse_campaign_csv(which: &str, text: &str) -> Result<Vec<CsvRow>, String> {
    let mut lines = text.lines();
    let header = lines.next().unwrap_or_default();
    if header != CampaignRun::CSV_HEADER {
        return Err(format!(
            "{which} CSV header does not match the current campaign schema \
             (regenerate the baseline with `campaign run`): got \"{header}\""
        ));
    }
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 14 {
            return Err(format!(
                "{which} CSV row {} has {} fields, expected 14: \"{line}\"",
                i + 2,
                fields.len()
            ));
        }
        let num = |idx: usize| -> Result<f64, String> {
            fields[idx]
                .parse::<f64>()
                .map_err(|_| format!("{which} CSV row {}: bad number \"{}\"", i + 2, fields[idx]))
        };
        rows.push(CsvRow {
            // Everything up to and including the replication count
            // identifies the point: replications are deterministic for a
            // given (campaign, profile), so a reps difference — like a grid
            // difference — is the signature of comparing different
            // profiles, not a metric regression.
            key: fields[..8].join(","),
            metrics: [
                (num(8)?, num(9)?),
                (num(10)?, num(11)?),
                (num(12)?, num(13)?),
            ],
        });
    }
    Ok(rows)
}

/// Compares a fresh campaign CSV against a baseline CSV of the same schema.
///
/// Produces one [`GateCheck`] per headline metric, reporting the worst
/// deviation relative to its allowance across all rows.  Errors (rather than
/// failing checks) when the row sets differ — the signature of comparing
/// runs from different profiles or grids.
pub fn compare_campaign_csv(
    baseline_csv: &str,
    fresh_csv: &str,
    tolerance: f64,
) -> Result<Vec<GateCheck>, String> {
    let baseline = parse_campaign_csv("baseline", baseline_csv)?;
    let fresh = parse_campaign_csv("fresh", fresh_csv)?;
    if baseline.len() != fresh.len() {
        return Err(format!(
            "baseline and fresh row sets differ ({} vs {} rows) — the baseline was \
             generated with a different profile or grid; re-run `campaign run` at the \
             gate's profile to refresh it",
            baseline.len(),
            fresh.len()
        ));
    }
    if let Some((b, f)) = baseline.iter().zip(&fresh).find(|(b, f)| b.key != f.key) {
        return Err(format!(
            "baseline and fresh row sets differ: first divergence at baseline row \
             \"{}\" vs fresh row \"{}\" (key = coordinates + replication count) — the \
             baseline was generated with a different profile, grid or replication \
             policy; re-run `campaign run` at the gate's profile to refresh it",
            b.key, f.key
        ));
    }
    let mut checks: Vec<GateCheck> = METRIC_NAMES
        .iter()
        .map(|name| GateCheck {
            metric: format!("{name} (worst row: none out of tolerance)"),
            baseline: 0.0,
            fresh: 0.0,
            allowed: 0.0,
            passed: true,
        })
        .collect();
    // Track the worst deviation-to-allowance ratio per metric.
    let mut worst = [0.0f64; 3];
    for (b, f) in baseline.iter().zip(&fresh) {
        for m in 0..3 {
            let (b_mean, b_ci) = b.metrics[m];
            let (f_mean, f_ci) = f.metrics[m];
            let allowance = SWEEP_ATOL + tolerance * b_mean.abs() + b_ci + f_ci;
            let deviation = (f_mean - b_mean).abs();
            let ratio = deviation / allowance;
            if ratio > worst[m] {
                worst[m] = ratio;
                checks[m] = GateCheck {
                    metric: format!("{} (worst row: {})", METRIC_NAMES[m], b.key),
                    baseline: b_mean,
                    fresh: f_mean,
                    allowed: allowance,
                    passed: deviation <= allowance,
                };
            }
        }
    }
    Ok(checks)
}

// --- the gate driver ------------------------------------------------------

/// Runs the gate for `name` and returns the report, or an infrastructure
/// error (unknown entry, missing/corrupt baseline, profile mismatch).
pub fn run_gate(
    name: &str,
    profile: BenchProfile,
    threads: usize,
    tolerance: f64,
    baseline_override: Option<&Path>,
) -> Result<GateReport, String> {
    if !(tolerance.is_finite() && (0.0..1.0).contains(&tolerance)) {
        return Err(format!(
            "gate tolerance must be a fraction in [0, 1), got {tolerance}"
        ));
    }
    if name == "bench_frame_loop" {
        return gate_bench_frame_loop(tolerance, baseline_override);
    }
    registry::find(name).ok_or_else(|| {
        format!(
            "unknown scenario \"{name}\" — registered scenarios: {}",
            registry::names().join(", ")
        )
    })?;
    let campaign = registry::build_campaign(name, profile).ok_or_else(|| {
        format!(
            "\"{name}\" is a bespoke artifact without a gateable baseline \
             (gateable: bench_frame_loop and every sweep campaign)"
        )
    })?;
    let baseline_path = baseline_override
        .map(Path::to_path_buf)
        .or_else(|| default_baseline_file(name, profile))
        .ok_or_else(|| format!("no default baseline location for \"{name}\""))?;
    let baseline_csv = read_baseline(
        &baseline_path,
        &format!("campaign run {name} --profile {}", profile.label()),
    )?;
    println!(
        "gate {name}: re-running {} sweep points [{} profile] against {}",
        campaign
            .expand(profile.budget())
            .map(|p| p.len())
            .unwrap_or(0),
        profile.label(),
        baseline_path.display()
    );
    let fresh = campaign
        .run_replicated(profile.budget(), profile.replications(), threads)
        .map_err(|e| e.to_string())?
        .to_csv();
    let checks = compare_campaign_csv(&baseline_csv, &fresh, tolerance)?;
    Ok(GateReport {
        entry: name.to_string(),
        checks,
    })
}

fn read_baseline(path: &Path, regenerate_hint: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| {
        format!(
            "missing baseline {}: {e} (regenerate it deliberately with `{regenerate_hint}`)",
            path.display()
        )
    })
}

fn gate_bench_frame_loop(
    tolerance: f64,
    baseline_override: Option<&Path>,
) -> Result<GateReport, String> {
    let baseline_path = baseline_override.map(Path::to_path_buf).unwrap_or_else(|| {
        output_dir().join(bench_frame_loop_file(
            BenchProfile::Standard,
            BaselineWrite::Allowed,
        ))
    });
    let text = read_baseline(
        &baseline_path,
        "campaign run bench_frame_loop --profile standard",
    )?;
    let baseline =
        parse_bench_baseline(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?;
    if baseline.profile != BenchProfile::Standard.label() {
        return Err(format!(
            "{}: baseline records profile \"{}\" but the committed baseline must be a \
             standard-profile record — it was probably overwritten by a quick run; restore \
             it from git or regenerate it deliberately with \
             `campaign run bench_frame_loop --profile standard`",
            baseline_path.display(),
            baseline.profile
        ));
    }

    println!(
        "gate bench_frame_loop: fresh measurement of the standard reference scenario \
         ({GATE_FPS_REPS} repetitions per combination) vs {}",
        baseline_path.display()
    );
    // Always measure the scenario the baseline recorded (the standard
    // reference config, ~0.2 s per repetition in release builds): comparing
    // a shorter quick run against a standard baseline would fold the
    // systematic warm-up amortisation difference into the tolerance budget
    // and leave less headroom for real regressions.  `--profile` still
    // selects the run length of sweep-entry gates.
    let config = reference_config(BenchProfile::Standard);
    let mut checks = Vec::new();
    let mut fresh_rows = Vec::new();
    for protocol in BENCH_PROTOCOLS {
        for mode in [ChannelMode::Eager, ChannelMode::Lazy] {
            let baseline_fps = baseline
                .runs
                .iter()
                .find(|r| r.protocol == protocol.label() && r.mode == mode_label(mode))
                .map(|r| r.frames_per_second)
                .ok_or_else(|| {
                    format!(
                        "baseline has no run for {}/{}",
                        protocol.label(),
                        mode_label(mode)
                    )
                })?;
            let m = measure(&config, protocol, mode, GATE_FPS_REPS);
            // The baseline records best-of-reps fps, so compare best against
            // best; the CI half-width of the per-repetition samples is
            // credited on top so a noisy machine cannot fail the gate on its
            // own.
            checks.push(check_fps(
                format!(
                    "{}/{} frames_per_second",
                    protocol.label(),
                    mode_label(mode)
                ),
                baseline_fps,
                m.frames_per_second,
                m.fps.ci95_half_width(),
                tolerance,
            ));
            fresh_rows.push(format!(
                concat!(
                    "    {{\"protocol\": \"{}\", \"mode\": \"{}\", \"reps\": {}, ",
                    "\"fps_best\": {:.1}, \"fps_mean\": {:.1}, \"fps_ci95\": {:.1}, ",
                    "\"baseline_fps\": {:.1}, \"passed\": {}}}"
                ),
                protocol.label(),
                mode_label(mode),
                m.reps,
                m.frames_per_second,
                m.fps.mean(),
                m.fps.ci95_half_width(),
                baseline_fps,
                checks.last().map(|c| c.passed).unwrap_or(false)
            ));
        }
    }
    let report = GateReport {
        entry: "bench_frame_loop".into(),
        checks,
    };
    // A machine-readable record for CI artifacts; deliberately a different
    // path and schema than the committed baseline, which the gate never
    // touches.
    let record = format!(
        "{{\n  \"schema\": \"charisma.bench_gate.v1\",\n  \"profile\": \"{}\",\n  \
         \"tolerance\": {tolerance},\n  \"passed\": {},\n  \"checks\": [\n{}\n  ]\n}}\n",
        BenchProfile::Standard.label(),
        report.passed(),
        fresh_rows.join(",\n"),
    );
    write_output("GATE_frame_loop.json", &record).map_err(|e| e.to_string())?;
    Ok(report)
}

/// How one entry fared in a [`run_gate_all`] sweep.
#[derive(Debug)]
pub enum GateOutcome {
    /// The entry was gated and every check passed.
    Pass(GateReport),
    /// The entry was gated and at least one check failed.
    Fail(GateReport),
    /// The entry was not gateable here (no baseline, bespoke artifact,
    /// non-uniform CSV schema); carries the reason.
    Skipped(String),
    /// Gating was attempted but hit an infrastructure error.
    Error(String),
}

impl GateOutcome {
    /// One-word status for the summary table.
    pub fn status(&self) -> &'static str {
        match self {
            GateOutcome::Pass(_) => "PASS",
            GateOutcome::Fail(_) => "FAIL",
            GateOutcome::Skipped(_) => "skip",
            GateOutcome::Error(_) => "ERROR",
        }
    }
}

/// Gates every registry entry that has a committed baseline in `results/`:
/// `bench_frame_loop` against its committed perf record, and every sweep
/// campaign whose primary CSV (in the uniform sweep schema) is present.
/// Entries without a baseline, bespoke artifacts and non-uniform derived
/// tables are reported as skipped, with the reason.
pub fn run_gate_all(
    profile: BenchProfile,
    threads: usize,
    tolerance: f64,
) -> Vec<(&'static str, GateOutcome)> {
    let mut outcomes = Vec::new();
    for entry in registry::entries() {
        let name = entry.name;
        let gateable_kind = name == "bench_frame_loop"
            || registry::build_campaign(name, BenchProfile::Quick).is_some();
        if !gateable_kind {
            outcomes.push((
                name,
                GateOutcome::Skipped("bespoke artifact (not gateable)".into()),
            ));
            continue;
        }
        let baseline = default_baseline_file(name, profile).expect("known entry");
        let text = match std::fs::read_to_string(&baseline) {
            Ok(text) => text,
            Err(_) => {
                outcomes.push((
                    name,
                    GateOutcome::Skipped(format!("no committed baseline ({})", baseline.display())),
                ));
                continue;
            }
        };
        // Derived tables (capacity_1pct.csv, qos_capacity.csv) are sweep
        // entries whose primary output is not the uniform row schema the
        // comparator understands; their underlying campaigns are covered by
        // the fig11/fig12-shaped entries anyway.
        if name != "bench_frame_loop"
            && text.lines().next().unwrap_or_default() != CampaignRun::CSV_HEADER
        {
            outcomes.push((
                name,
                GateOutcome::Skipped(
                    "baseline is a derived table, not the uniform sweep CSV".into(),
                ),
            ));
            continue;
        }
        let outcome = match run_gate(name, profile, threads, tolerance, None) {
            Ok(report) if report.passed() => GateOutcome::Pass(report),
            Ok(report) => GateOutcome::Fail(report),
            Err(e) => GateOutcome::Error(e),
        };
        outcomes.push((name, outcome));
    }
    outcomes
}

/// The gate's target for `name` at `profile`: what baseline file it
/// compares against.
///
/// Sweep grids, frame budgets and replication policies all depend on the
/// profile, so a fresh quick run can never be compared against a
/// standard-profile CSV — the row sets differ by construction.  The
/// committed baselines therefore live in per-profile trees: the canonical
/// standard-profile CSVs directly under `results/`, and a quick-profile
/// tree under `results/quick/` for the CI gate (regenerated together; see
/// the handbook).  The frame-loop perf baseline is profile-independent
/// here because the bench gate always measures the standard reference
/// scenario regardless of `--profile`.
pub fn default_baseline_file(name: &str, profile: BenchProfile) -> Option<PathBuf> {
    if name == "bench_frame_loop" {
        return Some(output_dir().join(bench_frame_loop_file(
            BenchProfile::Standard,
            BaselineWrite::Allowed,
        )));
    }
    let dir = match profile {
        BenchProfile::Quick => output_dir().join("quick"),
        _ => output_dir(),
    };
    registry::find(name).map(|e| dir.join(e.outputs[0]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_baseline(profile: &str, charisma_lazy_fps: f64) -> String {
        format!(
            r#"{{
  "schema": "charisma.bench_frame_loop.v1",
  "profile": "{profile}",
  "scenario": {{"num_voice": 60, "num_data": 10}},
  "runs": [
    {{"protocol": "CHARISMA", "mode": "eager", "reps": 3, "frames_per_second": 100000.0}},
    {{"protocol": "CHARISMA", "mode": "lazy", "reps": 3, "frames_per_second": {charisma_lazy_fps}}},
    {{"protocol": "D-TDMA/VR", "mode": "eager", "reps": 3, "frames_per_second": 110000.0}},
    {{"protocol": "D-TDMA/VR", "mode": "lazy", "reps": 3, "frames_per_second": 450000.0}}
  ]
}}
"#
        )
    }

    #[test]
    fn baseline_parses_and_rejects_wrong_schemas() {
        let ok = parse_bench_baseline(&synthetic_baseline("standard", 300000.0)).unwrap();
        assert_eq!(ok.profile, "standard");
        assert_eq!(ok.runs.len(), 4);
        assert_eq!(ok.runs[1].frames_per_second, 300000.0);

        assert!(parse_bench_baseline("not json").is_err());
        let wrong_schema = synthetic_baseline("standard", 1.0)
            .replace("charisma.bench_frame_loop.v1", "charisma.other.v9");
        let e = parse_bench_baseline(&wrong_schema).unwrap_err();
        assert!(e.contains("schema"), "{e}");
        let no_runs = r#"{"schema": "charisma.bench_frame_loop.v1", "profile": "standard",
                          "runs": []}"#;
        assert!(parse_bench_baseline(no_runs).is_err());
    }

    #[test]
    fn fps_check_tolerance_edge() {
        // Exactly at the 30 % floor: passes.
        let edge = check_fps("m", 100_000.0, 70_000.0, 0.0, 0.30);
        assert!(edge.passed, "{edge}");
        // Just below without CI slack: fails.
        let below = check_fps("m", 100_000.0, 69_999.0, 0.0, 0.30);
        assert!(!below.passed, "{below}");
        // The same point passes once the CI half-width covers the gap —
        // noise alone cannot fail the gate.
        let noisy = check_fps("m", 100_000.0, 69_999.0, 5_000.0, 0.30);
        assert!(noisy.passed, "{noisy}");
        // A faster fresh run is never a failure.
        assert!(check_fps("m", 100_000.0, 250_000.0, 0.0, 0.30).passed);
    }

    #[test]
    fn gate_errors_on_a_missing_baseline() {
        let missing = Path::new("/nonexistent/definitely/missing/BENCH.json");
        let e = run_gate(
            "bench_frame_loop",
            BenchProfile::Quick,
            1,
            DEFAULT_TOLERANCE,
            Some(missing),
        )
        .unwrap_err();
        assert!(e.contains("missing baseline"), "{e}");
        assert!(e.contains("--profile standard"), "{e}");
    }

    #[test]
    fn gate_refuses_a_non_standard_profile_baseline() {
        let dir = std::env::temp_dir().join(format!(
            "charisma-gate-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_frame_loop.json");
        std::fs::write(&path, synthetic_baseline("quick", 300000.0)).unwrap();
        let e = run_gate(
            "bench_frame_loop",
            BenchProfile::Quick,
            1,
            DEFAULT_TOLERANCE,
            Some(&path),
        )
        .unwrap_err();
        assert!(e.contains("profile \"quick\""), "{e}");
        assert!(e.contains("standard-profile"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gate_rejects_nonsense_tolerances_and_unknown_entries() {
        for bad in [-0.1, 1.0, f64::NAN, f64::INFINITY] {
            assert!(run_gate("bench_frame_loop", BenchProfile::Quick, 1, bad, None).is_err());
        }
        let e = run_gate("fig99", BenchProfile::Quick, 1, 0.3, None).unwrap_err();
        assert!(e.contains("fig99"), "{e}");
        let e = run_gate("table1", BenchProfile::Quick, 1, 0.3, None).unwrap_err();
        assert!(e.contains("bespoke"), "{e}");
    }

    fn sweep_csv(rows: &[&str]) -> String {
        let mut out = String::from(CampaignRun::CSV_HEADER);
        out.push('\n');
        for r in rows {
            out.push_str(r);
            out.push('\n');
        }
        out
    }

    #[test]
    fn sweep_comparison_passes_on_identical_csv_and_fails_on_perturbation() {
        let base = sweep_csv(&[
            "fig11,CHARISMA,false,20,0,50.00,20,3,0.001000,0.000200,0.000000,0.000000,0.000000,0.000000",
            "fig11,CHARISMA,false,60,0,50.00,60,3,0.012000,0.001000,0.000000,0.000000,0.000000,0.000000",
        ]);
        let same = compare_campaign_csv(&base, &base, 0.30).unwrap();
        assert_eq!(same.len(), 3);
        assert!(same.iter().all(|c| c.passed), "{same:?}");

        // Perturb the second row's loss far beyond tolerance + both CIs.
        let perturbed = base.replace("0.012000,0.001000", "0.050000,0.001000");
        let checks = compare_campaign_csv(&base, &perturbed, 0.30).unwrap();
        assert!(!checks[0].passed, "voice loss must fail: {checks:?}");
        assert!(checks[1].passed && checks[2].passed);
        assert!(checks[0].metric.contains("fig11,CHARISMA,false,60"));

        // A deviation inside mean-tolerance + CI slack passes.
        let wiggled = base.replace("0.012000,0.001000", "0.014000,0.001000");
        let checks = compare_campaign_csv(&base, &wiggled, 0.30).unwrap();
        assert!(checks[0].passed, "{checks:?}");
    }

    #[test]
    fn sweep_comparison_errors_on_row_set_mismatch_and_bad_schema() {
        let base =
            sweep_csv(&["fig11,CHARISMA,false,20,0,50.00,20,3,0.001,0.0002,0.0,0.0,0.0,0.0"]);
        let other =
            sweep_csv(&["fig11,CHARISMA,false,40,0,50.00,40,3,0.001,0.0002,0.0,0.0,0.0,0.0"]);
        let e = compare_campaign_csv(&base, &other, 0.3).unwrap_err();
        assert!(e.contains("row sets differ"), "{e}");

        let stale = "scenario,protocol,old_columns\nx,y,z\n";
        let e = compare_campaign_csv(stale, &base, 0.3).unwrap_err();
        assert!(e.contains("schema"), "{e}");
    }
}
