//! Fig. 13(a)–(f) — data access delay vs data users.
//!
//! Thin wrapper over the scenario-campaign registry: equivalent to
//! `campaign run fig13` (same tables, same `results/` artifacts, same
//! `results/MANIFEST.json` provenance record).  See EXPERIMENTS.md.

use charisma_bench::{registry, BenchProfile};

fn main() {
    let profile = BenchProfile::from_env();
    if let Err(e) = registry::run_and_record(&["fig13".to_string()], profile, 0) {
        eprintln!("fig13: {e}");
        std::process::exit(1);
    }
}
