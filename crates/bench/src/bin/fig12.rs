//! Fig. 12(a)–(f) — average data throughput (packets per frame delivered at
//! the base station) versus the number of data users, for N_v ∈ {0, 10, 20}
//! voice users, with and without the request queue, for all six protocols.

use charisma::{data_load_sweep, run_sweep};
use charisma_bench::{
    all_protocols, base_config, fig12_data_counts, figure_panels, format_header, format_row,
    write_csv, BenchProfile,
};

fn main() {
    let profile = BenchProfile::from_env();
    let base = base_config(profile);
    let data_counts = fig12_data_counts(profile);
    let mut csv_rows = Vec::new();

    println!("Fig. 12 — data throughput (packets/frame) vs number of data users");
    for (panel_idx, (num_voice, queue, label)) in figure_panels().into_iter().enumerate() {
        let panel = (b'a' + panel_idx as u8) as char;
        println!();
        println!("--- Fig. 12({panel}) Nv = {num_voice}, {label} ---");
        println!("{}", format_header("protocol", &data_counts));

        for protocol in all_protocols() {
            if queue && !protocol.supports_request_queue() {
                continue;
            }
            let points = data_load_sweep(&base, protocol, &data_counts, num_voice, queue);
            let results = run_sweep(points, 0);
            let throughputs: Vec<f64> = results
                .iter()
                .map(|r| r.report.data_throughput_per_frame())
                .collect();
            println!(
                "{}",
                format_row(protocol.label(), &throughputs, |v| format!("{v:.3}"))
            );
            for r in &results {
                csv_rows.push(format!(
                    "12{panel},{},{},{},{},{:.6}",
                    protocol.label(),
                    num_voice,
                    queue,
                    r.load,
                    r.report.data_throughput_per_frame()
                ));
            }
        }
    }

    write_csv(
        "fig12_data_throughput.csv",
        "panel,protocol,num_voice,request_queue,num_data,data_throughput_per_frame",
        &csv_rows,
    );
    println!();
    println!("Expected shape: throughput grows with offered load until each protocol's capacity,");
    println!("then saturates; CHARISMA saturates highest, followed by D-TDMA/VR, then DRMA/RAMA,");
    println!("then D-TDMA/FR; RMAV saturates almost immediately.");
}
