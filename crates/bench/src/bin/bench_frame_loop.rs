//! Frame-loop throughput benchmark: the perf trajectory every PR is measured
//! against.
//!
//! Runs the reference scenario (60 voice + 10 data terminals, 20 000 frames)
//! under CHARISMA and D-TDMA/VR, once with the eager pre-optimisation channel
//! hot path ([`ChannelMode::Eager`]: every terminal's fading stepped every
//! frame with per-step coefficient recomputation, SNR recomputed at every
//! query) and once with the lazy default ([`ChannelMode::Lazy`]: coalesced
//! on-demand stepping, memoised step coefficients, per-frame SNR cache), and
//! reports wall-clock frames per second for each combination.
//!
//! Results are printed as a table and written to
//! `results/BENCH_frame_loop.json` (schema `charisma.bench_frame_loop.v1`);
//! the checked-in copy records the current machine's before/after numbers so
//! regressions show up as a broken trajectory in review.  Set
//! `CHARISMA_BENCH_PROFILE=quick` (as CI does) for a short smoke run.

use charisma::radio::ChannelMode;
use charisma::{ProtocolKind, Scenario, SimConfig};
use charisma_bench::{write_output, BenchProfile};
use std::time::Instant;

/// One measured (protocol, channel mode) combination.
struct Measurement {
    protocol: ProtocolKind,
    mode: ChannelMode,
    reps: u32,
    best_elapsed_secs: f64,
    frames_per_second: f64,
    voice_loss_rate: f64,
}

fn mode_label(mode: ChannelMode) -> &'static str {
    match mode {
        ChannelMode::Eager => "eager",
        ChannelMode::Lazy => "lazy",
    }
}

fn reference_config(profile: BenchProfile) -> SimConfig {
    let mut cfg = SimConfig::default_paper();
    cfg.num_voice = 60;
    cfg.num_data = 10;
    if profile == BenchProfile::Quick {
        cfg.warmup_frames = 500;
        cfg.measured_frames = 1_500;
    } else {
        cfg.warmup_frames = 2_000;
        cfg.measured_frames = 18_000;
    }
    cfg
}

fn measure(base: &SimConfig, protocol: ProtocolKind, mode: ChannelMode, reps: u32) -> Measurement {
    let mut cfg = base.clone();
    cfg.channel_mode = mode;
    let scenario = Scenario::new(cfg);
    let total_frames = scenario.config().total_frames();
    let mut best = f64::INFINITY;
    let mut loss = 0.0;
    for _ in 0..reps {
        let start = Instant::now();
        let report = scenario.run(protocol);
        let elapsed = start.elapsed().as_secs_f64();
        best = best.min(elapsed);
        loss = report.voice_loss_rate();
    }
    Measurement {
        protocol,
        mode,
        reps,
        best_elapsed_secs: best,
        frames_per_second: total_frames as f64 / best,
        voice_loss_rate: loss,
    }
}

fn main() {
    let profile = BenchProfile::from_env();
    let config = reference_config(profile);
    let reps = if profile == BenchProfile::Quick { 1 } else { 3 };
    let protocols = [ProtocolKind::Charisma, ProtocolKind::DTdmaVr];
    let profile_label = match profile {
        BenchProfile::Quick => "quick",
        BenchProfile::Standard => "standard",
        BenchProfile::Full => "full",
    };

    println!(
        "Frame-loop throughput: {} voice + {} data terminals, {} frames, best of {reps}",
        config.num_voice,
        config.num_data,
        config.total_frames()
    );
    println!(
        "{:<12}{:>8}{:>14}{:>16}{:>12}",
        "protocol", "mode", "elapsed [s]", "frames/s", "Ploss"
    );

    let mut runs: Vec<Measurement> = Vec::new();
    for protocol in protocols {
        for mode in [ChannelMode::Eager, ChannelMode::Lazy] {
            let m = measure(&config, protocol, mode, reps);
            println!(
                "{:<12}{:>8}{:>14.3}{:>16.0}{:>12.4}",
                m.protocol.label(),
                mode_label(m.mode),
                m.best_elapsed_secs,
                m.frames_per_second,
                m.voice_loss_rate
            );
            runs.push(m);
        }
    }

    let mut run_objects: Vec<String> = Vec::new();
    for m in &runs {
        run_objects.push(format!(
            concat!(
                "    {{\"protocol\": \"{}\", \"mode\": \"{}\", \"reps\": {}, ",
                "\"best_elapsed_secs\": {:.6}, \"frames_per_second\": {:.1}, ",
                "\"voice_loss_rate\": {:.6}}}"
            ),
            m.protocol.label(),
            mode_label(m.mode),
            m.reps,
            m.best_elapsed_secs,
            m.frames_per_second,
            m.voice_loss_rate
        ));
    }

    let mut speedups: Vec<String> = Vec::new();
    println!();
    for protocol in protocols {
        let fps_of = |mode: ChannelMode| {
            runs.iter()
                .find(|m| m.protocol == protocol && m.mode == mode)
                .map(|m| m.frames_per_second)
                .unwrap_or(f64::NAN)
        };
        let eager = fps_of(ChannelMode::Eager);
        let lazy = fps_of(ChannelMode::Lazy);
        let speedup = lazy / eager;
        println!("{:<12} lazy/eager speedup: {speedup:.2}x", protocol.label());
        speedups.push(format!(
            concat!(
                "    {{\"protocol\": \"{}\", \"eager_fps\": {:.1}, ",
                "\"lazy_fps\": {:.1}, \"lazy_over_eager\": {:.3}}}"
            ),
            protocol.label(),
            eager,
            lazy,
            speedup
        ));
    }

    let json = format!(
        "{{\n\
         \x20 \"schema\": \"charisma.bench_frame_loop.v1\",\n\
         \x20 \"profile\": \"{profile_label}\",\n\
         \x20 \"scenario\": {{\n\
         \x20   \"num_voice\": {},\n\
         \x20   \"num_data\": {},\n\
         \x20   \"warmup_frames\": {},\n\
         \x20   \"measured_frames\": {},\n\
         \x20   \"total_frames\": {},\n\
         \x20   \"seed\": {}\n\
         \x20 }},\n\
         \x20 \"runs\": [\n{}\n  ],\n\
         \x20 \"speedup\": [\n{}\n  ]\n\
         }}\n",
        config.num_voice,
        config.num_data,
        config.warmup_frames,
        config.measured_frames,
        config.total_frames(),
        config.seed,
        run_objects.join(",\n"),
        speedups.join(",\n"),
    );
    write_output("BENCH_frame_loop.json", &json).expect("failed to persist the benchmark record");
}
