//! Frame-loop throughput benchmark (the perf trajectory).
//!
//! Thin wrapper over the scenario-campaign registry: equivalent to
//! `campaign run bench_frame_loop` (same tables, same `results/` artifacts, same
//! `results/MANIFEST.json` provenance record).  See EXPERIMENTS.md.

use charisma_bench::{registry, BenchProfile};

fn main() {
    let profile = BenchProfile::from_env();
    if let Err(e) = registry::run_and_record(&["bench_frame_loop".to_string()], profile, 0) {
        eprintln!("bench_frame_loop: {e}");
        std::process::exit(1);
    }
}
