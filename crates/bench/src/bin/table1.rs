//! Table 1 — simulation parameters.
//!
//! Thin wrapper over the scenario-campaign registry: equivalent to
//! `campaign run table1` (same tables, same `results/` artifacts, same
//! `results/MANIFEST.json` provenance record).  See EXPERIMENTS.md.

use charisma_bench::{registry, BenchProfile};

fn main() {
    let profile = BenchProfile::from_env();
    if let Err(e) = registry::run_and_record(&["table1".to_string()], profile, 0) {
        eprintln!("table1: {e}");
        std::process::exit(1);
    }
}
