//! Table 1 — simulation parameters.
//!
//! Prints every parameter of the common simulation platform, in the spirit of
//! the paper's Table 1, together with the values this reproduction derived
//! from the constraints stated in the text (see DESIGN.md).

use charisma_bench::{base_config, BenchProfile};

fn main() {
    let cfg = base_config(BenchProfile::from_env());
    let frame = &cfg.frame;

    println!("Table 1 — simulation parameters (reproduction values)");
    println!("{:-<72}", "");
    let mut rows: Vec<(String, String)> = Vec::new();
    let mut add = |k: &str, v: String| rows.push((k.to_string(), v));

    add("transmission bandwidth", "320 kHz (paper)".into());
    add("speech source rate", "8 kbps (paper)".into());
    add("frame duration", format!("{}", frame.frame_duration));
    add(
        "information slots per frame (N_i)",
        frame.info_slots.to_string(),
    );
    add(
        "request minislots per frame (N_r)",
        frame.request_slots.to_string(),
    );
    add(
        "CSI pilot/poll slots per frame (N_b)",
        frame.pilot_slots.to_string(),
    );
    add(
        "sub-slot scheduling granularity",
        format!("1/{}", frame.subslots_per_slot),
    );
    add(
        "RAMA auction slots per frame (N_a)",
        frame.rama_auction_slots.to_string(),
    );
    add(
        "DRMA information slots per frame (N_k)",
        frame.drma_info_slots.to_string(),
    );
    add(
        "DRMA minislots per converted slot (N_x)",
        frame.drma_minislots.to_string(),
    );
    add(
        "RMAV information slots per frame",
        frame.rmav_info_slots.to_string(),
    );
    add(
        "RMAV maximum data grant (P_max)",
        frame.rmav_max_data_slots.to_string(),
    );
    add(
        "mean talkspurt duration (t_t)",
        format!("{}", cfg.voice_source.mean_talkspurt),
    );
    add(
        "mean silence duration (t_s)",
        format!("{}", cfg.voice_source.mean_silence),
    );
    add(
        "voice activity factor",
        format!("{:.3}", cfg.voice_source.activity_factor()),
    );
    add(
        "voice packet period",
        format!("{}", cfg.voice_source.packet_period),
    );
    add(
        "voice packet deadline",
        format!("{}", cfg.voice_source.deadline),
    );
    add(
        "mean data burst inter-arrival",
        format!("{}", cfg.data_source.mean_interarrival),
    );
    add(
        "mean data burst size",
        format!("{:.0} packets", cfg.data_source.mean_burst_packets),
    );
    add(
        "voice permission probability (p_v)",
        format!("{:.2}", cfg.contention.pv),
    );
    add(
        "data permission probability (p_d)",
        format!("{:.2}", cfg.contention.pd),
    );
    add(
        "mean received SNR",
        format!("{:.1} dB", cfg.channel.mean_snr_db),
    );
    add(
        "shadowing std deviation",
        format!("{:.1} dB", cfg.channel.shadowing.std_db),
    );
    add(
        "shadowing correlation time",
        format!("{}", cfg.channel.shadowing.correlation_time),
    );
    add("terminal speed profile", format!("{:?}", cfg.speed));
    add(
        "ABICM modes (normalised throughput)",
        "outage, 1/2, 1, 2, 3, 4, 5".to_string(),
    );
    add(
        "ABICM adaptation thresholds",
        format!("{:?} dB", cfg.adaptive_phy.thresholds.boundaries),
    );
    add(
        "ABICM in-range packet error rate",
        format!("{:.0e}", cfg.adaptive_phy.in_range_per),
    );
    add(
        "fixed-PHY design threshold",
        format!("{:.1} dB", cfg.fixed_phy.design_threshold_db),
    );
    add(
        "CSI estimation error std",
        format!("{:.1} dB", cfg.csi.error_std_db),
    );
    add("CSI estimate validity", format!("{}", cfg.csi.validity));
    add(
        "request queue capacity",
        cfg.request_queue_capacity.to_string(),
    );
    add(
        "warm-up / measured frames",
        format!("{} / {}", cfg.warmup_frames, cfg.measured_frames),
    );
    add("master seed", format!("0x{:X}", cfg.seed));

    let csv_rows: Vec<String> = rows.iter().map(|(k, v)| format!("{k},{v}")).collect();
    for (k, v) in &rows {
        println!("{k:<42} {v}");
    }
    charisma_bench::write_csv("table1_parameters.csv", "parameter,value", &csv_rows);
}
