//! Fig. 11(a)–(f) — voice packet dropping/loss rate versus the number of
//! voice users, for N_d ∈ {0, 10, 20} data users, with and without the
//! base-station request queue, for all six protocols.
//!
//! Also prints the §5.1 capacity at the 1 % loss threshold for each curve.

use charisma::metrics::capacity_at_threshold;
use charisma::{run_sweep, voice_load_sweep};
use charisma_bench::{
    all_protocols, base_config, fig11_voice_counts, figure_panels, format_header, format_row,
    write_csv, BenchProfile,
};

fn main() {
    let profile = BenchProfile::from_env();
    let base = base_config(profile);
    let voice_counts = fig11_voice_counts(profile);
    let mut csv_rows = Vec::new();

    println!("Fig. 11 — voice packet loss rate vs number of voice users");
    for (panel_idx, (num_data, queue, label)) in figure_panels().into_iter().enumerate() {
        let panel = (b'a' + panel_idx as u8) as char;
        println!();
        println!("--- Fig. 11({panel}) Nd = {num_data}, {label} ---");
        println!(
            "{}{:>12}",
            format_header("protocol", &voice_counts),
            "cap@1%"
        );

        for protocol in all_protocols() {
            if queue && !protocol.supports_request_queue() {
                continue;
            }
            let points = voice_load_sweep(&base, protocol, &voice_counts, num_data, queue);
            let results = run_sweep(points, 0);
            let losses: Vec<f64> = results.iter().map(|r| r.report.voice_loss_rate()).collect();
            let curve: Vec<(f64, f64)> = results
                .iter()
                .map(|r| (r.load, r.report.voice_loss_rate()))
                .collect();
            let capacity = capacity_at_threshold(&curve, 0.01);

            let row = format_row(protocol.label(), &losses, |v| format!("{:.2}%", v * 100.0));
            match capacity {
                Some(c) => println!("{row}{c:>11.0}"),
                None => println!("{row}{:>11}", format!("<{}", voice_counts[0])),
            }
            for r in &results {
                csv_rows.push(format!(
                    "11{panel},{},{},{},{},{:.6}",
                    protocol.label(),
                    num_data,
                    queue,
                    r.load,
                    r.report.voice_loss_rate()
                ));
            }
        }
    }

    write_csv(
        "fig11_voice_loss.csv",
        "panel,protocol,num_data,request_queue,num_voice,voice_loss_rate",
        &csv_rows,
    );
    println!();
    println!("Expected shape: CHARISMA lowest everywhere; RMAV collapses immediately; RAMA and");
    println!("DRMA degrade gracefully at overload; data users shrink every protocol's capacity.");
}
