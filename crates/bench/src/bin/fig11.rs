//! Fig. 11(a)–(f) — voice packet loss vs voice users.
//!
//! Thin wrapper over the scenario-campaign registry: equivalent to
//! `campaign run fig11` (same tables, same `results/` artifacts, same
//! `results/MANIFEST.json` provenance record).  See EXPERIMENTS.md.

use charisma_bench::{registry, BenchProfile};

fn main() {
    let profile = BenchProfile::from_env();
    if let Err(e) = registry::run_and_record(&["fig11".to_string()], profile, 0) {
        eprintln!("fig11: {e}");
        std::process::exit(1);
    }
}
