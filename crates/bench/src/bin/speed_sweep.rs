//! §5.3.3 — CHARISMA sensitivity to terminal speed.
//!
//! Thin wrapper over the scenario-campaign registry: equivalent to
//! `campaign run speed_sweep` (same tables, same `results/` artifacts, same
//! `results/MANIFEST.json` provenance record).  See EXPERIMENTS.md.

use charisma_bench::{registry, BenchProfile};

fn main() {
    let profile = BenchProfile::from_env();
    if let Err(e) = registry::run_and_record(&["speed_sweep".to_string()], profile, 0) {
        eprintln!("speed_sweep: {e}");
        std::process::exit(1);
    }
}
