//! §5.3.3 — sensitivity of CHARISMA to the terminal speed (10–80 km/h).
//!
//! The paper reports that CHARISMA's performance is unchanged from 10 to
//! 50 km/h and degrades by less than ~5 % at 80 km/h, because the CSI-refresh
//! mechanism keeps the estimates usable within a frame.

use charisma::radio::SpeedProfile;
use charisma::{ProtocolKind, Scenario};
use charisma_bench::{base_config, write_csv, BenchProfile};

fn main() {
    let profile = BenchProfile::from_env();
    let mut base = base_config(profile);
    base.num_voice = 120;
    base.num_data = 5;
    base.request_queue = true;

    let speeds = [10.0, 20.0, 30.0, 40.0, 50.0, 65.0, 80.0];
    let mut csv_rows = Vec::new();

    println!(
        "CHARISMA vs terminal speed (Nv = {}, Nd = {}, request queue on)",
        base.num_voice, base.num_data
    );
    println!(
        "{:>12} {:>14} {:>18} {:>14} {:>22}",
        "speed (km/h)", "voice loss", "data thpt (p/f)", "data delay (s)", "rel. loss vs 10 km/h"
    );

    let mut reference: Option<f64> = None;
    for &speed in &speeds {
        let mut cfg = base.clone();
        cfg.speed = SpeedProfile::Fixed(speed);
        let report = Scenario::new(cfg).run(ProtocolKind::Charisma);
        let loss = report.voice_loss_rate();
        let reference_loss = *reference.get_or_insert(loss);
        let relative = if reference_loss > 0.0 {
            loss / reference_loss
        } else {
            1.0
        };
        println!(
            "{:>12.0} {:>13.3}% {:>18.3} {:>14.3} {:>21.2}x",
            speed,
            loss * 100.0,
            report.data_throughput_per_frame(),
            report.data_delay_secs(),
            relative
        );
        csv_rows.push(format!(
            "{speed},{:.6},{:.4},{:.4}",
            loss,
            report.data_throughput_per_frame(),
            report.data_delay_secs()
        ));
    }

    write_csv(
        "speed_sweep.csv",
        "speed_kmh,voice_loss_rate,data_throughput,data_delay_s",
        &csv_rows,
    );
    println!();
    println!("Expected: essentially flat up to 50 km/h, only mild degradation at 80 km/h.");
}
