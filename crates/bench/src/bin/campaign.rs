//! The one CLI that drives every experiment: `campaign`.
//!
//! ```text
//! campaign list                               # the registry, one line each
//! campaign describe <name>                    # details + the exact spec JSON
//! campaign run <name>... --profile quick      # run entries, write results/ + MANIFEST.json
//! campaign run all --profile full             # regenerate every artifact
//! campaign gate bench_frame_loop --profile quick  # regression gate vs committed baseline
//! campaign write-handbook                     # refresh EXPERIMENTS.md's generated section
//! ```
//!
//! `run` accepts `--profile quick|standard|full` (default: the strict
//! `CHARISMA_BENCH_PROFILE` parse, `standard` when unset), `--threads N`
//! (default 0: one sweep worker per core) and `--write-handbook` to refresh
//! the handbook after the run.  Sweep runs checkpoint every completed point
//! to `results/.checkpoint/<entry>.jsonl`; an interrupted campaign finishes
//! from where it stopped with `campaign run <name> --resume`, byte-identical
//! to an uninterrupted run.  Every `gate` run extends the append-only ledger
//! `results/BENCH_history.jsonl`, and `campaign trend` reads it back to flag
//! slow drift the per-run tolerance cannot see.  See `EXPERIMENTS.md` for
//! the per-scenario documentation this binary maintains.

use charisma_bench::registry::{self, EntryKind};
use charisma_bench::{checkpoint, gate, trend, BaselineWrite, BenchProfile};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage: campaign <command> [options]

commands:
  list                        list every registered scenario
  describe <name>             show a scenario's details and exact spec JSON
  run <name>... | all         run scenarios (writes results/ + results/MANIFEST.json;
                              sweep progress is checkpointed per point under
                              results/.checkpoint/ — exit 3 means interrupted,
                              finish with `campaign run <name> --resume`)
  gate <name> | all           re-run a scenario and compare against its committed
                              baseline in results/ (exit 0 pass, 1 regression);
                              \"all\" gates every entry with a committed baseline
                              and prints a one-line pass/fail summary table;
                              every gate run appends to results/BENCH_history.jsonl
  trend                       analyse results/BENCH_history.jsonl for slow drift
                              the per-run gate tolerance cannot see (exit 0 healthy
                              or insufficient history, 1 drift detected)
  write-handbook              refresh the generated section of EXPERIMENTS.md

run options:
  --profile quick|standard|full   run length per sweep point
                                  (default: CHARISMA_BENCH_PROFILE, else standard)
  --threads N                     sweep worker threads (default 0 = one per core)
  --resume                        replay completed points from the entry's
                                  checkpoint (refused — exit 2 — if the spec,
                                  profile or git revision changed underneath it)
  --results-dir PATH              write artifacts + checkpoints under PATH
                                  instead of results/
  --write-handbook                also refresh EXPERIMENTS.md after the run
  (CHARISMA_FAULT_POINT=N aborts the run — exit 3 — after N newly completed
   points: the deterministic fault hook the durability tests and the CI resume
   smoke test use)

gate options:
  --profile / --threads           run length / workers of sweep-entry gates;
                                  the bench_frame_loop gate ignores both — it
                                  always re-measures the standard reference
                                  scenario the committed baseline recorded
  --tolerance F                   allowed relative regression (default 0.30);
                                  the 95% CI half-width is always credited on top,
                                  so seed/timing noise alone cannot fail the gate
  --baseline PATH                 compare against PATH instead of the default
                                  committed baseline

trend options:
  --history PATH                  ledger to analyse (default results/BENCH_history.jsonl)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match command.as_str() {
        "list" => list(),
        "describe" => describe(&args[1..]),
        "run" => run(&args[1..]),
        "gate" => run_gate(&args[1..]),
        "trend" => run_trend(&args[1..]),
        "write-handbook" => write_handbook(),
        "-h" | "--help" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("campaign: unknown command \"{other}\"\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn list() -> ExitCode {
    let (name_h, kind_h, output_h, paper_h) = ("name", "kind", "output", "paper artifact");
    println!("{name_h:<18} {kind_h:<10} {output_h:<34} {paper_h}");
    for entry in registry::entries() {
        let kind = match entry.kind {
            EntryKind::Sweep { .. } => "campaign",
            EntryKind::Custom { .. } => "bespoke",
        };
        println!(
            "{:<18} {:<10} {:<34} {}",
            entry.name,
            kind,
            format!("results/{}", entry.outputs[0]),
            entry.paper
        );
    }
    println!();
    println!("profiles (per sweep point):");
    for profile in BenchProfile::ALL {
        println!("  {:<10} {}", profile.label(), profile.describe());
    }
    println!();
    println!(
        "run one with: campaign run <name> --profile quick   (details: campaign describe <name>)"
    );
    ExitCode::SUCCESS
}

fn describe(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        eprintln!("campaign describe: missing scenario name\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let Some(entry) = registry::find(name) else {
        eprintln!(
            "campaign describe: unknown scenario \"{name}\" — registered scenarios: {}",
            registry::names().join(", ")
        );
        return ExitCode::from(2);
    };
    println!("{} — {}", entry.name, entry.title);
    println!("paper artifact: {}", entry.paper);
    println!();
    println!("{}", entry.details);
    println!();
    println!(
        "outputs: {}",
        entry
            .outputs
            .iter()
            .map(|f| format!("results/{f}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("columns: {}", entry.columns);
    println!("runtime: {}", entry.runtime);
    println!("profiles (per sweep point):");
    for profile in BenchProfile::ALL {
        println!("  {:<10} {}", profile.label(), profile.describe());
    }
    match entry.kind {
        EntryKind::Sweep { build, .. } => {
            let campaign = build(BenchProfile::Standard);
            for spec in &campaign.specs {
                if let charisma::RepsSpec::Policy(policy) = spec.replications {
                    println!(
                        "note: spec \"{}\" overrides the profile policy: {}",
                        spec.name,
                        policy.describe()
                    );
                }
            }
            let budget = BenchProfile::Standard.budget();
            let points = campaign.expand(budget).map(|p| p.len()).unwrap_or(0);
            println!("sweep points (standard profile): {points}");
            println!();
            println!("spec (standard-profile grids):");
            println!("{}", campaign.to_json());
        }
        EntryKind::Custom { .. } => {
            println!("kind: bespoke generator (crates/bench/src/artifacts.rs)");
        }
    }
    ExitCode::SUCCESS
}

fn run(args: &[String]) -> ExitCode {
    let mut names: Vec<String> = Vec::new();
    let mut profile: Option<BenchProfile> = None;
    let mut threads = 0usize;
    let mut refresh_handbook = false;
    let mut resume = false;
    let mut results_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--resume" => {
                resume = true;
                i += 1;
            }
            "--results-dir" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("campaign run: --results-dir needs a path");
                    return ExitCode::from(2);
                };
                results_dir = Some(PathBuf::from(value));
                i += 2;
            }
            "--profile" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("campaign run: --profile needs a value (quick|standard|full)");
                    return ExitCode::from(2);
                };
                match BenchProfile::parse(value) {
                    Ok(p) => profile = Some(p),
                    Err(e) => {
                        eprintln!("campaign run: {e}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--threads" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("campaign run: --threads needs a number");
                    return ExitCode::from(2);
                };
                match value.parse::<usize>() {
                    Ok(n) => threads = n,
                    Err(_) => {
                        eprintln!("campaign run: invalid thread count \"{value}\"");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--write-handbook" => {
                refresh_handbook = true;
                i += 1;
            }
            flag if flag.starts_with('-') => {
                eprintln!("campaign run: unknown option \"{flag}\"\n\n{USAGE}");
                return ExitCode::from(2);
            }
            name => {
                names.push(name.to_string());
                i += 1;
            }
        }
    }
    if names.is_empty() {
        eprintln!("campaign run: no scenarios given (try \"all\" or `campaign list`)");
        return ExitCode::from(2);
    }
    // Bulk runs route committed baselines (the frame-loop perf record) to
    // sidecar files: only an explicitly named run may refresh them.
    let mut baseline = BaselineWrite::Allowed;
    if names.iter().any(|n| n == "all") {
        if names.len() > 1 {
            eprintln!("campaign run: \"all\" cannot be combined with explicit names");
            return ExitCode::from(2);
        }
        names = registry::names().iter().map(|s| s.to_string()).collect();
        baseline = BaselineWrite::Sidecar;
    }
    let profile = profile.unwrap_or_else(BenchProfile::from_env);
    for name in &names {
        if registry::find(name).is_none() {
            eprintln!(
                "campaign run: unknown scenario \"{name}\" — registered scenarios: {}",
                registry::names().join(", ")
            );
            return ExitCode::from(2);
        }
    }

    let mut opts =
        checkpoint::DurableOptions::new(results_dir.unwrap_or_else(charisma_bench::output_dir));
    opts.resume = resume;
    opts.fault_point = match checkpoint::fault_point_from_env() {
        Ok(fault) => fault,
        Err(e) => {
            eprintln!("campaign run: {e}");
            return ExitCode::from(2);
        }
    };

    match checkpoint::run_and_record_durable(&names, profile, threads, baseline, &opts) {
        Ok(reports) => {
            let points: usize = reports.iter().map(|r| r.points).sum();
            println!(
                "campaign: {} scenario(s), {} sweep points, profile {} — manifest in {}",
                reports.len(),
                points,
                profile.label(),
                opts.results_dir.join("MANIFEST.json").display()
            );
            if refresh_handbook {
                return write_handbook();
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("campaign run: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn run_gate(args: &[String]) -> ExitCode {
    let mut name: Option<String> = None;
    let mut profile: Option<BenchProfile> = None;
    let mut threads = 0usize;
    let mut tolerance = gate::DEFAULT_TOLERANCE;
    let mut baseline: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--profile" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("campaign gate: --profile needs a value (quick|standard|full)");
                    return ExitCode::from(2);
                };
                match BenchProfile::parse(value) {
                    Ok(p) => profile = Some(p),
                    Err(e) => {
                        eprintln!("campaign gate: {e}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--threads" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("campaign gate: --threads needs a number");
                    return ExitCode::from(2);
                };
                match value.parse::<usize>() {
                    Ok(n) => threads = n,
                    Err(_) => {
                        eprintln!("campaign gate: invalid thread count \"{value}\"");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--tolerance" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("campaign gate: --tolerance needs a fraction (e.g. 0.30)");
                    return ExitCode::from(2);
                };
                match value.parse::<f64>() {
                    Ok(t) => tolerance = t,
                    Err(_) => {
                        eprintln!("campaign gate: invalid tolerance \"{value}\"");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--baseline" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("campaign gate: --baseline needs a path");
                    return ExitCode::from(2);
                };
                baseline = Some(PathBuf::from(value));
                i += 2;
            }
            flag if flag.starts_with('-') => {
                eprintln!("campaign gate: unknown option \"{flag}\"\n\n{USAGE}");
                return ExitCode::from(2);
            }
            value => {
                if name.is_some() {
                    eprintln!("campaign gate: exactly one scenario name expected");
                    return ExitCode::from(2);
                }
                name = Some(value.to_string());
                i += 1;
            }
        }
    }
    let Some(name) = name else {
        eprintln!("campaign gate: missing scenario name (e.g. bench_frame_loop, all)\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let profile = profile.unwrap_or_else(BenchProfile::from_env);
    if name == "all" {
        if baseline.is_some() {
            eprintln!("campaign gate: --baseline cannot be combined with \"all\"");
            return ExitCode::from(2);
        }
        return gate_all(profile, threads, tolerance);
    }
    match gate::run_gate(&name, profile, threads, tolerance, baseline.as_deref()) {
        Ok(report) => {
            println!();
            for check in &report.checks {
                println!("{check}");
            }
            println!();
            trend::record_gate_outcomes(
                &[(&report, report.passed())],
                profile,
                tolerance,
                &trend::history_path(),
            );
            if report.passed() {
                println!(
                    "gate {name}: PASS ({} checks within tolerance {tolerance})",
                    report.checks.len()
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "gate {name}: FAIL ({}/{} checks out of tolerance {tolerance})",
                    report.failures(),
                    report.checks.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("campaign gate: {e}");
            ExitCode::from(2)
        }
    }
}

fn gate_all(profile: BenchProfile, threads: usize, tolerance: f64) -> ExitCode {
    let outcomes = gate::run_gate_all(profile, threads, tolerance);
    trend::record_gate_all_outcomes(&outcomes, profile, tolerance, &trend::history_path());
    println!();
    println!(
        "gate all — summary [{} profile, tolerance {tolerance}]",
        profile.label()
    );
    println!("{:<20} {:<6} detail", "entry", "status");
    let (mut failures, mut errors, mut gated) = (0usize, 0usize, 0usize);
    for (name, outcome) in &outcomes {
        let detail = match outcome {
            gate::GateOutcome::Pass(report) => {
                gated += 1;
                format!("{} checks within tolerance", report.checks.len())
            }
            gate::GateOutcome::Fail(report) => {
                gated += 1;
                failures += 1;
                format!(
                    "{}/{} checks out of tolerance",
                    report.failures(),
                    report.checks.len()
                )
            }
            gate::GateOutcome::Skipped(reason) => reason.clone(),
            gate::GateOutcome::Error(e) => {
                errors += 1;
                e.clone()
            }
        };
        println!("{name:<20} {:<6} {detail}", outcome.status());
    }
    println!();
    let skipped = outcomes.len() - gated - errors;
    let verdict = if failures > 0 {
        "FAIL"
    } else if errors > 0 {
        "ERROR"
    } else {
        "PASS"
    };
    // The one-line machine-readable summary CI uploads as an artifact.
    let summary = format!(
        "gate all [{} profile, tolerance {tolerance}]: {verdict} — \
         {gated} gated, {failures} failed, {errors} errors, {skipped} skipped\n",
        profile.label()
    );
    if let Err(e) = charisma_bench::write_output("GATE_summary.txt", &summary) {
        eprintln!("campaign gate: could not write GATE_summary.txt: {e}");
    }
    if failures > 0 {
        eprintln!("gate all: FAIL ({failures} of {gated} gated entries regressed)");
        ExitCode::FAILURE
    } else if errors > 0 {
        eprintln!("gate all: {errors} entries hit infrastructure errors");
        ExitCode::from(2)
    } else {
        println!("gate all: PASS ({gated} gated entries, rest skipped)");
        ExitCode::SUCCESS
    }
}

fn run_trend(args: &[String]) -> ExitCode {
    let mut history: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--history" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("campaign trend: --history needs a path");
                    return ExitCode::from(2);
                };
                history = Some(PathBuf::from(value));
                i += 2;
            }
            other => {
                eprintln!("campaign trend: unknown option \"{other}\"\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let history = history.unwrap_or_else(trend::history_path);
    let (records, warnings) = match trend::load_history(&history) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("campaign trend: could not read {}: {e}", history.display());
            return ExitCode::from(2);
        }
    };
    for warning in &warnings {
        eprintln!("campaign trend: warning: {}: {warning}", history.display());
    }
    let analysis = trend::analyze_history(&records, trend::DEFAULT_CUMULATIVE_THRESHOLD);
    let report = trend::render_report(
        &analysis,
        &history,
        records.len(),
        warnings.len(),
        trend::DEFAULT_CUMULATIVE_THRESHOLD,
    );
    print!("{report}");
    if let Err(e) = charisma_bench::write_output(trend::TREND_REPORT_FILE, &report) {
        eprintln!(
            "campaign trend: could not write {}: {e}",
            trend::TREND_REPORT_FILE
        );
    }
    if analysis.series.is_empty() {
        // Insufficient history is a healthy state, not an error: the ledger
        // simply has not accumulated the runs the detector needs yet.
        ExitCode::SUCCESS
    } else if analysis.drifting().is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn write_handbook() -> ExitCode {
    match registry::write_handbook(Path::new("EXPERIMENTS.md")) {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("campaign write-handbook: {e}");
            ExitCode::FAILURE
        }
    }
}
