//! Fig. 5 — a sample of the channel fading process: fast Rayleigh fading
//! superimposed on long-term log-normal shadowing.
//!
//! Generates a 2-second trace for one terminal at 50 km/h, prints summary
//! statistics and writes the full trace to `results/fig5_fading.csv`.

use charisma::des::{RngStreams, SimDuration, StreamId};
use charisma::radio::{ChannelConfig, CombinedChannel, Mobility};

fn main() {
    let streams = RngStreams::new(0xF165_BEEF);
    let mut channel = CombinedChannel::new(
        ChannelConfig::default(),
        Mobility::new(50.0),
        streams.stream(StreamId::new(StreamId::DOMAIN_CHANNEL, 0)),
    );

    // 2 seconds sampled every 0.5 ms: fast fading varies within ~10 ms while
    // the shadowing component drifts over the whole trace.
    let step = SimDuration::from_micros(500);
    let samples = 4_000;
    let rows = channel.trace(step, samples);

    let mut csv = Vec::with_capacity(rows.len());
    let mut min_snr = f64::INFINITY;
    let mut max_snr = f64::NEG_INFINITY;
    let mut deep_fade_samples = 0usize;
    for &(t, short_db, long_db, snr_db) in &rows {
        csv.push(format!(
            "{:.6},{:.3},{:.3},{:.3}",
            t.as_secs_f64(),
            short_db,
            long_db,
            snr_db
        ));
        min_snr = min_snr.min(snr_db);
        max_snr = max_snr.max(snr_db);
        if short_db < -10.0 {
            deep_fade_samples += 1;
        }
    }

    println!("Fig. 5 — sample of combined channel fading (50 km/h, 2 s, 0.5 ms sampling)");
    println!("samples:                  {}", rows.len());
    println!(
        "SNR range:                {:.1} dB … {:.1} dB",
        min_snr, max_snr
    );
    println!(
        "time in >10 dB fast fade: {:.1}%  (Rayleigh theory ≈ 9.5%)",
        100.0 * deep_fade_samples as f64 / rows.len() as f64
    );
    println!(
        "shadowing drift over trace: {:.1} dB",
        (rows.last().unwrap().2 - rows[0].2).abs()
    );
    charisma_bench::write_csv(
        "fig5_fading.csv",
        "time_s,fast_fading_db,shadowing_db,snr_db",
        &csv,
    );
}
