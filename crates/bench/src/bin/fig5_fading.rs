//! Fig. 5 — sample of the combined fading process.
//!
//! Thin wrapper over the scenario-campaign registry: equivalent to
//! `campaign run fig5_fading` (same tables, same `results/` artifacts, same
//! `results/MANIFEST.json` provenance record).  See EXPERIMENTS.md.

use charisma_bench::{registry, BenchProfile};

fn main() {
    let profile = BenchProfile::from_env();
    if let Err(e) = registry::run_and_record(&["fig5_fading".to_string()], profile, 0) {
        eprintln!("fig5_fading: {e}");
        std::process::exit(1);
    }
}
