//! §5.2 — data QoS capacities at (delay ≤ 1 s, 0.25 pkt/frame).
//!
//! Thin wrapper over the scenario-campaign registry: equivalent to
//! `campaign run qos_capacity` (same tables, same `results/` artifacts, same
//! `results/MANIFEST.json` provenance record).  See EXPERIMENTS.md.

use charisma_bench::{registry, BenchProfile};

fn main() {
    let profile = BenchProfile::from_env();
    if let Err(e) = registry::run_and_record(&["qos_capacity".to_string()], profile, 0) {
        eprintln!("qos_capacity: {e}");
        std::process::exit(1);
    }
}
