//! §5.2 — data QoS capacity at the (delay ≤ 1 s, per-user throughput ≥ 0.25
//! packets/frame) operating point.
//!
//! The paper quotes: "at a QoS level of (1 sec, 0.25), the capacity of the
//! CHARISMA protocol is approximately 1.5 times that of D-TDMA/VR and three
//! times that of RAMA and DRMA."

use charisma::metrics::capacity_at_threshold;
use charisma::{data_load_sweep, run_sweep, ProtocolKind};
use charisma_bench::{all_protocols, base_config, fig12_data_counts, write_csv, BenchProfile};

fn main() {
    let profile = BenchProfile::from_env();
    let base = base_config(profile);
    let data_counts = fig12_data_counts(profile);
    let num_voice = 10;
    let mut csv_rows = Vec::new();
    let mut capacities: Vec<(ProtocolKind, Option<f64>)> = Vec::new();

    println!("Data QoS capacity at (delay <= 1 s, per-user throughput >= 0.25 pkt/frame), Nv = {num_voice}");
    println!(
        "{:<12} {:>26} {:>26}",
        "protocol", "capacity (no queue)", "capacity (with queue)"
    );

    for protocol in all_protocols() {
        let mut cells = Vec::new();
        for &queue in &[false, true] {
            if queue && !protocol.supports_request_queue() {
                cells.push("n/a".to_string());
                continue;
            }
            let points = data_load_sweep(&base, protocol, &data_counts, num_voice, queue);
            let results = run_sweep(points, 0);
            // A point satisfies the QoS level when the mean delay is below 1 s
            // AND the per-user throughput is still ~the offered 0.25 pkt/frame.
            let curve: Vec<(f64, f64)> = results
                .iter()
                .map(|r| {
                    let ok_throughput = r.report.data_throughput_per_user() >= 0.20;
                    let effective_delay = if ok_throughput {
                        r.report.data_delay_secs()
                    } else {
                        f64::MAX
                    };
                    (r.load, effective_delay)
                })
                .collect();
            let capacity = capacity_at_threshold(&curve, 1.0);
            if !queue {
                capacities.push((protocol, capacity));
            }
            let cell = match capacity {
                Some(c) => format!("{c:.1}"),
                None => format!("<{}", data_counts[0]),
            };
            csv_rows.push(format!("{},{},{}", protocol.label(), queue, cell));
            cells.push(cell);
        }
        println!("{:<12} {:>26} {:>26}", protocol.label(), cells[0], cells[1]);
    }

    // The headline ratios of §5.2.
    let lookup = |k: ProtocolKind| {
        capacities
            .iter()
            .find(|(p, _)| *p == k)
            .and_then(|(_, c)| *c)
    };
    if let (Some(ch), Some(vr), Some(rama)) = (
        lookup(ProtocolKind::Charisma),
        lookup(ProtocolKind::DTdmaVr),
        lookup(ProtocolKind::Rama),
    ) {
        println!();
        println!(
            "CHARISMA / D-TDMA/VR capacity ratio: {:.2} (paper ≈ 1.5)",
            ch / vr
        );
        println!(
            "CHARISMA / RAMA capacity ratio:      {:.2} (paper ≈ 3)",
            ch / rama
        );
    }

    write_csv(
        "qos_capacity.csv",
        "protocol,request_queue,qos_capacity_data_users",
        &csv_rows,
    );
}
