//! §5.3.1/5.3.2 — CSI-aware vs CSI-blind scheduling ablation.
//!
//! Thin wrapper over the scenario-campaign registry: equivalent to
//! `campaign run ablation_csi` (same tables, same `results/` artifacts, same
//! `results/MANIFEST.json` provenance record).  See EXPERIMENTS.md.

use charisma_bench::{registry, BenchProfile};

fn main() {
    let profile = BenchProfile::from_env();
    if let Err(e) = registry::run_and_record(&["ablation_csi".to_string()], profile, 0) {
        eprintln!("ablation_csi: {e}");
        std::process::exit(1);
    }
}
