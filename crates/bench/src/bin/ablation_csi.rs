//! §5.3.1 / §5.3.2 ablation — how much of CHARISMA's gain comes from the
//! CSI-dependent scheduling (selection diversity) as opposed to simply using
//! the variable-throughput PHY.
//!
//! Runs CHARISMA with its CSI term enabled (the real protocol) and disabled
//! (pure earliest-deadline-first over the same adaptive PHY — effectively a
//! smarter D-TDMA/VR), plus D-TDMA/VR itself, across a voice-load sweep.

use charisma::metrics::capacity_at_threshold;
use charisma::{run_sweep, voice_load_sweep, ProtocolKind};
use charisma_bench::{base_config, fig11_voice_counts, write_csv, BenchProfile};

fn main() {
    let profile = BenchProfile::from_env();
    let base = base_config(profile);
    let voice_counts = fig11_voice_counts(profile);
    let num_data = 10;
    let mut csv_rows = Vec::new();

    println!("Ablation — CSI-aware scheduling vs CSI-blind scheduling (Nd = {num_data}, queue on)");
    println!(
        "{:<26} {:>16} {:>18}",
        "variant", "capacity @ 1%", "loss @ 120 users"
    );

    let variants: Vec<(&str, ProtocolKind, bool)> = vec![
        ("CHARISMA (CSI-aware)", ProtocolKind::Charisma, true),
        ("CHARISMA (CSI-blind/EDF)", ProtocolKind::Charisma, false),
        ("D-TDMA/VR", ProtocolKind::DTdmaVr, true),
    ];

    for (label, protocol, csi_aware) in variants {
        let mut cfg = base.clone();
        cfg.charisma.csi_aware = csi_aware;
        let points = voice_load_sweep(&cfg, protocol, &voice_counts, num_data, true);
        let results = run_sweep(points, 0);
        let curve: Vec<(f64, f64)> = results
            .iter()
            .map(|r| (r.load, r.report.voice_loss_rate()))
            .collect();
        let capacity = capacity_at_threshold(&curve, 0.01);
        let at_120 = curve
            .iter()
            .min_by_key(|(load, _)| (load - 120.0).abs() as u64)
            .map(|&(_, loss)| loss)
            .unwrap_or(f64::NAN);

        let cap_str = match capacity {
            Some(c) => format!("{c:.0}"),
            None => format!("<{}", voice_counts[0]),
        };
        println!("{label:<26} {cap_str:>16} {:>17.2}%", at_120 * 100.0);
        for (load, loss) in &curve {
            csv_rows.push(format!("{label},{load},{loss:.6}"));
        }
    }

    write_csv(
        "ablation_csi.csv",
        "variant,num_voice,voice_loss_rate",
        &csv_rows,
    );
    println!();
    println!("Expected: disabling the CSI term costs a sizeable share of CHARISMA's capacity");
    println!("advantage, showing that the cross-layer scheduling (not just the adaptive PHY)");
    println!("is what drives the gain — the argument of Sections 5.3.1–5.3.2.");
}
