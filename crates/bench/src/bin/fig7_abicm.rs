//! Fig. 7 — instantaneous BER/packet-error behaviour and throughput of the
//! 6-mode ABICM scheme as a function of the CSI.
//!
//! Sweeps the CSI from −20 dB to +35 dB and prints, for each value, the
//! selected transmission mode, the normalised throughput (Fig. 7b) and the
//! per-packet error probability (the packet-level counterpart of Fig. 7a's
//! constant-BER behaviour inside the adaptation range).

use charisma::phy::{AdaptivePhy, FixedPhy, Phy};

fn main() {
    let adaptive = AdaptivePhy::default();
    let fixed = FixedPhy::default();

    println!("Fig. 7 — ABICM throughput and error behaviour vs CSI");
    println!(
        "{:>8} {:>8} {:>22} {:>22} {:>18}",
        "CSI(dB)", "mode", "normalised throughput", "adaptive packet error", "fixed packet error"
    );

    let mut rows = Vec::new();
    let mut snr = -20.0f64;
    while snr <= 35.0 + 1e-9 {
        let mode = adaptive.mode_for(snr);
        let tput = adaptive.packets_per_slot(snr);
        let per = adaptive.packet_error_probability(snr);
        let fper = fixed.packet_error_probability(snr);
        println!(
            "{snr:>8.1} {:>8} {tput:>22.1} {per:>22.2e} {fper:>18.2e}",
            mode.index()
        );
        rows.push(format!(
            "{snr:.1},{},{tput:.2},{per:.6},{fper:.6}",
            mode.index()
        ));
        snr += 1.0;
    }

    println!();
    println!("Inside the adaptation range the packet error probability is constant (the");
    println!("constant-BER operating mode of Fig. 7a) while the throughput steps from 1/2 to 5");
    println!("(Fig. 7b); below the range the scheme is in outage (mode 0).");
    charisma_bench::write_csv(
        "fig7_abicm.csv",
        "csi_db,mode,normalised_throughput,adaptive_per,fixed_per",
        &rows,
    );
}
