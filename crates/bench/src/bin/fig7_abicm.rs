//! Fig. 7 — ABICM BER / throughput vs CSI.
//!
//! Thin wrapper over the scenario-campaign registry: equivalent to
//! `campaign run fig7_abicm` (same tables, same `results/` artifacts, same
//! `results/MANIFEST.json` provenance record).  See EXPERIMENTS.md.

use charisma_bench::{registry, BenchProfile};

fn main() {
    let profile = BenchProfile::from_env();
    if let Err(e) = registry::run_and_record(&["fig7_abicm".to_string()], profile, 0) {
        eprintln!("fig7_abicm: {e}");
        std::process::exit(1);
    }
}
