//! §5.1 — voice capacities at the 1 % packet-loss threshold.
//!
//! Reproduces the capacity figures quoted in the prose of Section 5.1
//! (e.g. "CHARISMA can accommodate approximately 100 voice users … while both
//! DRMA and D-TDMA/VR can support only about 80 … RAMA and D-TDMA/FR about
//! 60"), for N_d ∈ {0, 10, 20} data users, with and without the request
//! queue.

use charisma::metrics::capacity_at_threshold;
use charisma::{run_sweep, voice_load_sweep};
use charisma_bench::{all_protocols, base_config, fig11_voice_counts, write_csv, BenchProfile};

fn main() {
    let profile = BenchProfile::from_env();
    let base = base_config(profile);
    let voice_counts = fig11_voice_counts(profile);
    let mut csv_rows = Vec::new();

    println!("Voice capacity at the 1% packet-loss threshold (number of voice users)");
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "protocol", "Nd=0", "Nd=0 +queue", "Nd=10", "Nd=10 +queue", "Nd=20", "Nd=20 +queue"
    );

    for protocol in all_protocols() {
        let mut cells = Vec::new();
        for &num_data in &[0u32, 10, 20] {
            for &queue in &[false, true] {
                if queue && !protocol.supports_request_queue() {
                    cells.push("n/a".to_string());
                    continue;
                }
                let points = voice_load_sweep(&base, protocol, &voice_counts, num_data, queue);
                let results = run_sweep(points, 0);
                let curve: Vec<(f64, f64)> = results
                    .iter()
                    .map(|r| (r.load, r.report.voice_loss_rate()))
                    .collect();
                let cell = match capacity_at_threshold(&curve, 0.01) {
                    Some(c) => format!("{c:.0}"),
                    None => format!("<{}", voice_counts[0]),
                };
                csv_rows.push(format!(
                    "{},{},{},{}",
                    protocol.label(),
                    num_data,
                    queue,
                    cell
                ));
                cells.push(cell);
            }
        }
        println!(
            "{:<12} {:>14} {:>14} {:>14} {:>14} {:>14} {:>14}",
            protocol.label(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4],
            cells[5]
        );
    }

    write_csv(
        "capacity_1pct.csv",
        "protocol,num_data,request_queue,capacity_voice_users",
        &csv_rows,
    );
    println!();
    println!("Paper reference points (§5.1): without queue, Nd=0 — CHARISMA ≈ 100, DRMA ≈ 80,");
    println!("D-TDMA/VR ≈ 80, RAMA ≈ 60, D-TDMA/FR ≈ 60, RMAV unstable; with queue CHARISMA ≈ 160");
    println!("and D-TDMA/VR gains ≈ 25% while RAMA/DRMA barely change.");
}
