//! §5.1 — voice capacities at the 1 % packet-loss threshold.
//!
//! Thin wrapper over the scenario-campaign registry: equivalent to
//! `campaign run capacity_table` (same tables, same `results/` artifacts, same
//! `results/MANIFEST.json` provenance record).  See EXPERIMENTS.md.

use charisma_bench::{registry, BenchProfile};

fn main() {
    let profile = BenchProfile::from_env();
    if let Err(e) = registry::run_and_record(&["capacity_table".to_string()], profile, 0) {
        eprintln!("capacity_table: {e}");
        std::process::exit(1);
    }
}
