//! Property tests for the checkpoint record codec.
//!
//! Checkpoint records must round-trip [`ReplicatedResult`]s **bit-exactly**
//! through the strict-JSON line format — including NaNs, infinities, negative
//! zero and the ±inf sentinels of empty accumulators, which is why every
//! float field here is driven by arbitrary `u64` bit patterns rather than
//! "nice" numeric strategies.  Re-serialising the decoded record must yield
//! the original line byte-for-byte (an equality that, unlike `==` on floats,
//! has no NaN blind spot).
//!
//! The rejection properties pin the strictness: an unknown key at the record
//! or result level, a changed identity key, or a single corrupted hash digit
//! must each refuse to parse — these are exactly the refusals that make
//! `campaign run --resume` exit 2 instead of silently mixing incompatible
//! runs.

use charisma::metrics::{
    CellCounters, ContentionStats, DataStats, HandoffStats, RepsAccumulator, RunMetrics,
    RunningStat, SlotStats, VoiceStats,
};
use charisma::{ProtocolKind, ReplicatedResult, RunReport};
use charisma_bench::checkpoint::{parse_record_line, record_line};
use proptest::prelude::*;

/// Deals arbitrary words (cyclically, so the supply never runs dry) to the
/// struct builders below.
struct Words<'a> {
    words: &'a [u64],
    i: usize,
}

impl Words<'_> {
    fn u(&mut self) -> u64 {
        let v = self.words[self.i % self.words.len()];
        self.i += 1;
        v
    }

    /// An arbitrary IEEE-754 bit pattern — any float, including NaN payloads.
    fn f(&mut self) -> f64 {
        f64::from_bits(self.u())
    }

    fn stat(&mut self) -> RunningStat {
        RunningStat::from_raw_parts(self.u(), self.f(), self.f(), self.f(), self.f())
    }

    fn voice(&mut self) -> VoiceStats {
        VoiceStats {
            generated: self.u(),
            delivered: self.u(),
            dropped_deadline: self.u(),
            transmission_errors: self.u(),
            dropped_handoff: self.u(),
        }
    }

    fn data(&mut self) -> DataStats {
        DataStats {
            arrived: self.u(),
            delivered: self.u(),
            retransmissions: self.u(),
            delay: self.stat(),
        }
    }

    fn slots(&mut self) -> SlotStats {
        SlotStats {
            offered: self.f(),
            assigned: self.f(),
            packets_carried: self.u(),
            wasted: self.f(),
        }
    }
}

/// Builds a fully arbitrary replicated result from raw words.
fn build_result(
    words: &[u64],
    protocol: ProtocolKind,
    request_queue: bool,
    cells: usize,
) -> ReplicatedResult {
    let mut w = Words { words, i: 0 };
    let per_cell = (0..cells)
        .map(|c| CellCounters {
            cell: c as u32,
            voice: w.voice(),
            data: w.data(),
            slots: w.slots(),
            handoff_in: w.u(),
            handoff_out: w.u(),
            occupancy: w.stat(),
            admission_queue: w.stat(),
        })
        .collect();
    let metrics = RunMetrics {
        frames: w.u(),
        voice: w.voice(),
        data: w.data(),
        contention: ContentionStats {
            attempts: w.u(),
            collisions: w.u(),
            successes: w.u(),
            queue_length: w.stat(),
        },
        slots: w.slots(),
        handoff: HandoffStats {
            attempts: w.u(),
            successes: w.u(),
            failures: w.u(),
            queued: w.u(),
        },
        per_cell,
    };
    ReplicatedResult {
        load: w.f(),
        protocol,
        report: RunReport {
            protocol,
            request_queue,
            num_voice: w.u() as u32,
            num_data: w.u() as u32,
            seed: w.u(),
            metrics,
        },
        stats: RepsAccumulator::from_parts(w.stat(), w.stat(), w.stat()),
    }
}

fn key_table() -> Vec<String> {
    (0..8).map(|i| format!("key-{i}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn record_lines_round_trip_bit_exactly(
        words in proptest::collection::vec(any::<u64>(), 64..96),
        proto in 0usize..6,
        request_queue in any::<bool>(),
        idx in 0usize..8,
        cells in 0usize..3,
    ) {
        let result = build_result(&words, ProtocolKind::ALL[proto], request_queue, cells);
        let keys = key_table();
        let line = record_line(idx, &keys[idx], &result);
        let (back_idx, back) = parse_record_line(&line, &keys)
            .map_err(|e| TestCaseError::fail(format!("round trip refused: {e}")))?;
        prop_assert_eq!(back_idx, idx);
        // Byte-equal re-serialisation is the NaN-proof form of bit-exact
        // equality: every float was persisted as its raw bit pattern.
        prop_assert_eq!(record_line(idx, &keys[idx], &back), line);
        prop_assert_eq!(back.stats.reps(), result.stats.reps());
        prop_assert_eq!(back.protocol, result.protocol);
    }

    #[test]
    fn unknown_keys_are_refused_at_both_levels(
        words in proptest::collection::vec(any::<u64>(), 64..96),
        proto in 0usize..6,
        idx in 0usize..8,
        top_level in any::<bool>(),
    ) {
        let result = build_result(&words, ProtocolKind::ALL[proto], true, 1);
        let keys = key_table();
        let line = record_line(idx, &keys[idx], &result);
        let tampered = if top_level {
            // Unknown key in the checkpoint record envelope itself.
            line.replacen('{', "{\"smuggled\":0,", 1)
        } else {
            // Unknown key inside the persisted result payload.
            line.replacen("\"result\":{", "\"result\":{\"smuggled\":0,", 1)
        };
        prop_assert_ne!(&tampered, &line);
        let err = parse_record_line(&tampered, &keys);
        prop_assert!(err.is_err(), "unknown key must refuse: {tampered}");
        // The envelope refusal names the key; the payload refusal surfaces
        // either the unknown key or the now-stale hash, both of which refuse
        // the resume.
        let msg = err.unwrap_err();
        prop_assert!(
            msg.contains("unknown key") || msg.contains("hash") || msg.contains("smuggled"),
            "unexpected refusal message: {msg}"
        );
    }

    #[test]
    fn identity_key_mismatches_are_refused(
        words in proptest::collection::vec(any::<u64>(), 64..96),
        proto in 0usize..6,
        idx in 0usize..8,
    ) {
        let result = build_result(&words, ProtocolKind::ALL[proto], false, 0);
        let mut keys = key_table();
        let line = record_line(idx, &keys[idx], &result);
        // The campaign definition "changes" underneath the checkpoint.
        keys[idx] = "different-campaign-point".to_string();
        let msg = parse_record_line(&line, &keys).unwrap_err();
        prop_assert!(msg.contains("does not match"), "{msg}");
    }

    #[test]
    fn corrupted_hashes_are_refused(
        words in proptest::collection::vec(any::<u64>(), 64..96),
        proto in 0usize..6,
        idx in 0usize..8,
        digit in 0usize..16,
    ) {
        let result = build_result(&words, ProtocolKind::ALL[proto], true, 2);
        let keys = key_table();
        let line = record_line(idx, &keys[idx], &result);
        let marker = "\"hash\":\"";
        let start = line.find(marker).expect("records carry a hash") + marker.len();
        let pos = start + digit; // the hash is exactly 16 hex digits
        let original = line.as_bytes()[pos];
        let flipped = if original == b'0' { b'1' } else { b'0' };
        let mut tampered = line.clone().into_bytes();
        tampered[pos] = flipped;
        let tampered = String::from_utf8(tampered).unwrap();
        let msg = parse_record_line(&tampered, &keys).unwrap_err();
        prop_assert!(msg.contains("hash"), "{msg}");
    }

    #[test]
    fn out_of_range_points_are_refused(
        words in proptest::collection::vec(any::<u64>(), 64..96),
        idx in 8usize..32,
    ) {
        let result = build_result(&words, ProtocolKind::Charisma, true, 0);
        let keys = key_table(); // 8 entries: any idx >= 8 is out of range
        let line = record_line(idx, "whatever", &result);
        let msg = parse_record_line(&line, &keys).unwrap_err();
        prop_assert!(msg.contains("out of range"), "{msg}");
    }
}
