//! Durability pin: an interrupted-and-resumed campaign is byte-identical to
//! an uninterrupted one.
//!
//! The deterministic fault hook ([`DurableOptions::fault_point`]) kills the
//! `multicell_baseline` quick campaign after 1, k/2 and n−1 completed points,
//! at 1 and 4 sweep threads; each interrupted run is resumed and its primary
//! CSV, handoff CSV and MANIFEST.json are compared byte-for-byte against a
//! clean run at the same thread count.  A second family of tests tampers
//! with a real checkpoint — stale revision, wrong profile, unknown record
//! keys, missing file — and asserts the resume *refuses* (the CLI's exit 2)
//! rather than silently mixing incompatible runs, while a torn final record
//! (a kill mid-append) is dropped and recomputed.
//!
//! The fault count is injected through [`DurableOptions`] directly, never
//! the `CHARISMA_FAULT_POINT` environment variable: the env var is
//! process-global and these tests run concurrently.

use charisma_bench::checkpoint::{
    checkpoint_path, run_and_record_durable, DurableError, DurableOptions,
};
use charisma_bench::{BaselineWrite, BenchProfile};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

const ENTRY: &str = "multicell_baseline";
/// The quick-profile campaign expands to 12 points (2 voice levels × 6
/// protocols); the fault points below are 1, k/2 and n−1 of that.
const TOTAL_POINTS: usize = 12;

/// The three artifacts whose bytes must survive an interruption.
const ARTIFACTS: [&str; 3] = [
    "multicell_baseline.csv",
    "multicell_baseline_handoff.csv",
    "MANIFEST.json",
];

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("charisma-durability-{}-{tag}", std::process::id()));
    if dir.exists() {
        fs::remove_dir_all(&dir).unwrap();
    }
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_clean(dir: &Path, threads: usize) {
    let opts = DurableOptions::new(dir);
    run_and_record_durable(
        &[ENTRY.to_string()],
        BenchProfile::Quick,
        threads,
        BaselineWrite::Sidecar,
        &opts,
    )
    .expect("clean durable run must succeed");
}

fn read_artifacts(dir: &Path) -> Vec<(String, Vec<u8>)> {
    ARTIFACTS
        .iter()
        .map(|name| {
            (
                name.to_string(),
                fs::read(dir.join(name)).unwrap_or_else(|e| panic!("missing {name}: {e}")),
            )
        })
        .collect()
}

/// The clean reference outputs at a given thread count, computed once and
/// shared by every comparison test (CSV bytes are thread-count-invariant,
/// but the manifest records the thread count, so each count keeps its own
/// reference).
fn clean_reference(threads: usize) -> &'static Vec<(String, Vec<u8>)> {
    static CLEAN1: OnceLock<Vec<(String, Vec<u8>)>> = OnceLock::new();
    static CLEAN4: OnceLock<Vec<(String, Vec<u8>)>> = OnceLock::new();
    let slot = match threads {
        1 => &CLEAN1,
        4 => &CLEAN4,
        other => panic!("no clean reference is maintained for {other} threads"),
    };
    slot.get_or_init(|| {
        let dir = scratch(&format!("clean-t{threads}"));
        run_clean(&dir, threads);
        let outputs = read_artifacts(&dir);
        fs::remove_dir_all(&dir).ok();
        outputs
    })
}

/// Interrupts the campaign after `fault` newly completed points, resumes it,
/// and asserts the final artifacts match the clean reference byte-for-byte.
fn interrupt_and_resume(fault: u64, threads: usize) {
    let dir = scratch(&format!("fault{fault}-t{threads}"));
    let mut opts = DurableOptions::new(&dir);
    opts.fault_point = Some(fault);
    let interrupted = run_and_record_durable(
        &[ENTRY.to_string()],
        BenchProfile::Quick,
        threads,
        BaselineWrite::Sidecar,
        &opts,
    );
    match interrupted {
        Err(DurableError::Aborted {
            completed, total, ..
        }) => {
            assert_eq!(total, TOTAL_POINTS);
            assert!(
                (fault as usize..total).contains(&completed),
                "abort after fault {fault} recorded {completed}/{total} points"
            );
            let mut resume = DurableOptions::new(&dir);
            resume.resume = true;
            run_and_record_durable(
                &[ENTRY.to_string()],
                BenchProfile::Quick,
                threads,
                BaselineWrite::Sidecar,
                &resume,
            )
            .expect("resume of a valid checkpoint must succeed");
        }
        // With several sweep workers the points already in flight when the
        // fault fires still complete; a fault injected near n can therefore
        // finish the campaign outright.  The byte comparison below still
        // applies.
        Ok(_) => assert!(
            threads > 1 && fault as usize >= TOTAL_POINTS - threads,
            "fault {fault} at {threads} thread(s) unexpectedly completed the campaign"
        ),
        Err(other) => panic!("unexpected durable error: {other}"),
    }
    for ((name, clean), (_, resumed)) in clean_reference(threads).iter().zip(read_artifacts(&dir)) {
        assert!(
            *clean == resumed,
            "{name} of the interrupted-and-resumed run (fault {fault}, \
             {threads} thread(s)) differs from the uninterrupted run"
        );
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_at_first_point_single_thread_resumes_byte_identically() {
    interrupt_and_resume(1, 1);
}

#[test]
fn fault_at_midpoint_single_thread_resumes_byte_identically() {
    interrupt_and_resume(TOTAL_POINTS as u64 / 2, 1);
}

#[test]
fn fault_at_last_point_single_thread_resumes_byte_identically() {
    interrupt_and_resume(TOTAL_POINTS as u64 - 1, 1);
}

#[test]
fn fault_at_first_point_four_threads_resumes_byte_identically() {
    interrupt_and_resume(1, 4);
}

#[test]
fn fault_at_midpoint_four_threads_resumes_byte_identically() {
    interrupt_and_resume(TOTAL_POINTS as u64 / 2, 4);
}

#[test]
fn fault_at_last_point_four_threads_resumes_byte_identically() {
    interrupt_and_resume(TOTAL_POINTS as u64 - 1, 4);
}

#[test]
fn thread_count_does_not_change_the_csv_bytes() {
    let one = clean_reference(1);
    let four = clean_reference(4);
    for ((name, a), (_, b)) in one.iter().zip(four) {
        if name == "MANIFEST.json" {
            // The manifest records the thread count by design; everything
            // else must match.
            assert_ne!(a, b, "manifests at different thread counts cannot be equal");
        } else {
            assert!(a == b, "{name} differs between 1 and 4 sweep threads");
        }
    }
}

// --- resume-refusal family -------------------------------------------------

/// A checkpoint interrupted after 2 points, produced once and copied into
/// each tamper scenario.
fn faulted_checkpoint_line_set() -> &'static Vec<u8> {
    static SOURCE: OnceLock<Vec<u8>> = OnceLock::new();
    SOURCE.get_or_init(|| {
        let dir = scratch("tamper-source");
        let mut opts = DurableOptions::new(&dir);
        opts.fault_point = Some(2);
        let err = run_and_record_durable(
            &[ENTRY.to_string()],
            BenchProfile::Quick,
            1,
            BaselineWrite::Sidecar,
            &opts,
        )
        .expect_err("fault after 2 of 12 points must abort");
        assert!(matches!(err, DurableError::Aborted { .. }), "{err}");
        let bytes = fs::read(checkpoint_path(&dir, ENTRY)).unwrap();
        fs::remove_dir_all(&dir).ok();
        bytes
    })
}

/// Attempts a resume against checkpoint bytes planted in a fresh directory.
fn resume_with_checkpoint(tag: &str, bytes: &[u8]) -> Result<(), DurableError> {
    let dir = scratch(tag);
    let path = checkpoint_path(&dir, ENTRY);
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(&path, bytes).unwrap();
    let mut opts = DurableOptions::new(&dir);
    opts.resume = true;
    // The tampered checkpoints are refused before any simulation starts, so
    // even at the quick profile these are instant.
    let outcome = run_and_record_durable(
        &[ENTRY.to_string()],
        BenchProfile::Quick,
        1,
        BaselineWrite::Sidecar,
        &opts,
    )
    .map(|_| ());
    fs::remove_dir_all(&dir).ok();
    outcome
}

#[test]
fn resume_without_a_checkpoint_is_refused() {
    let dir = scratch("no-checkpoint");
    let mut opts = DurableOptions::new(&dir);
    opts.resume = true;
    let err = run_and_record_durable(
        &[ENTRY.to_string()],
        BenchProfile::Quick,
        1,
        BaselineWrite::Sidecar,
        &opts,
    )
    .expect_err("resume with no checkpoint must refuse");
    assert!(matches!(err, DurableError::Mismatch(_)), "{err}");
    assert_eq!(err.exit_code(), 2);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_with_a_stale_git_revision_is_refused() {
    let text = String::from_utf8(faulted_checkpoint_line_set().clone()).unwrap();
    let revision = charisma_bench::registry::git_revision();
    let tampered = text.replacen(&revision, "0000000000000000000000000000000000000000", 1);
    assert_ne!(tampered, text, "header must carry the revision to tamper");
    let err = resume_with_checkpoint("stale-revision", tampered.as_bytes())
        .expect_err("a checkpoint from another revision must refuse to resume");
    assert!(matches!(err, DurableError::Mismatch(_)), "{err}");
    assert!(err.to_string().contains("git_revision"), "{err}");
}

#[test]
fn resume_under_a_different_profile_is_refused() {
    let dir = scratch("wrong-profile");
    let path = checkpoint_path(&dir, ENTRY);
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(&path, faulted_checkpoint_line_set()).unwrap();
    let mut opts = DurableOptions::new(&dir);
    opts.resume = true;
    let err = run_and_record_durable(
        &[ENTRY.to_string()],
        BenchProfile::Standard,
        1,
        BaselineWrite::Sidecar,
        &opts,
    )
    .expect_err("a quick-profile checkpoint must refuse a standard-profile resume");
    assert!(matches!(err, DurableError::Mismatch(_)), "{err}");
    assert!(err.to_string().contains("profile"), "{err}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_with_an_unknown_record_key_is_refused() {
    let text = String::from_utf8(faulted_checkpoint_line_set().clone()).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    assert!(lines.len() >= 2, "need at least one record to tamper");
    let record = lines.last_mut().unwrap();
    assert!(record.starts_with('{'));
    record.replace_range(0..1, "{\"smuggled\":true,");
    let tampered = format!("{}\n", lines.join("\n"));
    let err = resume_with_checkpoint("unknown-key", tampered.as_bytes())
        .expect_err("a record with an unknown key must refuse to resume");
    assert!(matches!(err, DurableError::Mismatch(_)), "{err}");
    assert!(err.to_string().contains("unknown key"), "{err}");
}

#[test]
fn resume_with_a_corrupted_result_hash_is_refused() {
    let text = String::from_utf8(faulted_checkpoint_line_set().clone()).unwrap();
    let pos = text.find("\"hash\":\"").expect("records carry a hash") + "\"hash\":\"".len();
    let mut tampered = text.clone();
    let original = &text[pos..pos + 1];
    tampered.replace_range(pos..pos + 1, if original == "0" { "1" } else { "0" });
    let err = resume_with_checkpoint("bad-hash", tampered.as_bytes())
        .expect_err("a record whose hash does not match its result must refuse");
    assert!(matches!(err, DurableError::Mismatch(_)), "{err}");
    assert!(err.to_string().contains("hash"), "{err}");
}

#[test]
fn torn_final_record_is_dropped_and_the_resume_still_matches() {
    let bytes = faulted_checkpoint_line_set().clone();
    // Cut the file mid-way through its final record, simulating a process
    // killed inside the append: no trailing newline, unparsable fragment.
    let torn = &bytes[..bytes.len() - 40];
    assert!(!torn.ends_with(b"\n"));
    let dir = scratch("torn-tail");
    let path = checkpoint_path(&dir, ENTRY);
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(&path, torn).unwrap();
    let mut opts = DurableOptions::new(&dir);
    opts.resume = true;
    run_and_record_durable(
        &[ENTRY.to_string()],
        BenchProfile::Quick,
        1,
        BaselineWrite::Sidecar,
        &opts,
    )
    .expect("a torn tail is dropped, not fatal");
    for ((name, clean), (_, resumed)) in clean_reference(1).iter().zip(read_artifacts(&dir)) {
        assert!(
            *clean == resumed,
            "{name} after a torn-tail resume differs from the uninterrupted run"
        );
    }
    fs::remove_dir_all(&dir).ok();
}
