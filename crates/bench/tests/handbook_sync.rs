//! The reproduction handbook (`EXPERIMENTS.md`) must stay in sync with the
//! scenario-campaign registry: every registered scenario documented, nothing
//! stale left behind.  The generated section is maintained by
//! `campaign write-handbook`; this suite diffs it against the registry.

use charisma_bench::registry;
use std::path::PathBuf;

fn handbook_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../EXPERIMENTS.md")
}

fn handbook_text() -> String {
    std::fs::read_to_string(handbook_path()).expect(
        "EXPERIMENTS.md is missing — regenerate it with \
         `cargo run --release -p charisma_bench --bin campaign -- write-handbook`",
    )
}

/// The scenario names documented in the generated section, in order.
fn documented_scenarios(handbook: &str) -> Vec<String> {
    let begin = handbook
        .find(registry::GENERATED_BEGIN)
        .expect("EXPERIMENTS.md lost its generated-section begin marker");
    let end = handbook
        .find(registry::GENERATED_END)
        .expect("EXPERIMENTS.md lost its generated-section end marker");
    assert!(begin < end, "generated-section markers are reversed");
    handbook[begin..end]
        .lines()
        .filter_map(|line| {
            let rest = line.strip_prefix("### `")?;
            Some(rest.split('`').next().unwrap_or_default().to_string())
        })
        .collect()
}

#[test]
fn handbook_scenario_list_matches_the_registry_exactly() {
    let documented = documented_scenarios(&handbook_text());
    let registered: Vec<String> = registry::names().iter().map(|s| s.to_string()).collect();
    assert_eq!(
        documented, registered,
        "EXPERIMENTS.md's generated section diverged from the registry — \
         regenerate it with `campaign write-handbook`"
    );
}

#[test]
fn handbook_generated_section_is_byte_current() {
    // Stronger than the name diff: the whole generated block must match what
    // the current registry renders, so edits to details/outputs/runtimes in
    // the registry cannot silently go stale either.
    let handbook = handbook_text();
    let begin = handbook.find(registry::GENERATED_BEGIN).unwrap() + registry::GENERATED_BEGIN.len();
    let end = handbook.find(registry::GENERATED_END).unwrap();
    let in_file = handbook[begin..end].trim();
    let current = registry::handbook_markdown();
    assert_eq!(
        in_file,
        current.trim(),
        "EXPERIMENTS.md's generated section is stale — \
         regenerate it with `campaign write-handbook`"
    );
}

#[test]
fn handbook_documents_the_run_command_for_every_scenario() {
    let handbook = handbook_text();
    for entry in registry::entries() {
        assert!(
            handbook.contains(&format!("run {} --profile", entry.name)),
            "EXPERIMENTS.md is missing the campaign run command for {}",
            entry.name
        );
        for output in entry.outputs {
            assert!(
                handbook.contains(&format!("results/{output}")),
                "EXPERIMENTS.md does not mention {}'s output results/{output}",
                entry.name
            );
        }
    }
}
