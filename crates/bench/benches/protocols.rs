//! Criterion benchmarks of the six MAC protocols: the wall-clock cost of
//! simulating one second of system time (400 frames) at a representative
//! mixed load.  This is the number that determines how long the Fig. 11–13
//! sweeps take and how the simulator scales with the user population.

use charisma::{ProtocolKind, Scenario, SimConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn scenario_config(num_voice: u32, num_data: u32) -> SimConfig {
    let mut cfg = SimConfig::default_paper();
    cfg.num_voice = num_voice;
    cfg.num_data = num_data;
    cfg.warmup_frames = 0;
    cfg.measured_frames = 400; // one simulated second
    cfg
}

fn bench_protocols_one_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_one_second_60v_10d");
    for protocol in ProtocolKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol.label()),
            &protocol,
            |b, &p| {
                let scenario = Scenario::new(scenario_config(60, 10));
                b.iter(|| black_box(scenario.run(p)));
            },
        );
    }
    group.finish();
}

fn bench_charisma_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("charisma_scaling_voice_users");
    for &num_voice in &[20u32, 80, 160] {
        group.bench_with_input(
            BenchmarkId::from_parameter(num_voice),
            &num_voice,
            |b, &nv| {
                let scenario = Scenario::new(scenario_config(nv, 0));
                b.iter(|| black_box(scenario.run(ProtocolKind::Charisma)));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = protocols;
    config = Criterion::default().sample_size(10);
    targets = bench_protocols_one_second, bench_charisma_scaling
}
criterion_main!(protocols);
