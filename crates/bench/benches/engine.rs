//! Criterion micro-benchmarks of the simulation substrate: the event
//! calendar, the random streams, the fading channel and the CSI estimator.
//! These bound the per-frame cost of the platform itself, independent of any
//! MAC protocol.

use charisma::des::{EventQueue, RngStreams, Sampler, SimDuration, SimTime, StreamId};
use charisma::phy::{AdaptivePhy, Phy};
use charisma::radio::{ChannelConfig, CombinedChannel, Mobility};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            let mut x: u64 = 0x9E3779B97F4A7C15;
            for i in 0..10_000u32 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                q.schedule(SimTime::from_micros(x % 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((t, _)) = q.pop() {
                acc = acc.wrapping_add(t.as_micros());
            }
            black_box(acc)
        })
    });
}

fn bench_rng_streams(c: &mut Criterion) {
    let streams = RngStreams::new(42);
    c.bench_function("rng_derive_1k_streams", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1_000u32 {
                acc ^= streams.derive_seed(StreamId::new(StreamId::DOMAIN_CHANNEL, i));
            }
            black_box(acc)
        })
    });
    c.bench_function("sampler_exponential_100k", |b| {
        let mut rng = streams.stream(StreamId::new(StreamId::DOMAIN_VOICE, 0));
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..100_000 {
                acc += Sampler::exponential(&mut rng, 1.0);
            }
            black_box(acc)
        })
    });
}

fn bench_channel(c: &mut Criterion) {
    let streams = RngStreams::new(7);
    c.bench_function("channel_advance_one_second_of_frames", |b| {
        b.iter(|| {
            let mut ch = CombinedChannel::new(
                ChannelConfig::default(),
                Mobility::new(50.0),
                streams.stream(StreamId::new(StreamId::DOMAIN_CHANNEL, 1)),
            );
            let mut t = SimTime::ZERO;
            let mut acc = 0.0;
            for _ in 0..400 {
                t += SimDuration::from_micros(2_500);
                acc += ch.snr_db_at(t);
            }
            black_box(acc)
        })
    });
}

fn bench_phy(c: &mut Criterion) {
    let phy = AdaptivePhy::default();
    c.bench_function("abicm_mode_selection_100k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            let mut snr = -20.0;
            for _ in 0..100_000 {
                snr += 0.001;
                acc += phy.packets_per_slot(black_box(snr));
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    engine,
    bench_event_queue,
    bench_rng_streams,
    bench_channel,
    bench_phy
);
criterion_main!(engine);
