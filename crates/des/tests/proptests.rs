//! Property-based tests for the discrete-event substrate.

use charisma_des::{
    EventQueue, FrameClock, RngStreams, Sampler, SimDuration, SimTime, StreamId, Xoshiro256StarStar,
};
use proptest::prelude::*;

proptest! {
    // Fixed case count on top of the runner's fixed master seed: the suite
    // explores the same cases on every machine and every run.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Popping the calendar always yields a non-decreasing sequence of times,
    /// and simultaneous events come out in scheduling order.
    #[test]
    fn event_queue_is_stable_priority_queue(times in proptest::collection::vec(0u64..1_000_000, 1..400)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut last_seq_at_time: Option<usize> = None;
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last_time);
            if t == last_time {
                if let Some(prev) = last_seq_at_time {
                    // Same timestamp: scheduling order (and thus original index order
                    // among equal times) must be preserved.
                    prop_assert!(times[prev] != times[idx] || prev < idx);
                }
            }
            last_time = t;
            last_seq_at_time = Some(idx);
        }
    }

    /// `schedule_after(d)` is exactly `schedule(now + d)`: both calendars
    /// deliver the same (time, event) sequence for any interleaving of pops
    /// and relative delays.
    #[test]
    fn schedule_after_matches_absolute_scheduling(delays in proptest::collection::vec(0u64..100_000, 1..100)) {
        let mut relative = EventQueue::new();
        let mut absolute = EventQueue::new();
        for (i, &d) in delays.iter().enumerate() {
            let delay = SimDuration::from_micros(d);
            relative.schedule_after(delay, i);
            absolute.schedule(absolute.now() + delay, i);
            // Pop every other iteration so the clocks actually advance and
            // later delays are measured from a moving "now".
            if i % 2 == 1 {
                prop_assert_eq!(relative.pop(), absolute.pop());
            }
        }
        while let Some(got) = relative.pop() {
            prop_assert_eq!(Some(got), absolute.pop());
        }
        prop_assert!(absolute.is_empty());
    }

    /// Frame decomposition is a bijection: frame_start(frame) + offset == t
    /// and the offset is always strictly less than the frame duration.
    #[test]
    fn frame_position_roundtrip(t_us in 0u64..10_000_000_000, frame_us in 1u64..100_000) {
        let clock = FrameClock::new(SimDuration::from_micros(frame_us));
        let t = SimTime::from_micros(t_us);
        let pos = clock.position(t);
        prop_assert_eq!(clock.frame_start(pos.frame) + pos.offset, t);
        prop_assert!(pos.offset < clock.frame_duration());
    }

    /// next_boundary is idempotent, never earlier than its argument and at
    /// most one frame away.
    #[test]
    fn next_boundary_properties(t_us in 0u64..10_000_000_000, frame_us in 1u64..100_000) {
        let clock = FrameClock::new(SimDuration::from_micros(frame_us));
        let t = SimTime::from_micros(t_us);
        let b = clock.next_boundary(t);
        prop_assert!(b >= t);
        prop_assert!(b.duration_since(t) < clock.frame_duration());
        prop_assert_eq!(clock.next_boundary(b), b);
    }

    /// Derived RNG streams are reproducible and two different entities in the
    /// same domain never share a seed.
    #[test]
    fn rng_streams_distinct(seed in any::<u64>(), a in 0u32..10_000, b in 0u32..10_000) {
        prop_assume!(a != b);
        let f = RngStreams::new(seed);
        let sa = f.derive_seed(StreamId::new(StreamId::DOMAIN_CHANNEL, a));
        let sb = f.derive_seed(StreamId::new(StreamId::DOMAIN_CHANNEL, b));
        prop_assert_eq!(sa, f.derive_seed(StreamId::new(StreamId::DOMAIN_CHANNEL, a)));
        prop_assert_ne!(sa, sb);
    }

    /// Exponential samples are non-negative for any positive mean and any seed.
    #[test]
    fn exponential_non_negative(seed in any::<u64>(), mean in 0.001f64..1000.0) {
        let mut rng = Xoshiro256StarStar::from_seed_u64(seed);
        for _ in 0..64 {
            prop_assert!(Sampler::exponential(&mut rng, mean) >= 0.0);
        }
    }

    /// uniform_index always lands in range.
    #[test]
    fn uniform_index_in_range(seed in any::<u64>(), n in 1usize..1000) {
        let mut rng = Xoshiro256StarStar::from_seed_u64(seed);
        for _ in 0..64 {
            prop_assert!(Sampler::uniform_index(&mut rng, n) < n);
        }
    }

    /// SimTime/SimDuration arithmetic is associative over addition of durations.
    #[test]
    fn time_addition_associative(start in 0u64..1u64 << 40, a in 0u64..1u64 << 30, b in 0u64..1u64 << 30) {
        let t = SimTime::from_micros(start);
        let da = SimDuration::from_micros(a);
        let db = SimDuration::from_micros(b);
        prop_assert_eq!((t + da) + db, t + (da + db));
        prop_assert_eq!(((t + da) + db).duration_since(t), da + db);
    }
}
