//! # charisma-des — discrete-event simulation substrate
//!
//! This crate provides the simulation substrate on which the CHARISMA
//! reproduction is built:
//!
//! * [`time`] — a microsecond-resolution simulation clock ([`SimTime`],
//!   [`SimDuration`]) with exact integer arithmetic, so frame and slot
//!   boundaries never drift due to floating-point rounding.
//! * [`rng`] — deterministic, splittable random-number streams
//!   ([`Xoshiro256StarStar`], [`RngStreams`]).  Every simulated entity
//!   (terminal, channel, protocol) owns an independent stream derived from a
//!   single scenario seed, which makes every experiment bit-for-bit
//!   reproducible and embarrassingly parallel across sweep points.
//! * [`dist`] — the random variates the paper's models need (exponential
//!   talkspurts, Rayleigh fading envelopes, log-normal shadowing, Bernoulli
//!   permission probabilities) implemented directly on top of the uniform
//!   generator, so no external distribution crate is required.
//! * [`event`] — a deterministic event calendar (binary heap keyed by time
//!   with a monotone tie-breaking sequence number).
//! * [`clock`] — the TDMA frame clock: conversions between simulation time,
//!   frame indices and slot indices for a fixed frame duration (2.5 ms in the
//!   paper).
//!
//! The substrate is intentionally protocol-agnostic: the MAC layer in the
//! `charisma` crate drives a frame-synchronous loop, while traffic sources
//! schedule future arrivals through the event calendar.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod dist;
pub mod event;
pub mod rng;
pub mod time;

pub use clock::{FrameClock, SlotPosition};
pub use dist::Sampler;
pub use event::{EventEntry, EventQueue};
pub use rng::{RngStreams, SplitMix64, StreamId, Xoshiro256StarStar};
pub use time::{SimDuration, SimTime};
