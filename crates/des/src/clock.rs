//! TDMA frame clock.
//!
//! All six protocols in the reproduction are frame-synchronous: the base
//! station and the mobile terminals share common frame boundaries (the paper
//! notes that every TDMA system must have its frame boundaries synchronised).
//! [`FrameClock`] provides the exact integer conversions between simulation
//! time, frame indices and positions within a frame, for the paper's 2.5 ms
//! frame as well as for protocols with variable-length frames (RMAV), whose
//! clock is advanced by an explicit per-frame duration.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Position of an instant within a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotPosition {
    /// Index of the frame containing the instant (0-based).
    pub frame: u64,
    /// Offset from the start of that frame.
    pub offset: SimDuration,
}

/// A fixed-period frame clock.
///
/// The clock itself is just arithmetic over [`SimTime`]; it holds no mutable
/// state, so it can be freely shared between the base station and terminals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameClock {
    frame_duration: SimDuration,
}

impl FrameClock {
    /// Creates a clock with the given frame duration.  Panics on a zero
    /// duration.
    pub fn new(frame_duration: SimDuration) -> Self {
        assert!(!frame_duration.is_zero(), "frame duration must be non-zero");
        FrameClock { frame_duration }
    }

    /// The paper's frame duration of 2.5 ms.
    pub fn paper_default() -> Self {
        FrameClock::new(SimDuration::from_micros(2_500))
    }

    /// The frame duration.
    pub fn frame_duration(&self) -> SimDuration {
        self.frame_duration
    }

    /// Index of the frame containing `t` (frames are `[k·T, (k+1)·T)`).
    pub fn frame_index(&self, t: SimTime) -> u64 {
        t.as_micros() / self.frame_duration.as_micros()
    }

    /// Start time of frame `k`.
    pub fn frame_start(&self, k: u64) -> SimTime {
        SimTime::from_micros(k * self.frame_duration.as_micros())
    }

    /// End time of frame `k` (equal to the start of frame `k + 1`).
    pub fn frame_end(&self, k: u64) -> SimTime {
        self.frame_start(k + 1)
    }

    /// The first frame boundary at or after `t`.
    pub fn next_boundary(&self, t: SimTime) -> SimTime {
        let us = t.as_micros();
        let f = self.frame_duration.as_micros();
        let rem = us % f;
        if rem == 0 {
            t
        } else {
            SimTime::from_micros(us - rem + f)
        }
    }

    /// Decomposes `t` into its containing frame and the offset within it.
    pub fn position(&self, t: SimTime) -> SlotPosition {
        let k = self.frame_index(t);
        SlotPosition {
            frame: k,
            offset: t.duration_since(self.frame_start(k)),
        }
    }

    /// Number of whole frames per `period` (e.g. 8 frames per 20 ms voice
    /// packet period for the paper's 2.5 ms frame).  Panics if `period` is
    /// not an exact multiple of the frame duration, because a misaligned
    /// period would silently break the isochronous voice schedule.
    pub fn frames_per(&self, period: SimDuration) -> u64 {
        assert!(
            (period % self.frame_duration).is_zero(),
            "period {period} is not a whole number of frames ({})",
            self.frame_duration
        );
        period.div_duration(self.frame_duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_2_5_ms() {
        let c = FrameClock::paper_default();
        assert_eq!(c.frame_duration(), SimDuration::from_micros(2_500));
    }

    #[test]
    fn frame_index_and_bounds() {
        let c = FrameClock::paper_default();
        assert_eq!(c.frame_index(SimTime::ZERO), 0);
        assert_eq!(c.frame_index(SimTime::from_micros(2_499)), 0);
        assert_eq!(c.frame_index(SimTime::from_micros(2_500)), 1);
        assert_eq!(c.frame_start(4), SimTime::from_micros(10_000));
        assert_eq!(c.frame_end(3), SimTime::from_micros(10_000));
    }

    #[test]
    fn next_boundary_rounds_up_and_is_idempotent_on_boundaries() {
        let c = FrameClock::paper_default();
        assert_eq!(c.next_boundary(SimTime::ZERO), SimTime::ZERO);
        assert_eq!(
            c.next_boundary(SimTime::from_micros(1)),
            SimTime::from_micros(2_500)
        );
        assert_eq!(
            c.next_boundary(SimTime::from_micros(2_500)),
            SimTime::from_micros(2_500)
        );
        assert_eq!(
            c.next_boundary(SimTime::from_micros(2_501)),
            SimTime::from_micros(5_000)
        );
    }

    #[test]
    fn position_round_trips() {
        let c = FrameClock::paper_default();
        let t = SimTime::from_micros(7_777);
        let p = c.position(t);
        assert_eq!(p.frame, 3);
        assert_eq!(p.offset, SimDuration::from_micros(277));
        assert_eq!(c.frame_start(p.frame) + p.offset, t);
    }

    #[test]
    fn voice_period_is_eight_frames() {
        let c = FrameClock::paper_default();
        assert_eq!(c.frames_per(SimDuration::from_millis(20)), 8);
    }

    #[test]
    #[should_panic(expected = "not a whole number of frames")]
    fn misaligned_period_panics() {
        let c = FrameClock::paper_default();
        let _ = c.frames_per(SimDuration::from_micros(21_000));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frame_duration_rejected() {
        let _ = FrameClock::new(SimDuration::ZERO);
    }
}
