//! Deterministic event calendar.
//!
//! A classic discrete-event future-event list: a binary heap ordered by event
//! time with a monotonically increasing sequence number as tie-breaker, so
//! events scheduled for the same instant are delivered in scheduling order.
//! Determinism of the delivery order is what keeps multi-threaded parameter
//! sweeps bit-for-bit reproducible.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event together with its activation time and tie-breaking sequence number.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// The simulation time at which the event fires.
    pub time: SimTime,
    /// Monotone sequence number assigned at scheduling time.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list for payload type `E`.
///
/// ```
/// use charisma_des::{EventQueue, SimTime, SimDuration};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { VoiceArrival(u32), DataBurst(u32) }
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_micros(50), Ev::DataBurst(7));
/// q.schedule(SimTime::from_micros(20), Ev::VoiceArrival(3));
///
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!(t, SimTime::from_micros(20));
/// assert_eq!(ev, Ev::VoiceArrival(3));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<EventEntry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Creates an empty calendar with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time, i.e. the activation time of the most
    /// recently popped event (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The sequence number the next scheduled event will receive.  Sequence
    /// numbers are allocated contiguously (a rejected `schedule` call does
    /// not burn one), which keeps delivery order reproducible.
    pub fn next_sequence(&self) -> u64 {
        self.next_seq
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// Panics if `time` is earlier than the current simulation time: a
    /// discrete-event simulation must never schedule into its own past.  The
    /// check happens before any state changes and the sequence counter is
    /// only advanced once the entry is in the heap, so a panicking call
    /// leaves the calendar exactly as it found it (no burnt sequence
    /// numbers).
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "attempted to schedule an event at {time} which is before the current time {}",
            self.now
        );
        self.heap.push(EventEntry {
            time,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
    }

    /// Schedules `event` at `delay` after the current simulation time — the
    /// common "fire in d from now" idiom, so callers no longer compute
    /// `queue.now() + delay` by hand.
    ///
    /// ```
    /// use charisma_des::{EventQueue, SimDuration, SimTime};
    ///
    /// let mut q = EventQueue::new();
    /// q.schedule(SimTime::from_micros(100), "boundary");
    /// q.pop();
    /// q.schedule_after(SimDuration::from_micros(50), "follow-up");
    /// assert_eq!(q.peek_time(), Some(SimTime::from_micros(150)));
    /// ```
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// The activation time of the next event, if any, without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the next event, advancing the clock to its
    /// activation time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Removes and returns the next event only if it fires at or before
    /// `horizon`.  The clock advances to the event time on success and is
    /// left untouched otherwise.  This is the primitive the frame-synchronous
    /// MAC loop uses to drain all arrivals belonging to the current frame.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(entry) if entry.time <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Advances the clock to `time` without delivering any event.  Panics if
    /// this would move the clock backwards or skip over a pending event.
    pub fn advance_to(&mut self, time: SimTime) {
        assert!(time >= self.now, "cannot move the clock backwards");
        if let Some(next) = self.peek_time() {
            assert!(
                next >= time,
                "advance_to({time}) would skip over a pending event at {next}"
            );
        }
        self.now = time;
    }

    /// Drops all pending events (the clock is unchanged).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Ev {
        A(u32),
        B(u32),
    }

    #[test]
    fn schedule_after_is_relative_to_the_current_time() {
        let mut q = EventQueue::new();
        q.schedule_after(SimDuration::from_micros(10), Ev::A(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(10)));
        q.pop();
        q.schedule_after(SimDuration::from_micros(10), Ev::A(1));
        assert_eq!(
            q.pop(),
            Some((SimTime::from_micros(20), Ev::A(1))),
            "delay must be measured from the advanced clock"
        );
    }

    #[test]
    fn rejected_schedule_burns_no_sequence_number() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), Ev::A(0));
        q.pop();
        let before = q.next_sequence();
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.schedule(SimTime::from_micros(5), Ev::A(1));
        }))
        .is_err();
        assert!(panicked, "scheduling in the past must panic");
        assert_eq!(
            q.next_sequence(),
            before,
            "a rejected schedule call must leave the calendar untouched"
        );
        let t = SimTime::from_micros(10);
        q.schedule(t, Ev::A(2));
        q.schedule(t, Ev::A(3));
        assert_eq!(q.pop(), Some((t, Ev::A(2))));
        assert_eq!(q.pop(), Some((t, Ev::A(3))));
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), Ev::A(3));
        q.schedule(SimTime::from_micros(10), Ev::A(1));
        q.schedule(SimTime::from_micros(20), Ev::B(2));

        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (SimTime::from_micros(10), Ev::A(1)),
                (SimTime::from_micros(20), Ev::B(2)),
                (SimTime::from_micros(30), Ev::A(3)),
            ]
        );
    }

    #[test]
    fn simultaneous_events_pop_in_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(100);
        for i in 0..50 {
            q.schedule(t, Ev::A(i));
        }
        for i in 0..50 {
            let (pt, ev) = q.pop().unwrap();
            assert_eq!(pt, t);
            assert_eq!(ev, Ev::A(i));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_micros(5), Ev::A(0));
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(5));
    }

    #[test]
    #[should_panic(expected = "before the current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), Ev::A(0));
        q.pop();
        q.schedule(SimTime::from_micros(5), Ev::A(1));
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), Ev::A(1));
        q.schedule(SimTime::from_micros(30), Ev::A(2));

        assert_eq!(
            q.pop_until(SimTime::from_micros(20)),
            Some((SimTime::from_micros(10), Ev::A(1)))
        );
        assert_eq!(q.pop_until(SimTime::from_micros(20)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.pop_until(SimTime::from_micros(30)),
            Some((SimTime::from_micros(30), Ev::A(2)))
        );
    }

    #[test]
    fn advance_to_moves_clock_between_events() {
        let mut q: EventQueue<Ev> = EventQueue::new();
        q.advance_to(SimTime::from_micros(2_500));
        assert_eq!(q.now(), SimTime::from_micros(2_500));
    }

    #[test]
    #[should_panic(expected = "skip over a pending event")]
    fn advance_to_cannot_skip_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), Ev::A(0));
        q.advance_to(SimTime::from_micros(20));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), Ev::A(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(10)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties_queue_but_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), Ev::A(0));
        q.pop();
        q.schedule(SimTime::from_micros(20), Ev::A(1));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_micros(10));
    }

    #[test]
    fn large_volume_stays_sorted() {
        let mut q = EventQueue::with_capacity(10_000);
        // Insert pseudo-random times (derived deterministically).
        let mut x: u64 = 0x12345;
        for i in 0..10_000u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            q.schedule(SimTime::from_micros(x % 1_000_000), Ev::A(i));
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn doc_style_frame_drain_pattern() {
        // Drain all events belonging to a 2.5 ms frame, as the MAC loop does.
        let frame = SimDuration::from_micros(2_500);
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(100), Ev::A(1));
        q.schedule(SimTime::from_micros(2_400), Ev::A(2));
        q.schedule(SimTime::from_micros(2_600), Ev::A(3));

        let frame_end = SimTime::ZERO + frame;
        let mut in_frame = vec![];
        while let Some((_, ev)) = q.pop_until(frame_end) {
            in_frame.push(ev);
        }
        assert_eq!(in_frame, vec![Ev::A(1), Ev::A(2)]);
        assert_eq!(q.len(), 1);
    }
}
