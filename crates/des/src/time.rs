//! Simulation time as exact integer microseconds.
//!
//! The paper's TDMA frame is 2.5 ms long and voice packets are generated on a
//! 20 ms period, so every quantity of interest is an exact multiple of one
//! microsecond.  Using integer microseconds (instead of `f64` seconds) keeps
//! frame boundaries exact over arbitrarily long runs and makes ordering in the
//! event calendar total and reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A span of simulated time, in whole microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond.  Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative, got {s}"
        );
        SimDuration((s * 1e6).round() as u64)
    }

    /// The duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero instead of wrapping.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Integer division of two durations (how many `rhs` fit in `self`).
    pub const fn div_duration(self, rhs: SimDuration) -> u64 {
        assert!(rhs.0 != 0, "division by zero duration");
        self.0 / rhs.0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 && self.0 % 1_000 == 0 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

/// An absolute instant on the simulation timeline, in whole microseconds
/// since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// A time far in the future; useful as an "infinite" deadline sentinel.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole microseconds since the origin.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since the simulation origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation origin (lossy, for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`.  Panics if `earlier` is later
    /// than `self` (an elapsed time can never be negative in a monotone
    /// simulation).
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier is after self"),
        )
    }

    /// The duration elapsed since `earlier`, or zero if `earlier` is later.
    pub const fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration (None on overflow).
    pub const fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        match self.0.checked_add(d.as_micros()) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.as_micros())
                .expect("simulation time overflow"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.as_micros())
                .expect("simulation time underflow"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_millis(2), SimDuration::from_micros(2_000));
        assert_eq!(
            SimDuration::from_secs(3),
            SimDuration::from_micros(3_000_000)
        );
        assert_eq!(
            SimDuration::from_secs_f64(0.0025),
            SimDuration::from_micros(2_500)
        );
        assert_eq!(
            SimDuration::from_secs_f64(1.35),
            SimDuration::from_micros(1_350_000)
        );
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(20);
        let b = SimDuration::from_micros(2_500);
        assert_eq!(a + b, SimDuration::from_micros(22_500));
        assert_eq!(a - b, SimDuration::from_micros(17_500));
        assert_eq!(b * 8, a);
        assert_eq!(a / 8, b);
        assert_eq!(a.div_duration(b), 8);
        assert_eq!(a % b, SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros(3) % b, SimDuration::from_micros(3));
    }

    #[test]
    fn duration_saturating_sub_clamps_to_zero() {
        let a = SimDuration::from_micros(5);
        let b = SimDuration::from_micros(9);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_micros(4));
    }

    #[test]
    #[should_panic(expected = "duration underflow")]
    fn duration_sub_underflow_panics() {
        let _ = SimDuration::from_micros(1) - SimDuration::from_micros(2);
    }

    #[test]
    fn time_arithmetic_and_ordering() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(2);
        let t2 = t1 + SimDuration::from_micros(500);
        assert!(t0 < t1 && t1 < t2);
        assert_eq!(t2.duration_since(t0), SimDuration::from_micros(2_500));
        assert_eq!(t2 - t1, SimDuration::from_micros(500));
        assert_eq!(t0.saturating_duration_since(t2), SimDuration::ZERO);
    }

    #[test]
    fn display_formats_are_human_readable() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
        assert_eq!(SimDuration::from_micros(2_500).to_string(), "2.500ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_micros(1_500_000).to_string(), "t=1.500000s");
    }

    #[test]
    fn far_future_behaves_as_infinite_deadline() {
        assert!(SimTime::FAR_FUTURE > SimTime::from_micros(u64::MAX - 1));
        assert!(SimTime::FAR_FUTURE
            .checked_add(SimDuration::from_micros(1))
            .is_none());
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn negative_seconds_rejected() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
