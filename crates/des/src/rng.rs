//! Deterministic, splittable random-number streams.
//!
//! Every entity in a scenario (each mobile terminal's traffic source, each
//! terminal's fading process, each protocol's contention randomness, …)
//! receives its own independent generator derived from the scenario master
//! seed and a structured [`StreamId`].  Two properties follow:
//!
//! 1. **Reproducibility** — a scenario is fully determined by its seed, no
//!    matter how many threads execute the sweep or in which order.
//! 2. **Common random numbers across protocols** — because stream derivation
//!    depends only on (seed, entity), the *same* traffic sample paths (the
//!    exact talkspurt on/off pattern and data-burst arrivals) are presented
//!    to every protocol under comparison, the variance-reduction technique
//!    implied by the paper's "common simulation platform".  Fading streams
//!    are likewise paired per terminal, but under the default lazy channel
//!    evaluation the *realised* fading path also depends on when a protocol
//!    samples each terminal's SNR (idle frames are coalesced into one draw),
//!    so cross-protocol channel paths are statistically equivalent rather
//!    than draw-for-draw identical; run with
//!    `ChannelMode::Eager` to restore exact channel pairing when an
//!    experiment needs it.
//!
//! The generator is `xoshiro256**`, implemented locally (public-domain
//! algorithm by Blackman & Vigna) and exposed through the `rand` crate's
//! [`RngCore`]/[`SeedableRng`] traits so that all of `rand`'s adapters remain
//! usable.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64 — used to expand seeds and derive independent sub-seeds.
///
/// This is the seeding generator recommended by the xoshiro authors: it has
/// good equidistribution and, crucially, maps nearby seeds to uncorrelated
/// outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a new SplitMix64 from a 64-bit seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output and advances the state.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The `xoshiro256**` generator: fast, 256 bits of state, period 2^256 − 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator from a 64-bit seed by expanding it with SplitMix64.
    pub fn from_seed_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is the one invalid state; SplitMix64 cannot
        // produce four consecutive zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Draws a uniform `f64` in the half-open interval `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits → uniform double in [0,1).
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a uniform `f64` in the open interval `(0, 1)`, never returning
    /// exactly zero (useful before taking a logarithm).
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }
}

impl RngCore for Xoshiro256StarStar {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256StarStar {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, slot) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *slot = u64::from_le_bytes(b);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        Xoshiro256StarStar::from_seed_u64(state)
    }
}

/// Identifies an independent random stream within a scenario.
///
/// The `domain` distinguishes the kind of randomness (fading, traffic,
/// contention, …) and `entity` the owning entity (terminal index, base
/// station, …).  Streams with different ids are statistically independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId {
    /// Randomness domain (e.g. "fading", "voice-traffic"). Use the constants
    /// on [`StreamId`] or any crate-specific value.
    pub domain: u32,
    /// Entity index within the domain (e.g. terminal id).
    pub entity: u32,
}

impl StreamId {
    /// Fading / shadowing processes.
    pub const DOMAIN_CHANNEL: u32 = 1;
    /// Voice source on/off process.
    pub const DOMAIN_VOICE: u32 = 2;
    /// Data burst arrival process.
    pub const DOMAIN_DATA: u32 = 3;
    /// Contention decisions (permission probability, slot choice).
    pub const DOMAIN_CONTENTION: u32 = 4;
    /// Physical-layer packet error draws.
    pub const DOMAIN_PHY: u32 = 5;
    /// Protocol-internal randomness (e.g. RAMA auction ids).
    pub const DOMAIN_PROTOCOL: u32 = 6;
    /// CSI estimation noise.
    pub const DOMAIN_ESTIMATION: u32 = 7;
    /// Terminal motion (random-waypoint targets, site shadowing draws).
    pub const DOMAIN_MOBILITY: u32 = 8;

    /// Creates a stream id.
    pub const fn new(domain: u32, entity: u32) -> Self {
        StreamId { domain, entity }
    }

    /// The entity index of per-cell (base-station) streams: cell `k` maps to
    /// `u32::MAX − k`.
    ///
    /// Terminal entities count **up** from 0 and cell entities count **down**
    /// from the top of the entity space, so the two families never collide
    /// for any realistic population, and every cell owns an independent
    /// sub-stream family `(domain, cell_entity(k))` per domain — the
    /// derivation that lets cells step in parallel without sharing a
    /// generator.  Cell 0 maps to `u32::MAX`, which is the entity the
    /// historical single-cell code used for its base-station streams, so the
    /// implicit cell reproduces those streams bit for bit.
    pub const fn cell_entity(cell: u32) -> u32 {
        u32::MAX - cell
    }
}

/// Factory deriving independent [`Xoshiro256StarStar`] streams from a master
/// scenario seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngStreams {
    master_seed: u64,
}

impl RngStreams {
    /// Creates a stream factory for the given master seed.
    pub const fn new(master_seed: u64) -> Self {
        RngStreams { master_seed }
    }

    /// The master seed this factory was created from.
    pub const fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Derives the sub-seed for a stream (exposed for testing).
    pub fn derive_seed(&self, id: StreamId) -> u64 {
        // Mix the master seed with the stream id through SplitMix64 twice so
        // that (domain, entity) pairs that differ in a single bit map to
        // uncorrelated seeds.
        let mut sm = SplitMix64::new(
            self.master_seed
                ^ ((id.domain as u64) << 32 | id.entity as u64).wrapping_mul(0xA24B_AED4_963E_E407),
        );
        let a = sm.next_u64();
        let mut sm2 = SplitMix64::new(a ^ (id.entity as u64).rotate_left(17));
        sm2.next_u64()
    }

    /// Creates the generator for a stream.
    pub fn stream(&self, id: StreamId) -> Xoshiro256StarStar {
        Xoshiro256StarStar::from_seed_u64(self.derive_seed(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 0 (from the public-domain reference code).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_is_deterministic_for_a_seed() {
        let mut a = Xoshiro256StarStar::from_seed_u64(42);
        let mut b = Xoshiro256StarStar::from_seed_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_give_different_sequences() {
        let mut a = Xoshiro256StarStar::from_seed_u64(1);
        let mut b = Xoshiro256StarStar::from_seed_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "two seeds should not produce matching outputs");
    }

    #[test]
    fn next_f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = Xoshiro256StarStar::from_seed_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!(
            (mean - 0.5).abs() < 0.01,
            "mean of U(0,1) samples was {mean}"
        );
    }

    #[test]
    fn next_f64_open_never_returns_zero() {
        let mut rng = Xoshiro256StarStar::from_seed_u64(3);
        for _ in 0..10_000 {
            assert!(rng.next_f64_open() > 0.0);
        }
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut rng = Xoshiro256StarStar::from_seed_u64(9);
        for len in [0usize, 1, 7, 8, 9, 31, 64] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(
                    buf.iter().any(|&b| b != 0),
                    "filled buffer of len {len} was all zero"
                );
            }
        }
    }

    #[test]
    fn seedable_from_seed_matches_layout() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        let mut rng = Xoshiro256StarStar::from_seed(seed);
        // Just exercise it; must not be the degenerate all-zero state.
        let x = rng.next_u64();
        let y = rng.next_u64();
        assert_ne!((x, y), (0, 0));
    }

    #[test]
    fn all_zero_seed_is_rescued() {
        let rng = Xoshiro256StarStar::from_seed([0u8; 32]);
        assert_ne!(rng.s, [0, 0, 0, 0]);
    }

    #[test]
    fn streams_are_reproducible_and_distinct() {
        let f = RngStreams::new(0xDEAD_BEEF);
        let id_a = StreamId::new(StreamId::DOMAIN_CHANNEL, 0);
        let id_b = StreamId::new(StreamId::DOMAIN_CHANNEL, 1);
        let id_c = StreamId::new(StreamId::DOMAIN_VOICE, 0);

        assert_eq!(f.derive_seed(id_a), f.derive_seed(id_a));
        assert_ne!(f.derive_seed(id_a), f.derive_seed(id_b));
        assert_ne!(f.derive_seed(id_a), f.derive_seed(id_c));

        let mut s1 = f.stream(id_a);
        let mut s2 = f.stream(id_a);
        assert_eq!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn cell_entities_count_down_from_the_top_of_the_entity_space() {
        // Cell 0 is the historical single-cell entity; higher cells walk
        // down without ever meeting the terminal entities counting up.
        assert_eq!(StreamId::cell_entity(0), u32::MAX);
        assert_eq!(StreamId::cell_entity(1), u32::MAX - 1);
        assert_eq!(StreamId::cell_entity(1000), u32::MAX - 1000);
        let f = RngStreams::new(42);
        let seeds: Vec<u64> = (0..32)
            .map(|c| {
                f.derive_seed(StreamId::new(
                    StreamId::DOMAIN_PROTOCOL,
                    StreamId::cell_entity(c),
                ))
            })
            .collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[..i] {
                assert_ne!(a, b, "cell sub-streams must be distinct");
            }
        }
    }

    #[test]
    fn streams_differ_across_master_seeds() {
        let id = StreamId::new(StreamId::DOMAIN_DATA, 5);
        let a = RngStreams::new(1).derive_seed(id);
        let b = RngStreams::new(2).derive_seed(id);
        assert_ne!(a, b);
    }

    #[test]
    fn stream_outputs_look_independent() {
        // Correlation between two sibling streams should be tiny.
        let f = RngStreams::new(123);
        let mut a = f.stream(StreamId::new(StreamId::DOMAIN_CHANNEL, 10));
        let mut b = f.stream(StreamId::new(StreamId::DOMAIN_CHANNEL, 11));
        let n = 20_000;
        let (mut sa, mut sb, mut sab, mut saa, mut sbb) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for _ in 0..n {
            let x = a.next_f64() - 0.5;
            let y = b.next_f64() - 0.5;
            sa += x;
            sb += y;
            sab += x * y;
            saa += x * x;
            sbb += y * y;
        }
        let nf = n as f64;
        let cov = sab / nf - (sa / nf) * (sb / nf);
        let corr = cov / ((saa / nf).sqrt() * (sbb / nf).sqrt());
        assert!(
            corr.abs() < 0.03,
            "cross-stream correlation too high: {corr}"
        );
    }
}
