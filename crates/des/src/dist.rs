//! Random variates used by the paper's source and channel models.
//!
//! The models of Section 2 and Section 4.2 of the paper need only a handful
//! of distributions: exponential (talkspurt/silence lengths, data burst
//! inter-arrival times and sizes), Bernoulli (permission probabilities),
//! Gaussian (in-phase/quadrature components of Rayleigh fading and the dB
//! value of log-normal shadowing), Rayleigh (fading envelope) and discrete
//! uniform (request-slot selection).  They are implemented here on top of the
//! uniform generator so the simulation carries no external distribution
//! dependency.

use crate::rng::Xoshiro256StarStar;

/// Distribution sampling helpers layered over a [`Xoshiro256StarStar`] stream.
///
/// `Sampler` borrows the generator mutably for each draw, so a single stream
/// can interleave draws from several distributions while remaining one
/// deterministic sequence.
#[derive(Debug)]
pub struct Sampler;

impl Sampler {
    /// Exponential variate with the given mean (inverse-CDF method).
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn exponential(rng: &mut Xoshiro256StarStar, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        -mean * rng.next_f64_open().ln()
    }

    /// Standard normal variate via the Box–Muller transform.
    pub fn standard_normal(rng: &mut Xoshiro256StarStar) -> f64 {
        let u1 = rng.next_f64_open();
        let u2 = rng.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal(rng: &mut Xoshiro256StarStar, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * Self::standard_normal(rng)
    }

    /// Rayleigh-distributed envelope with unit mean square (`E[c²] = 1`),
    /// matching the paper's normalisation of the short-term fading component.
    pub fn rayleigh_unit_power(rng: &mut Xoshiro256StarStar) -> f64 {
        // If X,Y ~ N(0, 1/2) then sqrt(X²+Y²) is Rayleigh with E[r²] = 1.
        let sigma = std::f64::consts::FRAC_1_SQRT_2;
        let x = sigma * Self::standard_normal(rng);
        let y = sigma * Self::standard_normal(rng);
        (x * x + y * y).sqrt()
    }

    /// Log-normal variate specified in decibels: the returned value `c`
    /// satisfies `20·log10(c) ~ N(mean_db, std_db²)`, the form used for the
    /// long-term shadowing component.
    pub fn lognormal_db(rng: &mut Xoshiro256StarStar, mean_db: f64, std_db: f64) -> f64 {
        let db = Self::normal(rng, mean_db, std_db);
        10f64.powf(db / 20.0)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(rng: &mut Xoshiro256StarStar, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        rng.next_f64() < p
    }

    /// Uniform integer in `[0, n)`.  Panics if `n == 0`.
    pub fn uniform_index(rng: &mut Xoshiro256StarStar, n: usize) -> usize {
        assert!(n > 0, "uniform_index requires a non-empty range");
        // Multiply-shift bounded generation (Lemire); bias is negligible for
        // the small ranges used here (slot counts), but use 64×64→128 to make
        // it exact for any n.
        let x = rng.next_u64_public();
        ((x as u128 * n as u128) >> 64) as usize
    }

    /// Geometric number of Bernoulli(p) failures before the first success,
    /// i.e. the number of frames a terminal waits before its permission
    /// probability lets it transmit.  Returns `u32::MAX` for `p == 0`.
    pub fn geometric_failures(rng: &mut Xoshiro256StarStar, p: f64) -> u32 {
        if p >= 1.0 {
            return 0;
        }
        if p <= 0.0 {
            return u32::MAX;
        }
        let u = rng.next_f64_open();
        let k = (u.ln() / (1.0 - p).ln()).floor();
        if k >= u32::MAX as f64 {
            u32::MAX
        } else {
            k as u32
        }
    }
}

/// Internal helper so `Sampler` can pull raw 64-bit values without importing
/// `rand::RngCore` at every call site.
trait RawU64 {
    fn next_u64_public(&mut self) -> u64;
}

impl RawU64 for Xoshiro256StarStar {
    fn next_u64_public(&mut self) -> u64 {
        use rand::RngCore;
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::from_seed_u64(seed)
    }

    #[test]
    fn exponential_mean_matches() {
        let mut r = rng(1);
        let n = 200_000;
        let mean = 1.35;
        let sum: f64 = (0..n).map(|_| Sampler::exponential(&mut r, mean)).sum();
        let m = sum / n as f64;
        assert!(
            (m - mean).abs() < 0.02,
            "sample mean {m} vs expected {mean}"
        );
    }

    #[test]
    fn exponential_is_always_non_negative() {
        let mut r = rng(2);
        for _ in 0..10_000 {
            assert!(Sampler::exponential(&mut r, 0.5) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "exponential mean must be positive")]
    fn exponential_rejects_zero_mean() {
        let mut r = rng(3);
        let _ = Sampler::exponential(&mut r, 0.0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng(4);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = Sampler::standard_normal(&mut r);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn rayleigh_unit_power_has_unit_second_moment() {
        let mut r = rng(5);
        let n = 200_000;
        let sumsq: f64 = (0..n)
            .map(|_| Sampler::rayleigh_unit_power(&mut r).powi(2))
            .sum();
        let second_moment = sumsq / n as f64;
        assert!(
            (second_moment - 1.0).abs() < 0.02,
            "E[c^2] = {second_moment}"
        );
    }

    #[test]
    fn rayleigh_median_matches_theory() {
        // Median of a Rayleigh with E[r²]=1 is sqrt(ln 2) ≈ 0.8326.
        let mut r = rng(6);
        let mut v: Vec<f64> = (0..50_001)
            .map(|_| Sampler::rayleigh_unit_power(&mut r))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[25_000];
        assert!((median - 0.8326).abs() < 0.01, "median {median}");
    }

    #[test]
    fn lognormal_db_mean_in_db_domain() {
        let mut r = rng(7);
        let n = 100_000;
        let mean_db = -3.0;
        let std_db = 6.0;
        let sum_db: f64 = (0..n)
            .map(|_| 20.0 * Sampler::lognormal_db(&mut r, mean_db, std_db).log10())
            .sum();
        let m = sum_db / n as f64;
        assert!((m - mean_db).abs() < 0.1, "dB-domain mean {m} vs {mean_db}");
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let mut r = rng(8);
        let n = 100_000;
        let p = 0.3;
        let hits = (0..n).filter(|_| Sampler::bernoulli(&mut r, p)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - p).abs() < 0.01, "frequency {freq}");
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut r = rng(9);
        assert!(Sampler::bernoulli(&mut r, 1.0));
        assert!(Sampler::bernoulli(&mut r, 1.5));
        assert!(!Sampler::bernoulli(&mut r, 0.0));
        assert!(!Sampler::bernoulli(&mut r, -0.2));
    }

    #[test]
    fn uniform_index_covers_range_uniformly() {
        let mut r = rng(10);
        let n = 6;
        let trials = 60_000;
        let mut counts = vec![0usize; n];
        for _ in 0..trials {
            let i = Sampler::uniform_index(&mut r, n);
            assert!(i < n);
            counts[i] += 1;
        }
        let expected = trials / n;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket {i} count {c} far from expected {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn uniform_index_rejects_empty_range() {
        let mut r = rng(11);
        let _ = Sampler::uniform_index(&mut r, 0);
    }

    #[test]
    fn geometric_failures_mean() {
        let mut r = rng(12);
        let p = 0.25;
        let n = 100_000;
        let sum: f64 = (0..n)
            .map(|_| Sampler::geometric_failures(&mut r, p) as f64)
            .sum();
        let mean = sum / n as f64;
        let expected = (1.0 - p) / p; // mean number of failures before success
        assert!((mean - expected).abs() < 0.05, "mean {mean} vs {expected}");
    }

    #[test]
    fn geometric_failures_edge_cases() {
        let mut r = rng(13);
        assert_eq!(Sampler::geometric_failures(&mut r, 1.0), 0);
        assert_eq!(Sampler::geometric_failures(&mut r, 0.0), u32::MAX);
    }
}
