//! Capacity searches over measured sweep curves.
//!
//! The paper summarises its figures with statements such as "CHARISMA can
//! accommodate approximately 100 voice users at the 1 % dropping-rate
//! threshold" or "at a QoS level of (1 s, 0.25) the capacity of CHARISMA is
//! about 1.5× that of D-TDMA/VR".  These helpers extract exactly those
//! numbers from `(load, metric)` sweep curves by monotone linear
//! interpolation.

/// Finds the largest load at which `metric ≤ threshold`, interpolating
/// linearly between the last compliant point and the first violating point.
///
/// Returns:
///
/// * `None` for degenerate input — an empty curve, or points not sorted by
///   increasing load (a campaign with a failed point can produce either;
///   a capacity simply cannot be read off such a curve),
/// * `None` if the very first point already violates the threshold (the
///   protocol cannot even support the smallest load measured), and
/// * the largest measured load if the threshold is never exceeded (the curve
///   never crosses within the measured range).
pub fn capacity_at_threshold(points: &[(f64, f64)], threshold: f64) -> Option<f64> {
    if points.is_empty() || points.windows(2).any(|w| w[0].0 > w[1].0) {
        return None;
    }

    if points[0].1 > threshold {
        return None;
    }
    for w in points.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if y1 > threshold {
            // Interpolate the crossing between (x0,y0) and (x1,y1).
            if (y1 - y0).abs() < f64::EPSILON {
                return Some(x0);
            }
            let t = (threshold - y0) / (y1 - y0);
            return Some(x0 + t.clamp(0.0, 1.0) * (x1 - x0));
        }
    }
    Some(points.last().unwrap().0)
}

/// Finds the load at which a metric first crosses *below* a threshold for
/// curves that are "good when high" (e.g. per-user throughput): the largest
/// load with `metric ≥ threshold`.  Degenerate input (empty or unsorted)
/// yields `None`, as in [`capacity_at_threshold`].
pub fn crossing_load(points: &[(f64, f64)], threshold: f64) -> Option<f64> {
    let inverted: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x, -y)).collect();
    capacity_at_threshold(&inverted, -threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_the_crossing() {
        // loss of 0.5% at 80 users, 2% at 120 users: 1% is crossed at ~93.3.
        let pts = [(40.0, 0.001), (80.0, 0.005), (120.0, 0.02)];
        let cap = capacity_at_threshold(&pts, 0.01).unwrap();
        assert!(
            (cap - (80.0 + 40.0 * (0.005 / 0.015))).abs() < 1e-9,
            "capacity {cap}"
        );
    }

    #[test]
    fn returns_none_when_first_point_violates() {
        let pts = [(10.0, 0.05), (20.0, 0.2)];
        assert_eq!(capacity_at_threshold(&pts, 0.01), None);
    }

    #[test]
    fn returns_last_load_when_threshold_never_crossed() {
        let pts = [(10.0, 0.001), (20.0, 0.002), (30.0, 0.005)];
        assert_eq!(capacity_at_threshold(&pts, 0.01), Some(30.0));
    }

    #[test]
    fn flat_segment_at_threshold_returns_left_edge() {
        let pts = [(10.0, 0.01), (20.0, 0.01), (30.0, 0.5)];
        let cap = capacity_at_threshold(&pts, 0.01).unwrap();
        assert!((cap - 20.0).abs() < 1e-9);
    }

    #[test]
    fn unsorted_points_yield_none() {
        // A curve assembled from a campaign with a failed point can arrive
        // out of order; there is no capacity to read off it.
        let pts = [(20.0, 0.001), (10.0, 0.002)];
        assert_eq!(capacity_at_threshold(&pts, 0.01), None);
        assert_eq!(crossing_load(&pts, 0.01), None);
    }

    #[test]
    fn empty_points_yield_none() {
        assert_eq!(capacity_at_threshold(&[], 0.01), None);
        assert_eq!(crossing_load(&[], 0.01), None);
    }

    #[test]
    fn crossing_load_for_good_when_high_metrics() {
        // Per-user throughput decreasing with load; threshold 0.25.
        let pts = [(10.0, 0.9), (20.0, 0.5), (40.0, 0.2)];
        let cap = crossing_load(&pts, 0.25).unwrap();
        // Crossing between 20 (0.5) and 40 (0.2): 0.25 at 20 + 20*(0.25/0.3) from the top.
        let expected = 20.0 + 20.0 * ((0.5 - 0.25) / 0.3);
        assert!(
            (cap - expected).abs() < 1e-9,
            "capacity {cap} vs {expected}"
        );
    }

    #[test]
    fn crossing_load_none_when_already_below() {
        let pts = [(10.0, 0.1), (20.0, 0.05)];
        assert_eq!(crossing_load(&pts, 0.25), None);
    }
}
