//! Streaming (single-pass) statistics.

use serde::{Deserialize, Serialize};

/// Welford running mean / variance accumulator with min/max tracking.
///
/// Numerically stable for arbitrarily long runs, which matters because a
/// single sweep point simulates hundreds of thousands of frames.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct RunningStat {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStat {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStat {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(
            x.is_finite(),
            "RunningStat observation must be finite, got {x}"
        );
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (None when empty).
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation (None when empty).
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stat_is_benign() {
        let s = RunningStat::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn mean_and_variance_match_closed_form() {
        let mut s = RunningStat::new();
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // population variance is 4, sample variance is 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_single_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStat::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningStat::new();
        let mut b = RunningStat::new();
        for &x in &xs[..400] {
            a.push(x);
        }
        for &x in &xs[400..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStat::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&RunningStat::new());
        assert_eq!(a, before);

        let mut empty = RunningStat::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let mut s = RunningStat::new();
        s.push(42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.mean(), 42.0);
    }
}
