//! Streaming (single-pass) statistics and replication-level confidence
//! intervals.
//!
//! [`RunningStat`] is the Welford accumulator used both inside a run (per
//! frame) and across independent replications of a sweep point.  For the
//! replication use the sample count is small (3–10), so interval estimates
//! use the Student-t distribution ([`student_t_975`]) rather than the normal
//! approximation; [`RepsAccumulator`] bundles the three headline QoS metrics
//! of the paper's evaluation into one across-replications accumulator with a
//! relative-precision stopping criterion.

use crate::counters::RunMetrics;
use serde::{Deserialize, Serialize};

/// Two-sided 95 % critical value of the Student-t distribution (the 97.5 %
/// quantile) for `df` degrees of freedom.
///
/// Exact table values for `df <= 30`, then the conventional coarse steps
/// (40, 60, 120) down to the normal limit 1.96.  `df == 0` (a single
/// observation, no variance estimate) returns infinity: one replication
/// carries no interval information.
pub fn student_t_975(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

/// Welford running mean / variance accumulator with min/max tracking.
///
/// Numerically stable for arbitrarily long runs, which matters because a
/// single sweep point simulates hundreds of thousands of frames.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct RunningStat {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStat {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStat {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Reconstructs an accumulator from raw Welford state, the inverse of
    /// [`RunningStat::raw_parts`].  Used by the campaign checkpoint codec to
    /// persist accumulators bit-exactly across a crash/resume boundary; the
    /// fields are trusted verbatim, so only feed values previously produced
    /// by `raw_parts`.
    pub fn from_raw_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        RunningStat {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Exposes the raw Welford state `(count, mean, m2, min, max)` for exact
    /// persistence.  Unlike the derived accessors ([`RunningStat::mean`],
    /// [`RunningStat::min`], …) this performs no empty-accumulator
    /// normalisation, so `from_raw_parts(raw_parts(s)) == s` bit for bit.
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(
            x.is_finite(),
            "RunningStat observation must be finite, got {x}"
        );
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (None when empty).
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation (None when empty).
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Standard error of the mean (0 with fewer than two observations).
    pub fn std_error(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.variance() / self.count as f64).sqrt()
        }
    }

    /// Half-width of the 95 % Student-t confidence interval on the mean
    /// (0 with fewer than two observations — a single replication has no
    /// interval estimate, and callers render it as a zero-width interval).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            student_t_975(self.count - 1) * self.std_error()
        }
    }

    /// Relative half-width of the 95 % confidence interval,
    /// `ci95_half_width / |mean|` — the precision measure of the sequential
    /// stopping rule.  A degenerate interval (half-width 0, e.g. every
    /// replication observed an identical value such as zero loss) is
    /// perfectly precise and returns 0; a non-degenerate interval around a
    /// zero mean cannot be expressed relatively and returns infinity.
    pub fn rel_ci95_half_width(&self) -> f64 {
        let hw = self.ci95_half_width();
        if hw == 0.0 {
            0.0
        } else if self.mean() == 0.0 {
            f64::INFINITY
        } else {
            hw / self.mean().abs()
        }
    }
}

/// Across-replication accumulator for the paper's three headline QoS
/// metrics: voice packet loss rate, data throughput per frame and mean data
/// access delay.
///
/// One accumulator per sweep point: every independent replication pushes its
/// [`RunMetrics`] once, and the campaign layer renders the per-metric means
/// and 95 % Student-t confidence intervals into the CSV.  Replications of a
/// point always run sequentially inside one sweep worker, so the
/// accumulation order — and therefore every derived statistic, bit for bit —
/// is independent of the sweep thread count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct RepsAccumulator {
    voice_loss: RunningStat,
    data_throughput: RunningStat,
    data_delay: RunningStat,
}

impl RepsAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reassembles an accumulator from its three per-metric stats, in the
    /// order `(voice_loss, data_throughput, data_delay)`.  Checkpoint-codec
    /// counterpart of the borrow accessors below.
    pub fn from_parts(
        voice_loss: RunningStat,
        data_throughput: RunningStat,
        data_delay: RunningStat,
    ) -> Self {
        RepsAccumulator {
            voice_loss,
            data_throughput,
            data_delay,
        }
    }

    /// Adds one replication's run metrics.
    pub fn push(&mut self, metrics: &RunMetrics) {
        self.voice_loss.push(metrics.voice_loss_rate());
        self.data_throughput
            .push(metrics.data_throughput_per_frame());
        self.data_delay.push(metrics.data_delay_secs());
    }

    /// Number of replications accumulated.
    pub fn reps(&self) -> u64 {
        self.voice_loss.count()
    }

    /// Voice packet loss rate across replications.
    pub fn voice_loss(&self) -> &RunningStat {
        &self.voice_loss
    }

    /// Data throughput (packets per frame) across replications.
    pub fn data_throughput(&self) -> &RunningStat {
        &self.data_throughput
    }

    /// Mean data access delay (seconds) across replications.
    pub fn data_delay(&self) -> &RunningStat {
        &self.data_delay
    }

    /// The largest relative 95 % CI half-width across the three metrics —
    /// the quantity the sequential stopping rule drives below its target.
    pub fn max_rel_ci95_half_width(&self) -> f64 {
        self.voice_loss
            .rel_ci95_half_width()
            .max(self.data_throughput.rel_ci95_half_width())
            .max(self.data_delay.rel_ci95_half_width())
    }

    /// Whether every metric's relative 95 % CI half-width is at or below
    /// `target`.  Requires at least two replications: with one there is no
    /// variance estimate and no evidence of precision.
    pub fn within_target(&self, target: f64) -> bool {
        self.reps() >= 2 && self.max_rel_ci95_half_width() <= target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stat_is_benign() {
        let s = RunningStat::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn mean_and_variance_match_closed_form() {
        let mut s = RunningStat::new();
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // population variance is 4, sample variance is 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_single_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStat::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningStat::new();
        let mut b = RunningStat::new();
        for &x in &xs[..400] {
            a.push(x);
        }
        for &x in &xs[400..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStat::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&RunningStat::new());
        assert_eq!(a, before);

        let mut empty = RunningStat::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let mut s = RunningStat::new();
        s.push(42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.mean(), 42.0);
    }

    #[test]
    fn student_t_table_matches_reference_values() {
        assert_eq!(student_t_975(0), f64::INFINITY);
        assert!((student_t_975(1) - 12.706).abs() < 1e-9);
        assert!((student_t_975(2) - 4.303).abs() < 1e-9);
        assert!((student_t_975(7) - 2.365).abs() < 1e-9);
        assert!((student_t_975(30) - 2.042).abs() < 1e-9);
        assert!((student_t_975(35) - 2.021).abs() < 1e-9);
        assert!((student_t_975(100) - 1.980).abs() < 1e-9);
        assert_eq!(student_t_975(10_000), 1.960);
        // Monotone non-increasing in the degrees of freedom.
        for df in 1..200 {
            assert!(student_t_975(df) >= student_t_975(df + 1), "df {df}");
        }
    }

    #[test]
    fn ci95_half_width_matches_closed_form() {
        // Sample [2,4,4,4,5,5,7,9]: n = 8, mean = 5, s^2 = 32/7.
        let mut s = RunningStat::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        let se = (32.0 / 7.0 / 8.0_f64).sqrt();
        assert!((s.std_error() - se).abs() < 1e-12);
        let hw = 2.365 * se; // t_{0.975, df=7} = 2.365
        assert!(
            (s.ci95_half_width() - hw).abs() < 1e-12,
            "{}",
            s.ci95_half_width()
        );
        assert!((s.rel_ci95_half_width() - hw / 5.0).abs() < 1e-12);
    }

    #[test]
    fn ci95_is_zero_width_without_a_variance_estimate() {
        let mut s = RunningStat::new();
        assert_eq!(s.ci95_half_width(), 0.0);
        s.push(3.0);
        assert_eq!(s.ci95_half_width(), 0.0);
        assert_eq!(s.rel_ci95_half_width(), 0.0);
    }

    #[test]
    fn rel_ci95_handles_zero_means() {
        // All-identical zeros: degenerate interval, perfectly precise.
        let mut zeros = RunningStat::new();
        zeros.push(0.0);
        zeros.push(0.0);
        assert_eq!(zeros.rel_ci95_half_width(), 0.0);
        // Symmetric sample around zero: relative precision is undefined.
        let mut sym = RunningStat::new();
        sym.push(-1.0);
        sym.push(1.0);
        assert_eq!(sym.rel_ci95_half_width(), f64::INFINITY);
    }

    #[test]
    fn raw_parts_round_trip_is_bit_exact() {
        let mut s = RunningStat::new();
        for x in [0.1, -3.5, 7.25, 0.1 + 0.2] {
            s.push(x);
        }
        let (count, mean, m2, min, max) = s.raw_parts();
        let back = RunningStat::from_raw_parts(count, mean, m2, min, max);
        assert_eq!(back, s);
        // Empty accumulators round-trip too, sentinels (±inf) included.
        let empty = RunningStat::new();
        let (c, m, q, lo, hi) = empty.raw_parts();
        assert_eq!(RunningStat::from_raw_parts(c, m, q, lo, hi), empty);
    }

    #[test]
    fn reps_accumulator_tracks_all_three_metrics() {
        let mut acc = RepsAccumulator::new();
        assert_eq!(acc.reps(), 0);
        assert!(!acc.within_target(1.0), "no replications, no evidence");
        for (gen, dropped, delivered, delay) in [
            (1000, 10, 200, 40.0),
            (1000, 14, 210, 44.0),
            (1000, 12, 190, 36.0),
        ] {
            let mut m = RunMetrics {
                frames: 100,
                ..RunMetrics::default()
            };
            m.voice.generated = gen;
            m.voice.dropped_deadline = dropped;
            m.data.delivered = delivered;
            m.data.delay.push(delay);
            acc.push(&m);
        }
        assert_eq!(acc.reps(), 3);
        assert!((acc.voice_loss().mean() - 0.012).abs() < 1e-12);
        assert!((acc.data_throughput().mean() - 2.0).abs() < 1e-12);
        assert!((acc.data_delay().mean() - 40.0).abs() < 1e-12);
        assert!(acc.max_rel_ci95_half_width() > 0.0);
        assert!(acc.within_target(f64::INFINITY));
        assert!(!acc.within_target(1e-9));
    }
}
