//! # charisma-metrics — statistics and QoS metrics
//!
//! Collects the three performance measures of the paper's evaluation
//! (Section 5) plus the engineering statistics used for analysis:
//!
//! * **Voice packet loss rate** `P_loss = (N_tx − N_rv) / N_tx` — combining
//!   deadline drops at the terminal and transmission errors on the channel.
//! * **Data throughput** δ — average number of data packets successfully
//!   received at the base station per frame.
//! * **Data delay** `D_d` — average time a data packet waits from its arrival
//!   at the terminal until the start of its successful transmission
//!   (retransmissions after errors therefore add delay, as in the paper).
//! * Slot utilisation and contention statistics used by the discussion
//!   section reproduction (Section 5.3).
//!
//! [`capacity`] implements the capacity searches quoted in the paper, e.g.
//! "number of voice users supportable at a 1 % loss threshold" and the
//! (delay ≤ 1 s, throughput ≥ 0.25) QoS operating point for data.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod capacity;
pub mod counters;
pub mod stats;
pub mod trend;

pub use capacity::{capacity_at_threshold, crossing_load};
pub use counters::{
    CellCounters, ContentionStats, DataStats, HandoffStats, RunMetrics, SlotStats, VoiceStats,
};
pub use stats::{student_t_975, RepsAccumulator, RunningStat};
pub use trend::{detect_drift, DriftKind, DriftReport};
