//! Slow-drift detection over a performance-history series.
//!
//! The per-run campaign gate compares one fresh measurement against one
//! baseline with a generous tolerance (30 % by default), so a regression
//! that arrives in small steps — each inside tolerance — passes every
//! individual gate while the cumulative slowdown grows unbounded.  This
//! module supplies the pure statistics behind `campaign trend`: given a
//! chronological series of health values (frames per second, or a gate
//! margin where larger is healthier), it reports whether the tail of the
//! series shows monotone or cumulative decline.
//!
//! The detector is deliberately simple and deterministic — no smoothing, no
//! randomised tests — so that a trend verdict is reproducible from the
//! history file alone.

/// Why a series was flagged as drifting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// The last `streak` runs were each strictly worse than their
    /// predecessor.
    Consecutive,
    /// The latest value sits below the series peak by at least the
    /// cumulative threshold, even if individual steps were not monotone.
    Cumulative,
}

/// Verdict of [`detect_drift`] on one health series.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Length of the strictly-declining suffix ending at the latest value
    /// (a lone value has streak 0; `a > b` contributes 1).
    pub declining_streak: usize,
    /// Relative drop of the latest value from the series maximum,
    /// `(peak - latest) / peak`, clamped to 0 when the peak is not positive.
    pub drop_from_peak: f64,
    /// The flagged drift kinds, in severity order (consecutive first).
    /// Empty means the series is healthy.
    pub kinds: Vec<DriftKind>,
}

impl DriftReport {
    /// Whether any drift criterion fired.
    pub fn is_drifting(&self) -> bool {
        !self.kinds.is_empty()
    }
}

/// Scans a chronological health series (larger = healthier) for slow drift.
///
/// Flags [`DriftKind::Consecutive`] when the strictly-declining suffix of
/// the series spans at least `min_consecutive` declining *steps* (so with
/// `min_consecutive = 3` the last four values must each be worse than the
/// one before), and [`DriftKind::Cumulative`] when the latest value has
/// fallen at least `cumulative_threshold` (relative) below the series peak.
/// Non-finite values are ignored as corrupt. Series with fewer than two
/// finite values carry no trend information and are never flagged.
pub fn detect_drift(
    values: &[f64],
    min_consecutive: usize,
    cumulative_threshold: f64,
) -> DriftReport {
    let clean: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if clean.len() < 2 {
        return DriftReport {
            declining_streak: 0,
            drop_from_peak: 0.0,
            kinds: Vec::new(),
        };
    }

    let mut streak = 0usize;
    for w in clean.windows(2).rev() {
        if w[1] < w[0] {
            streak += 1;
        } else {
            break;
        }
    }

    let peak = clean.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let latest = *clean.last().expect("non-empty");
    let drop_from_peak = if peak > 0.0 {
        ((peak - latest) / peak).max(0.0)
    } else {
        0.0
    };

    let mut kinds = Vec::new();
    if min_consecutive > 0 && streak >= min_consecutive {
        kinds.push(DriftKind::Consecutive);
    }
    if cumulative_threshold > 0.0 && drop_from_peak >= cumulative_threshold {
        kinds.push(DriftKind::Cumulative);
    }
    DriftReport {
        declining_streak: streak,
        drop_from_peak,
        kinds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_series_are_never_flagged() {
        for series in [&[][..], &[10.0][..], &[f64::NAN, 10.0][..]] {
            let r = detect_drift(series, 1, 0.01);
            assert!(!r.is_drifting(), "{series:?}");
            assert_eq!(r.declining_streak, 0);
        }
    }

    #[test]
    fn healthy_flat_series_passes() {
        let r = detect_drift(&[100.0, 100.0, 100.0, 100.0], 3, 0.15);
        assert!(!r.is_drifting());
        assert_eq!(r.declining_streak, 0);
        assert_eq!(r.drop_from_peak, 0.0);
    }

    #[test]
    fn three_consecutive_declines_are_flagged() {
        // Each step ~4 % down — far inside a 30 % per-run gate tolerance.
        let r = detect_drift(&[100.0, 96.0, 92.0, 88.5], 3, 0.50);
        assert_eq!(r.declining_streak, 3);
        assert_eq!(r.kinds, vec![DriftKind::Consecutive]);
    }

    #[test]
    fn recovery_resets_the_streak() {
        let r = detect_drift(&[100.0, 96.0, 92.0, 95.0, 94.0], 3, 0.50);
        assert_eq!(r.declining_streak, 1);
        assert!(!r.is_drifting());
    }

    #[test]
    fn cumulative_drop_is_flagged_without_monotone_decline() {
        // Sawtooth decline: never three in a row, but 20 % off the peak.
        let r = detect_drift(&[100.0, 92.0, 95.0, 87.0, 89.0, 80.0], 3, 0.15);
        assert!(r.declining_streak < 3);
        assert!((r.drop_from_peak - 0.20).abs() < 1e-12);
        assert_eq!(r.kinds, vec![DriftKind::Cumulative]);
    }

    #[test]
    fn both_criteria_can_fire_together() {
        let r = detect_drift(&[100.0, 90.0, 80.0, 70.0], 3, 0.15);
        assert_eq!(r.kinds, vec![DriftKind::Consecutive, DriftKind::Cumulative]);
        assert!(r.is_drifting());
    }

    #[test]
    fn non_finite_values_are_skipped() {
        let r = detect_drift(&[100.0, f64::NAN, 96.0, f64::INFINITY, 92.0, 88.0], 3, 0.50);
        assert_eq!(r.declining_streak, 3);
        assert_eq!(r.kinds, vec![DriftKind::Consecutive]);
    }

    #[test]
    fn non_positive_peak_disables_relative_drop() {
        let r = detect_drift(&[-1.0, -2.0], 5, 0.15);
        assert_eq!(r.drop_from_peak, 0.0);
        assert!(!r.is_drifting());
    }
}
