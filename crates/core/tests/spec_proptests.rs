//! Property-based tests for the handwritten [`ScenarioSpec`] JSON codec:
//! every representable spec — including the multi-cell `cells`/`layout`/
//! `handoff` fields — must survive `spec -> JSON -> spec` exactly, and any
//! JSON object carrying an unknown key (at the top level or inside a nested
//! object) must be rejected, never silently ignored.
//!
//! The proptest runner is the workspace's deterministic fixed-seed shim, so
//! the suite explores the same cases on every machine.

use charisma::spec::{Axis, DurationSpec, FrameBudget, QueueToggle, RampSpec, RepsSpec};
use charisma::{
    HandoffAdmission, HandoffConfig, Json, Layout, ProtocolKind, ReplicationPolicy, ScenarioSpec,
};
use charisma_radio::{ChannelMode, SpeedProfile};
use proptest::prelude::*;

/// Builds a valid spec from raw generator draws.  All float-valued fields
/// are quantised to exactly representable values so textual JSON round-trips
/// are bit-exact by construction (the codec itself preserves any shortest-
/// round-trip float, but the property should not depend on that).
#[allow(clippy::too_many_arguments)]
fn build_spec(
    proto_mask: u32,
    axis_pick: u32,
    mut nv_grid: Vec<u32>,
    mut nd_grid: Vec<u32>,
    speed_pick: u32,
    speed_a: u32,
    speed_b: u32,
    fast_quarters: u32,
    mut speed_grid: Vec<u32>,
    eager: bool,
    duration_pick: bool,
    warmup: u64,
    measured: u64,
    queue_pick: u32,
    seed: Option<u64>,
    csi_aware: bool,
    ramp_quarters: Option<u32>,
    reps_pick: u32,
    cells: u32,
    line_layout: bool,
    radius_steps: u32,
    queue_admission: bool,
    unlimited_capacity: bool,
    capacity_extra: u32,
    retry_frames: u64,
    hysteresis_steps: u32,
) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("prop");

    spec.protocols = ProtocolKind::ALL
        .into_iter()
        .enumerate()
        .filter(|(i, _)| proto_mask & (1 << i) != 0)
        .map(|(_, p)| p)
        .collect();
    if spec.protocols.is_empty() {
        spec.protocols = vec![ProtocolKind::Charisma];
    }

    nv_grid.sort_unstable();
    nv_grid.dedup();
    nd_grid.sort_unstable();
    nd_grid.dedup();
    spec.voice_users = nv_grid; // elements >= 1, so (0, 0) is unreachable
    spec.data_users = nd_grid;

    spec.axis = match axis_pick {
        0 => Axis::VoiceUsers,
        1 => Axis::DataUsers,
        2 => Axis::SpeedKmh,
        _ => Axis::Single,
    };
    if spec.axis == Axis::SpeedKmh {
        speed_grid.sort_unstable();
        speed_grid.dedup();
        spec.speed_grid_kmh = speed_grid.into_iter().map(f64::from).collect();
    }

    let (lo, hi) = (speed_a.min(speed_b), speed_a.max(speed_b));
    spec.speed = match speed_pick {
        0 => SpeedProfile::Fixed(f64::from(lo)),
        1 => SpeedProfile::Uniform {
            min_kmh: f64::from(lo),
            max_kmh: f64::from(hi),
        },
        _ => SpeedProfile::Bimodal {
            slow_kmh: f64::from(lo),
            fast_kmh: f64::from(hi),
            fraction_fast: f64::from(fast_quarters % 5) / 4.0,
        },
    };

    spec.channel_mode = if eager {
        ChannelMode::Eager
    } else {
        ChannelMode::Lazy
    };
    spec.duration = if duration_pick {
        DurationSpec::Frames { warmup, measured }
    } else {
        DurationSpec::Profile
    };

    let queue_capable = spec.protocols.iter().any(|p| p.supports_request_queue());
    spec.request_queue = match queue_pick % 3 {
        _ if !queue_capable => QueueToggle::Off,
        0 => QueueToggle::Off,
        1 => QueueToggle::On,
        _ => QueueToggle::Both,
    };

    spec.seed = seed;
    spec.csi_aware = csi_aware;
    if let Some(quarters) = ramp_quarters {
        spec.ramp = Some(RampSpec {
            initial_voice: spec.voice_users[0],
            at_measured_fraction: f64::from(quarters % 4) / 4.0,
        });
    }
    spec.replications = match reps_pick % 3 {
        0 => RepsSpec::Profile,
        1 => RepsSpec::Policy(ReplicationPolicy::fixed(1 + reps_pick % 8)),
        _ => RepsSpec::Policy(ReplicationPolicy::adaptive(
            1 + reps_pick % 4,
            1 + reps_pick % 4 + 3,
            0.25,
        )),
    };

    spec.cells = cells;
    if cells > 1 {
        let cell_radius_m = f64::from(radius_steps) * 25.0;
        spec.layout = if line_layout {
            Layout::Line { cell_radius_m }
        } else {
            Layout::Hex { cell_radius_m }
        };
        spec.handoff = HandoffConfig {
            admission: if queue_admission {
                HandoffAdmission::Queue
            } else {
                HandoffAdmission::DropOnFull
            },
            cell_capacity: if unlimited_capacity {
                0
            } else {
                spec.voice_users.last().unwrap() + spec.data_users.last().unwrap() + capacity_extra
            },
            retry_frames,
            hysteresis_m: f64::from(hysteresis_steps) * 2.5,
        };
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// spec -> JSON -> spec is the identity, and re-encoding yields the
    /// exact same bytes (the determinism the manifest relies on).
    #[test]
    fn spec_json_round_trip_is_exact(
        proto_mask in 1u32..64,
        axis_pick in 0u32..4,
        nv_grid in proptest::collection::vec(1u32..200, 1..4),
        nd_grid in proptest::collection::vec(0u32..40, 1..4),
        speed_pick in 0u32..3,
        speed_a in 0u32..120,
        speed_b in 1u32..120,
        fast_quarters in 0u32..8,
        speed_grid in proptest::collection::vec(1u32..130, 1..5),
        eager in any::<bool>(),
        duration_pick in any::<bool>(),
        warmup in 0u64..5_000,
        measured in 1u64..50_000,
        queue_pick in 0u32..3,
        seed_raw in 0u64..1_000_000,
        with_seed in any::<bool>(),
        csi_aware in any::<bool>(),
        with_ramp in any::<bool>(),
        ramp_quarters in 0u32..4,
        reps_pick in 0u32..9,
        cells in 1u32..12,
        line_layout in any::<bool>(),
        radius_steps in 2u32..40,
        queue_admission in any::<bool>(),
        unlimited_capacity in any::<bool>(),
        capacity_extra in 0u32..50,
        retry_frames in 1u64..400,
        hysteresis_steps in 0u32..12,
    ) {
        let spec = build_spec(
            proto_mask, axis_pick, nv_grid, nd_grid, speed_pick, speed_a, speed_b,
            fast_quarters, speed_grid, eager, duration_pick, warmup, measured,
            queue_pick, with_seed.then_some(seed_raw), csi_aware,
            with_ramp.then_some(ramp_quarters), reps_pick, cells, line_layout,
            radius_steps, queue_admission, unlimited_capacity, capacity_extra,
            retry_frames, hysteresis_steps,
        );
        prop_assert!(spec.validate().is_ok(), "generator produced an invalid spec");

        let text = spec.to_json_string();
        let back = ScenarioSpec::from_json_str(&text)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}\n{text}")))?;
        prop_assert_eq!(&back, &spec, "round-trip changed the spec: {}", text);
        prop_assert_eq!(back.to_json_string(), text, "re-encoding changed the bytes");

        // Expansion sanity: every expanded point carries a valid SimConfig
        // and the multi-cell section exactly when cells > 1.
        let budget = FrameBudget { warmup: 10, measured: 100 };
        let points = spec.expand(budget)
            .map_err(|e| TestCaseError::fail(format!("expand failed: {e}")))?;
        prop_assert!(!points.is_empty());
        for p in &points {
            p.point.config.validate();
            prop_assert_eq!(p.point.config.system.is_some(), spec.cells > 1);
        }
    }

    /// An unknown key anywhere in the object tree is a hard error.
    #[test]
    fn unknown_keys_are_rejected_wherever_they_hide(
        cells in 1u32..6,
        line_layout in any::<bool>(),
        key_tag in 0u32..1_000_000,
        target_pick in 0u32..4,
    ) {
        let mut spec = ScenarioSpec::new("fuzz");
        spec.cells = cells;
        if cells > 1 {
            spec.layout = if line_layout {
                Layout::Line { cell_radius_m: 150.0 }
            } else {
                Layout::Hex { cell_radius_m: 150.0 }
            };
            spec.handoff = HandoffConfig::default();
        }
        let parsed = Json::parse(&spec.to_json_string()).expect("encoder emits valid JSON");
        let Json::Object(mut pairs) = parsed else {
            return Err(TestCaseError::fail("spec must encode to an object"));
        };
        let rogue = format!("zz_unknown_{key_tag}");
        // Inject into the top level or a nested object, as available.
        let target = match target_pick {
            1 if cells > 1 => "layout",
            2 if cells > 1 => "handoff",
            3 => "speed",
            _ => "",
        };
        if target.is_empty() {
            pairs.push((rogue.clone(), Json::Bool(true)));
        } else {
            let nested = pairs
                .iter_mut()
                .find(|(k, _)| k == target)
                .map(|(_, v)| v)
                .expect("field present");
            let Json::Object(nested_pairs) = nested else {
                return Err(TestCaseError::fail("nested field must be an object"));
            };
            nested_pairs.push((rogue.clone(), Json::Bool(true)));
        }
        let mutated = Json::Object(pairs);
        let err = ScenarioSpec::from_json(&mutated);
        prop_assert!(err.is_err(), "unknown key {} in {:?} was accepted", rogue, target);
        let msg = err.unwrap_err().to_string();
        prop_assert!(
            msg.contains("unknown key"),
            "error should call out the unknown key, got: {}", msg
        );
    }
}
