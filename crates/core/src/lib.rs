//! # charisma — channel-adaptive uplink access control
//!
//! A from-scratch reproduction of the CHARISMA protocol and its evaluation
//! platform from
//!
//! > Y.-K. Kwok and V. K. N. Lau, *"A Novel Channel-Adaptive Uplink Access
//! > Control Protocol for Nomadic Computing"*, ICPP 2000 / IEEE TPDS 13(11),
//! > 2002.
//!
//! The crate provides:
//!
//! * the six uplink MAC protocols the paper compares — CHARISMA, D-TDMA/FR,
//!   D-TDMA/VR, RAMA, RMAV and DRMA — behind one [`protocols::UplinkMac`]
//!   trait;
//! * the common simulation platform: the terminal population
//!   ([`terminal::Terminal`] construction records stored columnar-ly in
//!   [`columns::TerminalColumns`]), the per-frame execution environment
//!   ([`world::FrameWorld`]) and the scenario runner ([`scenario::Scenario`]);
//! * the scenario configuration ([`config::SimConfig`]) encoding the paper's
//!   Table 1 parameters;
//! * multi-threaded parameter sweeps ([`sweep`]) used by the benchmark
//!   harness to regenerate every figure of the evaluation section; and
//! * the declarative scenario-campaign layer ([`spec`], [`campaign`], backed
//!   by the dependency-free [`json`] codec): named [`spec::ScenarioSpec`]
//!   overrides that serialise to JSON and expand into sweep points, so whole
//!   experiments are data instead of hand-rolled loops.  The `campaign`
//!   binary in `charisma_bench` drives every experiment of the paper (and
//!   several the paper never plotted) through this layer — see
//!   `EXPERIMENTS.md` at the repository root.
//!
//! ## Quick start
//!
//! ```
//! use charisma::{ProtocolKind, Scenario, SimConfig};
//!
//! // 20 voice terminals, 2 data terminals, short measurement window.
//! let mut config = SimConfig::quick_test();
//! config.num_voice = 20;
//! config.num_data = 2;
//!
//! let scenario = Scenario::new(config);
//! let report = scenario.run(ProtocolKind::Charisma);
//! println!("{}", report.summary());
//! assert!(report.voice_loss_rate() < 0.05);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod campaign;
pub mod cell;
pub mod columns;
pub mod config;
pub mod json;
pub mod persist;
pub mod protocols;
pub mod scenario;
pub mod spec;
pub mod sweep;
pub mod system;
pub mod terminal;
pub mod world;

pub use campaign::{Campaign, CampaignRow, CampaignRun};
pub use cell::Cell;
pub use columns::{TerminalColumns, TrafficTotals};
pub use config::{
    CharismaParams, ContentionConfig, FrameStructure, HandoffAdmission, HandoffConfig, Layout,
    LoadRamp, SimConfig, SystemConfig,
};
pub use json::Json;
pub use persist::{decode_replicated_result, encode_replicated_result, fnv1a_64, PersistError};
pub use protocols::{Charisma, DTdma, Drma, ProtocolKind, Rama, Rmav, UplinkMac};
pub use scenario::{RunReport, Scenario};
pub use spec::{
    Axis, CampaignPoint, DurationSpec, FrameBudget, QueueToggle, RampSpec, RepsSpec, ScenarioSpec,
    SpecError,
};
pub use sweep::{
    data_load_sweep, run_sweep, run_sweep_replicated, run_sweep_replicated_observed,
    voice_load_sweep, ReplicatedResult, ReplicationPolicy, SweepPoint, SweepResult,
};
pub use system::{cell_centers, flat_path_loss, hex_cells_for_rings, layout_bounds, SystemWorld};
pub use terminal::{FrameTraffic, Terminal};
pub use world::{DataTx, FrameScratch, FrameWorld, LinkAdaptation, VoiceTx};

// Re-export the substrate crates so downstream users need only one dependency.
pub use charisma_des as des;
pub use charisma_metrics as metrics;
pub use charisma_phy as phy;
pub use charisma_radio as radio;
pub use charisma_traffic as traffic;
