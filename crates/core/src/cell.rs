//! One cell: a base station's per-run execution state.
//!
//! A [`Cell`] bundles everything one base station owns for the duration of a
//! run — its CSI estimator, its protocol random stream, its reusable
//! [`FrameScratch`] buffers, its [`RunMetrics`] accumulator and the list of
//! terminals currently attached to it.  [`Cell::step`] assembles the
//! per-frame [`FrameWorld`] over those pieces and hands it to a MAC
//! instance: this is the frame body that used to live inline in the
//! single-cell scenario loop, extracted so the same code drives both the
//! paper's implicit cell ([`crate::scenario::Scenario`]) and every cell of a
//! [`crate::system::SystemWorld`].
//!
//! Stream derivation: cell `k` draws its estimator and base-station streams
//! from entity [`StreamId::cell_entity`]`(k) = u32::MAX − k`, so cell 0
//! reproduces the historical single-cell streams bit for bit and cells never
//! collide with terminal entities (which count up from 0).  Because every
//! cell owns an independent sub-stream family, cells can step in parallel
//! within a frame without sharing a generator — the property the sharded
//! [`crate::system::SystemWorld`] path builds on.

use crate::config::SimConfig;
use crate::protocols::UplinkMac;
use crate::terminal::FrameTraffic;
use crate::world::{FrameScratch, FrameWorld, TerminalTable};
use charisma_des::{RngStreams, StreamId, Xoshiro256StarStar};
use charisma_metrics::RunMetrics;
use charisma_radio::CsiEstimator;
use charisma_traffic::TerminalId;

/// One base station's per-run state (see the [module docs](self)).
#[derive(Debug)]
pub struct Cell {
    index: u32,
    members: Vec<TerminalId>,
    estimator: CsiEstimator,
    bs_rng: Xoshiro256StarStar,
    scratch: FrameScratch,
    metrics: RunMetrics,
}

impl Cell {
    /// Builds cell `index` serving `members`, deriving its random streams
    /// from the scenario's stream factory.
    pub fn new(
        config: &SimConfig,
        streams: &RngStreams,
        index: u32,
        members: Vec<TerminalId>,
    ) -> Self {
        let entity = StreamId::cell_entity(index);
        Cell {
            index,
            members,
            estimator: CsiEstimator::new(
                config.csi,
                streams.stream(StreamId::new(StreamId::DOMAIN_ESTIMATION, entity)),
            ),
            bs_rng: streams.stream(StreamId::new(StreamId::DOMAIN_PROTOCOL, entity)),
            scratch: FrameScratch::default(),
            metrics: RunMetrics::default(),
        }
    }

    /// The cell's index within the system layout (0 for the implicit
    /// single cell).
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The terminals currently attached, in attachment order.
    pub fn members(&self) -> &[TerminalId] {
        &self.members
    }

    /// Number of attached terminals.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// The cell's metrics accumulator.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Mutable access to the metrics accumulator (the scenario loop
    /// attributes per-terminal traffic counters here).
    pub fn metrics_mut(&mut self) -> &mut RunMetrics {
        &mut self.metrics
    }

    /// Consumes the cell, yielding its accumulated metrics.
    pub fn into_metrics(self) -> RunMetrics {
        self.metrics
    }

    /// Attaches a terminal (handoff admission).
    pub(crate) fn attach(&mut self, id: TerminalId) {
        debug_assert!(
            !self.members.contains(&id),
            "terminal {id:?} already attached"
        );
        self.members.push(id);
    }

    /// Detaches a terminal (handoff departure).  Panics if it was not
    /// attached — the system layer's conservation invariant.
    pub(crate) fn detach(&mut self, id: TerminalId) {
        let pos = self
            .members
            .iter()
            .position(|&m| m == id)
            .expect("detaching a terminal that is not attached");
        self.members.remove(pos);
    }

    /// Executes one uplink frame of this cell: assembles the [`FrameWorld`]
    /// over the (global) terminal population restricted to this cell's
    /// members and runs the MAC.  `traffic` and `terminals` span the whole
    /// system, indexed by terminal id; `terminals` is anything convertible
    /// into a [`TerminalTable`] — a `&mut `[`crate::columns::TerminalColumns`]
    /// on the single-threaded paths, a view-backed table over the shared
    /// column store when cells of a sharded [`crate::system::SystemWorld`]
    /// step in parallel.
    pub fn step<'a>(
        &mut self,
        frame: u64,
        config: &SimConfig,
        measuring: bool,
        traffic: &[FrameTraffic],
        terminals: impl Into<TerminalTable<'a>>,
        mac: &mut dyn UplinkMac,
    ) {
        // Re-borrow the table so the world's borrows end with this frame
        // (passing `terminals` straight through would tie every borrow in
        // the world to the caller-supplied lifetime `'a`).
        let mut table = terminals.into();
        let mut world = FrameWorld::new(
            frame,
            config,
            measuring,
            traffic,
            &self.members,
            table.reborrow(),
            &mut self.metrics,
            &mut self.estimator,
            &mut self.bs_rng,
            &mut self.scratch,
        );
        mac.run_frame(&mut world);
        if measuring {
            self.metrics.frames += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::ProtocolKind;
    use crate::terminal::Terminal;
    use charisma_traffic::TerminalClass;

    #[test]
    fn cell_zero_reproduces_the_historical_streams() {
        let config = SimConfig::quick_test();
        let streams = RngStreams::new(config.seed);
        let cell = Cell::new(&config, &streams, 0, vec![TerminalId(0)]);
        let legacy: Xoshiro256StarStar =
            streams.stream(StreamId::new(StreamId::DOMAIN_PROTOCOL, u32::MAX));
        assert_eq!(cell.bs_rng, legacy);
    }

    #[test]
    fn attach_detach_preserve_order_and_panic_on_missing() {
        let config = SimConfig::quick_test();
        let streams = RngStreams::new(1);
        let mut cell = Cell::new(&config, &streams, 2, vec![TerminalId(5), TerminalId(9)]);
        cell.attach(TerminalId(3));
        assert_eq!(
            cell.members(),
            &[TerminalId(5), TerminalId(9), TerminalId(3)]
        );
        cell.detach(TerminalId(9));
        assert_eq!(cell.members(), &[TerminalId(5), TerminalId(3)]);
        assert_eq!(cell.member_count(), 2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cell.detach(TerminalId(9));
        }));
        assert!(result.is_err(), "double detach must panic");
    }

    #[test]
    fn step_runs_a_mac_frame_and_counts_measured_frames() {
        use crate::columns::TerminalColumns;
        let config = SimConfig::quick_test();
        let streams = RngStreams::new(config.seed);
        let clock = config.clock();
        let mut columns = TerminalColumns::with_capacity(clock, config.channel_mode, 4);
        for i in 0..4 {
            columns.push(Terminal::new(
                TerminalId(i),
                TerminalClass::Voice,
                clock,
                config.voice_source,
                config.data_source,
                config.channel,
                config.channel_mode,
                &config.speed,
                &streams,
            ));
        }
        let mut traffic = vec![FrameTraffic::default(); columns.len()];
        let mut cell = Cell::new(&config, &streams, 0, (0..4).map(TerminalId).collect());
        let mut mac = ProtocolKind::Charisma.build(&config);
        for frame in 0..10 {
            columns.begin_frame_all(frame, &mut traffic);
            cell.step(
                frame,
                &config,
                frame >= 5,
                &traffic,
                &mut columns,
                mac.as_mut(),
            );
        }
        assert_eq!(cell.metrics().frames, 5);
        assert!(cell.metrics().slots.offered > 0.0);
    }
}
