//! CHARISMA — CHannel Adaptive Reservation-based ISochronous Multiple Access
//! (paper Section 4).
//!
//! CHARISMA departs from the baselines in one structural way: instead of
//! assigning information slots immediately as each request is acknowledged,
//! the base station first *gathers* every request of the frame — new
//! contention winners, base-station-generated requests for reserved voice
//! terminals, and (with the request queue) backlogged requests from earlier
//! frames — and only then allocates the `N_i` information slots in order of a
//! priority that blends three ingredients (paper eq. (2)):
//!
//! * the **throughput** the terminal's estimated CSI supports (good channels
//!   are served first because they use the slots more efficiently),
//! * the **urgency** of the request (a voice packet close to its 20 ms
//!   deadline, or a data request that has waited a long time), and
//! * the **service class** (a fixed voice-over-data priority offset).
//!
//! Requests whose CSI estimate has gone stale are refreshed through the
//! poll-for-CSI / pilot-symbol subframes (`N_b` polls per frame), highest
//! priority first — the CSI-refresh mechanism of Section 4.4.  Terminals in
//! outage are deferred rather than scheduled, which is where the protocol's
//! selection-diversity gain comes from (Section 5.3.2).

use crate::config::{CharismaParams, SimConfig};
use crate::protocols::common::{self, IdSet};
use crate::protocols::{ProtocolKind, UplinkMac};
use crate::world::{FrameWorld, LinkAdaptation, VoiceTx};
use charisma_des::SimTime;
use charisma_phy::Phy;
use charisma_radio::CsiEstimate;
use charisma_traffic::{TerminalClass, TerminalId};

/// One gathered request awaiting allocation at the base station.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    terminal: TerminalId,
    class: TerminalClass,
    /// Most recent CSI estimate the base station holds for this terminal.
    csi: CsiEstimate,
    /// Frame at which the request was acknowledged (for the waiting term).
    acked_frame: u64,
}

/// The CHARISMA protocol.
#[derive(Debug, Clone)]
pub struct Charisma {
    params: CharismaParams,
    queue_enabled: bool,
    queue_capacity: usize,
    reservations: IdSet,
    /// Gathered requests (this frame's and, with the queue, earlier frames').
    backlog: Vec<Entry>,
    /// Last CSI estimate obtained for each terminal (from request pilots,
    /// CSI polling, or earlier frames), indexed by terminal index.
    last_csi: Vec<Option<CsiEstimate>>,
    /// Urgency term of eq. (2) for voice, tabulated over the (clamped)
    /// frames-to-deadline argument: `urgency_weight · beta_voice^k`.
    voice_urgency: Vec<f64>,
    /// Urgency term for data over the (clamped) frames-waited argument:
    /// `urgency_weight · (1 − beta_data^k)`.
    data_urgency: Vec<f64>,
    /// Reusable per-frame buffers (cleared every frame; no cross-frame
    /// state).  Keeping them on the protocol keeps the frame loop
    /// allocation-free.
    exclude: IdSet,
    contenders: Vec<TerminalId>,
    winners: Vec<TerminalId>,
    due: Vec<TerminalId>,
    due_scratch: Vec<(SimTime, TerminalId)>,
    stale: Vec<(usize, f64)>,
    order: Vec<(usize, f64)>,
    served: Vec<bool>,
}

/// The urgency arguments are clamped to this value before exponentiation
/// (64 frames = 160 ms, far past any voice deadline or meaningful data wait),
/// which is what makes the terms tabulable.
const URGENCY_CLAMP: usize = 64;

impl Charisma {
    /// Builds CHARISMA for a scenario configuration.
    pub fn new(config: &SimConfig) -> Self {
        config.charisma.validate();
        let p = &config.charisma;
        // The tables hold exactly the products the priority formula used to
        // compute inline (same operations, same order), so tabulation changes
        // cost, not bits.
        let voice_urgency = (0..=URGENCY_CLAMP as i32)
            .map(|k| p.urgency_weight * p.beta_voice.powi(k))
            .collect();
        let data_urgency = (0..=URGENCY_CLAMP as i32)
            .map(|k| p.urgency_weight * (1.0 - p.beta_data.powi(k)))
            .collect();
        Charisma {
            params: config.charisma,
            queue_enabled: config.request_queue,
            queue_capacity: config.request_queue_capacity,
            reservations: IdSet::new(),
            backlog: Vec::new(),
            last_csi: Vec::new(),
            voice_urgency,
            data_urgency,
            exclude: IdSet::new(),
            contenders: Vec::new(),
            winners: Vec::new(),
            due: Vec::new(),
            due_scratch: Vec::new(),
            stale: Vec::new(),
            order: Vec::new(),
            served: Vec::new(),
        }
    }

    /// The base station's last CSI estimate for `id`, if any.
    fn lookup_csi(&self, id: TerminalId) -> Option<CsiEstimate> {
        self.last_csi.get(id.index() as usize).copied().flatten()
    }

    /// Records the base station's newest CSI estimate for `id`.
    fn remember_csi(&mut self, id: TerminalId, est: CsiEstimate) {
        let i = id.index() as usize;
        if i >= self.last_csi.len() {
            self.last_csi.resize(i + 1, None);
        }
        self.last_csi[i] = Some(est);
    }

    /// Number of terminals currently holding a voice reservation.
    pub fn active_reservations(&self) -> usize {
        self.reservations.len()
    }

    /// Number of requests currently gathered at the base station.
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// The priority metric of eq. (2), as implemented (see the crate-level
    /// documentation of [`crate::config::CharismaParams`]).
    fn priority(&self, world: &FrameWorld<'_>, entry: &Entry) -> f64 {
        let p = &self.params;
        let f_csi = if p.csi_aware {
            world.adaptive_phy().packets_per_slot(entry.csi.snr_db)
        } else {
            1.0
        };
        match entry.class {
            TerminalClass::Voice => {
                let deadline = world
                    .earliest_voice_deadline(entry.terminal)
                    .unwrap_or(SimTime::FAR_FUTURE);
                let frames_left = deadline
                    .saturating_duration_since(world.now)
                    .div_duration(world.clock.frame_duration())
                    .min(URGENCY_CLAMP as u64) as usize;
                p.alpha_voice * f_csi + self.voice_urgency[frames_left] + p.voice_offset
            }
            TerminalClass::Data => {
                let waited = (world.frame.saturating_sub(entry.acked_frame))
                    .min(URGENCY_CLAMP as u64) as usize;
                p.alpha_data * f_csi + self.data_urgency[waited] + p.gamma_data
            }
        }
    }

    /// Refreshes the CSI of up to `polls` stale backlog entries, highest
    /// priority first (the poll-for-CSI subframe).
    fn refresh_csi(&mut self, world: &mut FrameWorld<'_>, polls: u32) {
        if polls == 0 || self.backlog.is_empty() {
            return;
        }
        let validity = world.csi_validity();
        let mut stale = std::mem::take(&mut self.stale);
        stale.clear();
        stale.extend(
            self.backlog
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.csi.is_fresh(world.now, validity))
                .map(|(i, e)| (i, self.priority(world, e))),
        );
        // Descending priority; the ascending-index tiebreaker makes the
        // unstable sort reproduce the stable order (indices are unique).
        stale.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        for &(idx, _) in stale.iter().take(polls as usize) {
            let id = self.backlog[idx].terminal;
            let est = world.estimate_csi(id);
            self.backlog[idx].csi = est;
            self.remember_csi(id, est);
        }
        self.stale = stale;
    }
}

impl UplinkMac for Charisma {
    fn name(&self) -> &'static str {
        "CHARISMA"
    }

    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Charisma
    }

    fn forget_terminal(&mut self, id: TerminalId) {
        self.reservations.remove(id);
        self.backlog.retain(|e| e.terminal != id);
        if let Some(slot) = self.last_csi.get_mut(id.index() as usize) {
            *slot = None;
        }
    }

    fn run_frame(&mut self, world: &mut FrameWorld<'_>) {
        let fs = world.config.frame;
        world.record_offered_slots(fs.info_slots);

        if world.frame == 0 {
            common::seed_initial_reservations(world, &mut self.reservations);
        }
        common::release_ended_reservations(world, &mut self.reservations);

        // Drop gathered requests that no longer correspond to queued traffic
        // (voice packet dropped at its deadline, data buffer drained).
        self.backlog.retain(|e| world.has_backlog(e.terminal));

        // --- Request gathering -------------------------------------------
        // `exclude` doubles as the membership index of `backlog`: seeded from
        // the surviving entries here, extended as the due loop pushes, so the
        // dedup check is a bitset probe instead of a backlog scan — and by
        // step 2 it holds exactly backlog ∪ due, the set contention excludes.
        self.exclude.clear();
        self.exclude.extend(self.backlog.iter().map(|e| e.terminal));

        // 1. Base-station-generated requests for reserved voice terminals
        //    whose next packet is due (the 20 ms reservation renewal).
        common::reserved_voice_due_into(
            world,
            &self.reservations,
            &mut self.due_scratch,
            &mut self.due,
        );
        for i in 0..self.due.len() {
            let id = self.due[i];
            if self.exclude.insert(id) {
                let csi = self.lookup_csi(id).unwrap_or(CsiEstimate {
                    snr_db: 0.0,
                    estimated_at: SimTime::ZERO,
                });
                self.backlog.push(Entry {
                    terminal: id,
                    class: TerminalClass::Voice,
                    csi,
                    acked_frame: world.frame,
                });
            }
        }

        // 2. Contention for new requests (new talkspurts and data bursts).
        common::contenders_into(
            world,
            &self.reservations,
            &self.exclude,
            &mut self.contenders,
        );
        let mut winners = std::mem::take(&mut self.winners);
        world.contend_into(fs.request_slots, &self.contenders, &mut winners);
        for &id in &winners {
            // The request packet carries pilot symbols: the base station
            // estimates this terminal's CSI as part of receiving the request.
            let est = world.estimate_csi(id);
            self.remember_csi(id, est);
            self.backlog.push(Entry {
                terminal: id,
                class: world.class(id),
                csi: est,
                acked_frame: world.frame,
            });
        }
        self.winners = winners;

        // 3. CSI refresh for stale entries via the poll-for-CSI subframe.
        self.refresh_csi(world, fs.pilot_slots);

        if world.measuring {
            world
                .metrics_mut()
                .contention
                .queue_length
                .push(self.backlog.len() as f64);
        }

        // --- Priority allocation ------------------------------------------
        let mut order = std::mem::take(&mut self.order);
        order.clear();
        order.extend(
            self.backlog
                .iter()
                .enumerate()
                .map(|(i, e)| (i, self.priority(world, e))),
        );
        // Same descending order + unique-index tiebreaker as `refresh_csi`.
        order.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let mut served = std::mem::take(&mut self.served);
        served.clear();
        served.resize(self.backlog.len(), false);

        let mut remaining = fs.info_slots as f64;
        for &(idx, _prio) in &order {
            if remaining <= 1e-9 {
                break;
            }
            let entry = self.backlog[idx];
            let capacity = world.adaptive_phy().packets_per_slot(entry.csi.snr_db);
            if capacity <= 0.0 {
                // Outage: defer this request until its CSI improves (or its
                // deadline expires), rather than wasting slots on it.
                continue;
            }
            match entry.class {
                TerminalClass::Voice => {
                    if world.voice_backlog(entry.terminal) == 0 {
                        served[idx] = true;
                        continue;
                    }
                    // Airtime needed for one packet at the announced mode,
                    // subject to the sub-slot scheduling granularity of the
                    // announcement schedule.
                    let slots = (1.0 / capacity).max(fs.min_allocation());
                    if slots > remaining + 1e-9 {
                        continue;
                    }
                    let link = LinkAdaptation::Announced {
                        snr_db: entry.csi.snr_db,
                    };
                    match world.transmit_voice(entry.terminal, slots, link) {
                        VoiceTx::Delivered | VoiceTx::Errored => {
                            remaining -= slots;
                            self.reservations.insert(entry.terminal);
                            served[idx] = true;
                        }
                        VoiceTx::InsufficientCapacity => {
                            // The estimate promised capacity the true channel
                            // no longer supports; the slot assignment is lost.
                            world.record_wasted_slots(slots);
                            remaining -= slots;
                            self.reservations.insert(entry.terminal);
                            served[idx] = true;
                        }
                        VoiceTx::NoPacket => {
                            served[idx] = true;
                        }
                    }
                }
                TerminalClass::Data => {
                    let backlog_pkts = world
                        .data_backlog(entry.terminal)
                        .min(self.params.max_data_packets_per_grant as u64)
                        as u32;
                    if backlog_pkts == 0 {
                        served[idx] = true;
                        continue;
                    }
                    let slots = remaining.min(backlog_pkts as f64 / capacity);
                    if slots <= 1e-9 {
                        continue;
                    }
                    let link = LinkAdaptation::Announced {
                        snr_db: entry.csi.snr_db,
                    };
                    let tx = world.transmit_data(entry.terminal, slots, backlog_pkts, link);
                    if tx.delivered == 0 && tx.errored == 0 {
                        world.record_wasted_slots(slots);
                    }
                    remaining -= slots;
                    // A data request is good for one allocation only: the
                    // terminal must request again for the rest of its burst.
                    served[idx] = true;
                }
            }
        }

        // --- Queue maintenance ---------------------------------------------
        let mut i = 0usize;
        self.backlog.retain(|_| {
            let keep = !served[i];
            i += 1;
            keep
        });
        if self.queue_enabled {
            // Bound the queue: keep the oldest requests first.
            if self.backlog.len() > self.queue_capacity {
                self.backlog.truncate(self.queue_capacity);
            }
        } else {
            self.backlog.clear();
        }
        self.order = order;
        self.served = served;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    #[test]
    fn identity() {
        let cfg = SimConfig::quick_test();
        let c = Charisma::new(&cfg);
        assert_eq!(c.name(), "CHARISMA");
        assert_eq!(c.kind(), ProtocolKind::Charisma);
        assert!(c.supports_request_queue());
        assert_eq!(c.active_reservations(), 0);
        assert_eq!(c.backlog_len(), 0);
    }

    #[test]
    fn queue_settings_follow_config() {
        let mut cfg = SimConfig::quick_test();
        cfg.request_queue = true;
        cfg.request_queue_capacity = 17;
        let c = Charisma::new(&cfg);
        assert!(c.queue_enabled);
        assert_eq!(c.queue_capacity, 17);
    }

    #[test]
    #[should_panic(expected = "beta_voice")]
    fn invalid_params_rejected_at_construction() {
        let mut cfg = SimConfig::quick_test();
        cfg.charisma.beta_voice = 2.0;
        let _ = Charisma::new(&cfg);
    }
}
