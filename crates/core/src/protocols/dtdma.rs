//! D-TDMA/FR and D-TDMA/VR (paper Sections 3.4 and 3.5).
//!
//! Both protocols use the classic dynamic-TDMA frame: `N_r` request minislots
//! followed by `N_i` information slots.  A request that is successfully
//! received is served *immediately*, first-come-first-served, in the same
//! frame if information slots remain; a voice terminal whose first packet is
//! served keeps a reservation (one packet every 20 ms) until its talkspurt
//! ends, while data terminals must contend again for every burst fragment.
//!
//! The two variants differ only in the physical layer:
//!
//! * **FR** (fixed rate): every information slot carries exactly one packet.
//! * **VR** (variable rate): the slot throughput follows the 6-mode adaptive
//!   PHY, but the MAC is *not* aware of the channel state — it allocates
//!   exactly as FR does.  The extra throughput (and the occasional slot
//!   wasted on a terminal in a deep fade) emerge purely from the PHY.

use std::collections::VecDeque;

use crate::config::SimConfig;
use crate::protocols::common::{self, IdSet, RequestQueue};
use crate::protocols::{ProtocolKind, UplinkMac};
use crate::world::{FrameWorld, LinkAdaptation, VoiceTx};
use charisma_des::SimTime;
use charisma_traffic::{TerminalClass, TerminalId};

/// The D-TDMA protocol family (FR and VR variants).
#[derive(Debug, Clone)]
pub struct DTdma {
    adaptive: bool,
    reservations: IdSet,
    queue: RequestQueue,
    /// Reusable per-frame buffers (cleared every frame; no cross-frame state).
    exclude: IdSet,
    contenders: Vec<TerminalId>,
    winners: Vec<TerminalId>,
    service: VecDeque<TerminalId>,
    unserved: Vec<TerminalId>,
    due: Vec<TerminalId>,
    due_scratch: Vec<(SimTime, TerminalId)>,
}

impl DTdma {
    fn build(config: &SimConfig, adaptive: bool) -> Self {
        DTdma {
            adaptive,
            reservations: IdSet::new(),
            queue: RequestQueue::from_config(config),
            exclude: IdSet::new(),
            contenders: Vec::new(),
            winners: Vec::new(),
            service: VecDeque::new(),
            unserved: Vec::new(),
            due: Vec::new(),
            due_scratch: Vec::new(),
        }
    }

    /// Builds D-TDMA/FR (fixed-throughput PHY).
    pub fn fixed_rate(config: &SimConfig) -> Self {
        DTdma::build(config, false)
    }

    /// Builds D-TDMA/VR (variable-throughput PHY, MAC-blind).
    pub fn variable_rate(config: &SimConfig) -> Self {
        DTdma::build(config, true)
    }

    /// Number of terminals currently holding a voice reservation.
    pub fn active_reservations(&self) -> usize {
        self.reservations.len()
    }

    fn link(&self) -> LinkAdaptation {
        if self.adaptive {
            LinkAdaptation::Tracking
        } else {
            LinkAdaptation::Fixed
        }
    }

    /// Serves one item of the FCFS service list.  Returns the slot-equivalents
    /// of airtime consumed, and whether the item was actually served (an item
    /// that did not fit in the remaining airtime is reported unserved so the
    /// caller can queue it).
    fn serve(&mut self, world: &mut FrameWorld<'_>, id: TerminalId, remaining: f64) -> (f64, bool) {
        if remaining <= 1e-9 {
            return (0.0, false);
        }
        let link = self.link();
        match world.class(id) {
            TerminalClass::Voice => {
                if world.voice_backlog(id) == 0 {
                    return (0.0, true);
                }
                let capacity = world.capacity(id, link);
                if capacity <= 0.0 {
                    // CSI-blind allocation to a terminal in outage: the
                    // airtime is wasted and the packet is lost to a
                    // transmission error (Section 5.3.1 of the paper).
                    let waste = remaining.min(1.0);
                    world.fail_voice(id, waste);
                    self.reservations.insert(id);
                    return (waste, true);
                }
                // The base station schedules exactly the airtime the PHY's
                // current mode requires (it knows the rate, it just does not
                // use it to *choose* whom to serve), subject to the sub-slot
                // scheduling granularity of the announcement.
                let cost = (1.0 / capacity).max(world.config.frame.min_allocation());
                if cost > remaining + 1e-9 {
                    return (0.0, false);
                }
                match world.transmit_voice(id, cost, link) {
                    VoiceTx::Delivered | VoiceTx::Errored | VoiceTx::InsufficientCapacity => {
                        self.reservations.insert(id);
                        (cost, true)
                    }
                    VoiceTx::NoPacket => (0.0, true),
                }
            }
            TerminalClass::Data => {
                let backlog = world.data_backlog(id);
                if backlog == 0 {
                    return (0.0, true);
                }
                let capacity = world.capacity(id, link);
                if capacity <= 0.0 {
                    let waste = remaining.min(1.0);
                    world.record_wasted_slots(waste);
                    return (waste, true);
                }
                let cost = remaining.min(backlog as f64 / capacity);
                let tx = world.transmit_data(id, cost, u32::MAX, link);
                if tx.delivered == 0 && tx.errored == 0 {
                    world.record_wasted_slots(cost);
                }
                (cost, true)
            }
        }
    }
}

impl UplinkMac for DTdma {
    fn name(&self) -> &'static str {
        if self.adaptive {
            "D-TDMA/VR"
        } else {
            "D-TDMA/FR"
        }
    }

    fn kind(&self) -> ProtocolKind {
        if self.adaptive {
            ProtocolKind::DTdmaVr
        } else {
            ProtocolKind::DTdmaFr
        }
    }

    fn forget_terminal(&mut self, id: TerminalId) {
        self.reservations.remove(id);
        self.queue.remove(id);
    }

    fn run_frame(&mut self, world: &mut FrameWorld<'_>) {
        let fs = world.config.frame;
        world.record_offered_slots(fs.info_slots);

        if world.frame == 0 {
            common::seed_initial_reservations(world, &mut self.reservations);
        }
        common::release_ended_reservations(world, &mut self.reservations);
        self.queue.purge_idle(world);

        // Service list: reserved voice packets due, then queued requests,
        // then this frame's contention winners — all first-come-first-served.
        common::reserved_voice_due_into(
            world,
            &self.reservations,
            &mut self.due_scratch,
            &mut self.due,
        );
        self.service.clear();
        self.service.extend(self.due.iter().copied());
        let queued_len = self.queue.len();
        self.service.extend(self.queue.iter());
        self.exclude.clear();
        self.exclude.extend(self.queue.iter());
        self.queue.clear();

        common::contenders_into(
            world,
            &self.reservations,
            &self.exclude,
            &mut self.contenders,
        );
        world.contend_into(fs.request_slots, &self.contenders, &mut self.winners);
        self.service.extend(self.winners.iter().copied());

        if world.measuring {
            let qlen = self.queue.len() + queued_len;
            world
                .metrics_mut()
                .contention
                .queue_length
                .push(qlen as f64);
        }

        let mut remaining = fs.info_slots as f64;
        self.unserved.clear();
        while let Some(id) = self.service.pop_front() {
            if remaining <= 1e-9 {
                self.unserved.push(id);
                continue;
            }
            let (used, served) = self.serve(world, id, remaining);
            remaining -= used;
            if !served {
                self.unserved.push(id);
            }
        }

        // Acknowledged-but-unserved requests go to the request queue when it
        // is enabled; otherwise they are forgotten and the terminals contend
        // again.  Reserved voice terminals never need to re-request.
        for &id in &self.unserved {
            if !self.reservations.contains(id) && world.has_backlog(id) {
                let _ = self.queue.push(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fr_and_vr_report_their_identities() {
        let cfg = SimConfig::quick_test();
        let fr = DTdma::fixed_rate(&cfg);
        let vr = DTdma::variable_rate(&cfg);
        assert_eq!(fr.name(), "D-TDMA/FR");
        assert_eq!(fr.kind(), ProtocolKind::DTdmaFr);
        assert_eq!(vr.name(), "D-TDMA/VR");
        assert_eq!(vr.kind(), ProtocolKind::DTdmaVr);
        assert!(fr.supports_request_queue());
    }

    #[test]
    fn link_matches_variant() {
        let cfg = SimConfig::quick_test();
        assert_eq!(DTdma::fixed_rate(&cfg).link(), LinkAdaptation::Fixed);
        assert_eq!(DTdma::variable_rate(&cfg).link(), LinkAdaptation::Tracking);
    }

    #[test]
    fn reservations_start_empty() {
        let cfg = SimConfig::quick_test();
        assert_eq!(DTdma::fixed_rate(&cfg).active_reservations(), 0);
    }
}
