//! Building blocks shared by the protocol implementations: reservation
//! bookkeeping, contender selection and the base-station request queue.

use crate::config::SimConfig;
use crate::world::FrameWorld;
use charisma_des::SimTime;
use charisma_traffic::{TerminalClass, TerminalId};
use std::collections::{HashSet, VecDeque};

/// A set of terminal ids backed by a bitset.
///
/// The protocols keep several id sets that are tested every frame for every
/// member (`reservations`, `exclude`) — a hash set pays a hash per probe and
/// scatters its entries across the heap, while terminal ids are small dense
/// integers.  `IdSet` stores one bit per id: membership is a shift and a
/// mask, `clear` is a `memset`, and iteration yields ids in **ascending
/// order** — a deterministic order, unlike `HashSet`'s, which is what lets
/// the protocols iterate a set directly without an extra sort when the
/// consumer is order-sensitive.
#[derive(Debug, Clone, Default)]
pub struct IdSet {
    words: Vec<u64>,
    len: usize,
}

impl IdSet {
    /// Creates an empty set (no allocation until the first insert).
    pub fn new() -> Self {
        IdSet::default()
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every id, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Adds `id`; returns `true` if it was not already present.
    pub fn insert(&mut self, id: TerminalId) -> bool {
        let (w, b) = (id.index() as usize / 64, id.index() as usize % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        self.len += fresh as usize;
        fresh
    }

    /// Removes `id`; returns `true` if it was present.
    pub fn remove(&mut self, id: TerminalId) -> bool {
        let (w, b) = (id.index() as usize / 64, id.index() as usize % 64);
        let Some(word) = self.words.get_mut(w) else {
            return false;
        };
        let present = *word & (1 << b) != 0;
        *word &= !(1 << b);
        self.len -= present as usize;
        present
    }

    /// Keeps only the ids for which `keep` returns `true`, visiting members
    /// in ascending order (the set's iteration order).
    pub fn retain(&mut self, mut keep: impl FnMut(TerminalId) -> bool) {
        for w in 0..self.words.len() {
            let mut bits = self.words[w];
            while bits != 0 {
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                let id = TerminalId((w * 64) as u32 + b);
                if !keep(id) {
                    self.words[w] &= !(1u64 << b);
                    self.len -= 1;
                }
            }
        }
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: TerminalId) -> bool {
        let (w, b) = (id.index() as usize / 64, id.index() as usize % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// The ids in the set, in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = TerminalId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                Some(TerminalId((w * 64) as u32 + b))
            })
        })
    }
}

impl Extend<TerminalId> for IdSet {
    fn extend<T: IntoIterator<Item = TerminalId>>(&mut self, iter: T) {
        for id in iter {
            self.insert(id);
        }
    }
}

/// Seeds the reservation table with every voice terminal that is already in a
/// talkspurt when the simulation begins.
///
/// The terminal population is drawn from the stationary on/off distribution,
/// i.e. the run starts in the middle of system operation, where ongoing
/// talkspurts would long since have completed their reservation handshake.
/// Without this warm start the very first frames see dozens of simultaneous
/// unadmitted talkers, which drives the slotted request channel into its
/// congested (thrashing) equilibrium — a cold-start artefact, not a property
/// of the protocols under study.  Call once, at frame 0.
pub fn seed_initial_reservations(world: &FrameWorld<'_>, reservations: &mut IdSet) {
    for id in world.terminal_ids() {
        if world.class(id) == TerminalClass::Voice && world.in_talkspurt(id) {
            reservations.insert(id);
        }
    }
}

/// Releases the reservations of terminals whose talkspurt ended at this frame
/// boundary (paper: a reservation lasts "until the current talkspurt
/// terminates").
pub fn release_ended_reservations(world: &FrameWorld<'_>, reservations: &mut IdSet) {
    // Only members of the set can be removed, so scanning the (small) set and
    // probing `traffic` beats scanning the whole population's traffic slots.
    reservations.retain(|id| !world.traffic[id.index() as usize].talkspurt_ended);
}

/// Reserved voice terminals that currently have a packet due, ordered by
/// earliest deadline (the natural service order for isochronous traffic).
#[deprecated(note = "use the allocation-free `reserved_voice_due_into` instead")]
pub fn reserved_voice_due(world: &FrameWorld<'_>, reservations: &IdSet) -> Vec<TerminalId> {
    let mut scratch = Vec::new();
    let mut out = Vec::new();
    reserved_voice_due_into(world, reservations, &mut scratch, &mut out);
    out
}

/// Allocation-free variant of `reserved_voice_due`: clears `out` and fills it
/// with the reserved voice terminals that have a packet due, ordered by
/// earliest deadline (ties broken by id — a total order, so the result does
/// not depend on the set's iteration order).  `scratch` holds the
/// (deadline, id) pairs during the sort; both buffers reuse their capacity
/// across frames.
pub fn reserved_voice_due_into(
    world: &FrameWorld<'_>,
    reservations: &IdSet,
    scratch: &mut Vec<(SimTime, TerminalId)>,
    out: &mut Vec<TerminalId>,
) {
    scratch.clear();
    for id in reservations.iter() {
        if let Some(d) = world.earliest_voice_deadline(id) {
            scratch.push((d, id));
        }
    }
    scratch.sort_unstable();
    out.clear();
    out.extend(scratch.iter().map(|&(_, id)| id));
}

/// Terminals that need to send a transmission request this frame: voice
/// terminals with a buffered packet and no reservation, and data terminals
/// with buffered packets — excluding any terminal already represented at the
/// base station (`exclude`, e.g. already in the request queue).
#[deprecated(note = "use the allocation-free `contenders_into` instead")]
pub fn contenders(
    world: &FrameWorld<'_>,
    reservations: &IdSet,
    exclude: &IdSet,
) -> Vec<TerminalId> {
    let mut out = Vec::new();
    contenders_into(world, reservations, exclude, &mut out);
    out
}

/// Fills `out` with the contending terminal ids (see `contenders`), reusing
/// its capacity.  Protocols call this with a buffer they keep across frames
/// so the request phase never allocates.
pub fn contenders_into(
    world: &FrameWorld<'_>,
    reservations: &IdSet,
    exclude: &IdSet,
    out: &mut Vec<TerminalId>,
) {
    out.clear();
    for id in world.terminal_ids() {
        // The same conjunction as documented above, ordered so the test that
        // disqualifies most terminals runs first (every operand is
        // side-effect-free, so the order changes cost, not the result):
        // reserved voice terminals and empty-buffer terminals drop out before
        // the exclude probe ever runs.
        let contending = match world.class(id) {
            TerminalClass::Voice => {
                !reservations.contains(id) && world.voice_backlog(id) > 0 && !exclude.contains(id)
            }
            TerminalClass::Data => world.data_backlog(id) > 0 && !exclude.contains(id),
        };
        if contending {
            out.push(id);
        }
    }
}

/// The base-station request queue of Section 4.5: acknowledged requests that
/// survived contention but could not be allocated information slots.
///
/// The queue is bounded and (when disabled) simply refuses every push, which
/// lets the protocols share one code path for the with-queue and
/// without-queue variants.
#[derive(Debug, Clone)]
pub struct RequestQueue {
    enabled: bool,
    capacity: usize,
    items: VecDeque<TerminalId>,
}

impl RequestQueue {
    /// Creates the queue according to the scenario configuration.
    pub fn from_config(config: &SimConfig) -> Self {
        RequestQueue {
            enabled: config.request_queue,
            capacity: config.request_queue_capacity,
            items: VecDeque::new(),
        }
    }

    /// Whether queueing is enabled for this run.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue holds no requests.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the terminal already has a queued request.
    pub fn contains(&self, id: TerminalId) -> bool {
        self.items.contains(&id)
    }

    /// Attempts to queue a request; returns `false` when queueing is disabled,
    /// the queue is full, or the terminal is already queued.
    pub fn push(&mut self, id: TerminalId) -> bool {
        if !self.enabled || self.items.len() >= self.capacity || self.contains(id) {
            return false;
        }
        self.items.push_back(id);
        true
    }

    /// Removes and returns the oldest queued request.
    pub fn pop_front(&mut self) -> Option<TerminalId> {
        self.items.pop_front()
    }

    /// Removes a specific terminal's queued request (e.g. its talkspurt ended
    /// or its packets were dropped).
    pub fn remove(&mut self, id: TerminalId) {
        self.items.retain(|&t| t != id);
    }

    /// Drops queued requests whose terminal no longer has anything to send
    /// (its voice packet was dropped at the deadline, or its data buffer
    /// drained).  Keeps the queue from serving phantom requests.
    pub fn purge_idle(&mut self, world: &FrameWorld<'_>) {
        self.items.retain(|&id| world.has_backlog(id));
    }

    /// Removes every queued request (used when rebuilding the queue after an
    /// allocation pass).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// The queued terminals in FIFO order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = TerminalId> + '_ {
        self.items.iter().copied()
    }

    /// The set of queued terminals (for exclusion from contention).
    #[deprecated(note = "collect into an `IdSet` via `iter()` instead")]
    pub fn as_set(&self) -> HashSet<TerminalId> {
        self.items.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue(enabled: bool, capacity: usize) -> RequestQueue {
        RequestQueue {
            enabled,
            capacity,
            items: VecDeque::new(),
        }
    }

    #[test]
    fn disabled_queue_rejects_everything() {
        let mut q = queue(false, 10);
        assert!(!q.push(TerminalId(1)));
        assert!(q.is_empty());
    }

    #[test]
    fn queue_is_fifo_and_deduplicating() {
        let mut q = queue(true, 10);
        assert!(q.push(TerminalId(1)));
        assert!(q.push(TerminalId(2)));
        assert!(!q.push(TerminalId(1)), "duplicate push must be rejected");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_front(), Some(TerminalId(1)));
        assert_eq!(q.pop_front(), Some(TerminalId(2)));
        assert_eq!(q.pop_front(), None);
    }

    #[test]
    fn queue_respects_capacity() {
        let mut q = queue(true, 2);
        assert!(q.push(TerminalId(1)));
        assert!(q.push(TerminalId(2)));
        assert!(!q.push(TerminalId(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[allow(deprecated)]
    fn remove_deletes_only_the_named_terminal() {
        let mut q = queue(true, 10);
        q.push(TerminalId(1));
        q.push(TerminalId(2));
        q.push(TerminalId(3));
        q.remove(TerminalId(2));
        let left: Vec<_> = q.iter().collect();
        assert_eq!(left, vec![TerminalId(1), TerminalId(3)]);
        assert!(q.as_set().contains(&TerminalId(3)));
    }

    #[test]
    fn id_set_insert_remove_contains() {
        let mut s = IdSet::new();
        assert!(s.is_empty());
        assert!(!s.contains(TerminalId(0)));
        assert!(s.insert(TerminalId(0)));
        assert!(s.insert(TerminalId(63)));
        assert!(s.insert(TerminalId(64)));
        assert!(s.insert(TerminalId(1000)));
        assert!(!s.insert(TerminalId(64)), "duplicate insert");
        assert_eq!(s.len(), 4);
        assert!(s.contains(TerminalId(63)));
        assert!(!s.contains(TerminalId(62)));
        assert!(!s.contains(TerminalId(1_000_000)), "past the allocation");
        assert!(s.remove(TerminalId(63)));
        assert!(!s.remove(TerminalId(63)), "double remove");
        assert!(!s.remove(TerminalId(7)), "never inserted");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn id_set_iterates_in_ascending_order() {
        let mut s = IdSet::new();
        for id in [900u32, 3, 64, 0, 127, 65] {
            s.insert(TerminalId(id));
        }
        let ids: Vec<u32> = s.iter().map(|id| id.index()).collect();
        assert_eq!(ids, vec![0, 3, 64, 65, 127, 900]);
    }

    #[test]
    fn id_set_retain_keeps_matching_ids_and_fixes_len() {
        let mut s = IdSet::new();
        for id in [0u32, 3, 64, 65, 127, 900] {
            s.insert(TerminalId(id));
        }
        s.retain(|id| id.index() % 2 == 1);
        let ids: Vec<u32> = s.iter().map(|id| id.index()).collect();
        assert_eq!(ids, vec![3, 65, 127]);
        assert_eq!(s.len(), 3);
        assert!(!s.contains(TerminalId(64)));
        s.retain(|_| false);
        assert!(s.is_empty());
    }

    #[test]
    fn id_set_clear_keeps_capacity_and_empties() {
        let mut s = IdSet::new();
        s.insert(TerminalId(500));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(TerminalId(500)));
        s.insert(TerminalId(2));
        assert_eq!(s.len(), 1);
    }
}
