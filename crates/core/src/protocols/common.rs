//! Building blocks shared by the protocol implementations: reservation
//! bookkeeping, contender selection and the base-station request queue.

use crate::config::SimConfig;
use crate::world::FrameWorld;
use charisma_des::SimTime;
use charisma_traffic::{TerminalClass, TerminalId};
use std::collections::{HashSet, VecDeque};

/// Seeds the reservation table with every voice terminal that is already in a
/// talkspurt when the simulation begins.
///
/// The terminal population is drawn from the stationary on/off distribution,
/// i.e. the run starts in the middle of system operation, where ongoing
/// talkspurts would long since have completed their reservation handshake.
/// Without this warm start the very first frames see dozens of simultaneous
/// unadmitted talkers, which drives the slotted request channel into its
/// congested (thrashing) equilibrium — a cold-start artefact, not a property
/// of the protocols under study.  Call once, at frame 0.
pub fn seed_initial_reservations(world: &FrameWorld<'_>, reservations: &mut HashSet<TerminalId>) {
    for id in world.terminal_ids() {
        let t = world.terminal(id);
        if t.class() == TerminalClass::Voice && t.in_talkspurt() {
            reservations.insert(id);
        }
    }
}

/// Releases the reservations of terminals whose talkspurt ended at this frame
/// boundary (paper: a reservation lasts "until the current talkspurt
/// terminates").
pub fn release_ended_reservations(world: &FrameWorld<'_>, reservations: &mut HashSet<TerminalId>) {
    for (i, tr) in world.traffic.iter().enumerate() {
        if tr.talkspurt_ended {
            reservations.remove(&TerminalId(i as u32));
        }
    }
}

/// Reserved voice terminals that currently have a packet due, ordered by
/// earliest deadline (the natural service order for isochronous traffic).
pub fn reserved_voice_due(
    world: &FrameWorld<'_>,
    reservations: &HashSet<TerminalId>,
) -> Vec<TerminalId> {
    let mut due: Vec<(SimTime, TerminalId)> = reservations
        .iter()
        .filter_map(|&id| {
            world
                .terminal(id)
                .earliest_voice_deadline()
                .map(|d| (d, id))
        })
        .collect();
    due.sort();
    due.into_iter().map(|(_, id)| id).collect()
}

/// Terminals that need to send a transmission request this frame: voice
/// terminals with a buffered packet and no reservation, and data terminals
/// with buffered packets — excluding any terminal already represented at the
/// base station (`exclude`, e.g. already in the request queue).
pub fn contenders(
    world: &FrameWorld<'_>,
    reservations: &HashSet<TerminalId>,
    exclude: &HashSet<TerminalId>,
) -> Vec<TerminalId> {
    let mut out = Vec::new();
    contenders_into(world, reservations, exclude, &mut out);
    out
}

/// Allocation-free variant of [`contenders`]: clears `out` and fills it with
/// the contending terminal ids, reusing its capacity.  Protocols call this
/// with a buffer they keep across frames so the request phase never
/// allocates.
pub fn contenders_into(
    world: &FrameWorld<'_>,
    reservations: &HashSet<TerminalId>,
    exclude: &HashSet<TerminalId>,
    out: &mut Vec<TerminalId>,
) {
    out.clear();
    for id in world.terminal_ids() {
        if exclude.contains(&id) {
            continue;
        }
        let t = world.terminal(id);
        let contending = match t.class() {
            TerminalClass::Voice => !reservations.contains(&id) && t.voice_backlog() > 0,
            TerminalClass::Data => t.data_backlog() > 0,
        };
        if contending {
            out.push(id);
        }
    }
}

/// The base-station request queue of Section 4.5: acknowledged requests that
/// survived contention but could not be allocated information slots.
///
/// The queue is bounded and (when disabled) simply refuses every push, which
/// lets the protocols share one code path for the with-queue and
/// without-queue variants.
#[derive(Debug, Clone)]
pub struct RequestQueue {
    enabled: bool,
    capacity: usize,
    items: VecDeque<TerminalId>,
}

impl RequestQueue {
    /// Creates the queue according to the scenario configuration.
    pub fn from_config(config: &SimConfig) -> Self {
        RequestQueue {
            enabled: config.request_queue,
            capacity: config.request_queue_capacity,
            items: VecDeque::new(),
        }
    }

    /// Whether queueing is enabled for this run.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue holds no requests.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the terminal already has a queued request.
    pub fn contains(&self, id: TerminalId) -> bool {
        self.items.contains(&id)
    }

    /// Attempts to queue a request; returns `false` when queueing is disabled,
    /// the queue is full, or the terminal is already queued.
    pub fn push(&mut self, id: TerminalId) -> bool {
        if !self.enabled || self.items.len() >= self.capacity || self.contains(id) {
            return false;
        }
        self.items.push_back(id);
        true
    }

    /// Removes and returns the oldest queued request.
    pub fn pop_front(&mut self) -> Option<TerminalId> {
        self.items.pop_front()
    }

    /// Removes a specific terminal's queued request (e.g. its talkspurt ended
    /// or its packets were dropped).
    pub fn remove(&mut self, id: TerminalId) {
        self.items.retain(|&t| t != id);
    }

    /// Drops queued requests whose terminal no longer has anything to send
    /// (its voice packet was dropped at the deadline, or its data buffer
    /// drained).  Keeps the queue from serving phantom requests.
    pub fn purge_idle(&mut self, world: &FrameWorld<'_>) {
        self.items.retain(|&id| world.terminal(id).has_backlog());
    }

    /// Removes every queued request (used when rebuilding the queue after an
    /// allocation pass).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// The queued terminals in FIFO order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = TerminalId> + '_ {
        self.items.iter().copied()
    }

    /// The set of queued terminals (for exclusion from contention).
    pub fn as_set(&self) -> HashSet<TerminalId> {
        self.items.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue(enabled: bool, capacity: usize) -> RequestQueue {
        RequestQueue {
            enabled,
            capacity,
            items: VecDeque::new(),
        }
    }

    #[test]
    fn disabled_queue_rejects_everything() {
        let mut q = queue(false, 10);
        assert!(!q.push(TerminalId(1)));
        assert!(q.is_empty());
    }

    #[test]
    fn queue_is_fifo_and_deduplicating() {
        let mut q = queue(true, 10);
        assert!(q.push(TerminalId(1)));
        assert!(q.push(TerminalId(2)));
        assert!(!q.push(TerminalId(1)), "duplicate push must be rejected");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_front(), Some(TerminalId(1)));
        assert_eq!(q.pop_front(), Some(TerminalId(2)));
        assert_eq!(q.pop_front(), None);
    }

    #[test]
    fn queue_respects_capacity() {
        let mut q = queue(true, 2);
        assert!(q.push(TerminalId(1)));
        assert!(q.push(TerminalId(2)));
        assert!(!q.push(TerminalId(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn remove_deletes_only_the_named_terminal() {
        let mut q = queue(true, 10);
        q.push(TerminalId(1));
        q.push(TerminalId(2));
        q.push(TerminalId(3));
        q.remove(TerminalId(2));
        let left: Vec<_> = q.iter().collect();
        assert_eq!(left, vec![TerminalId(1), TerminalId(3)]);
        assert!(q.as_set().contains(&TerminalId(3)));
    }
}
