//! RAMA — resource auction multiple access (paper Section 3.1).
//!
//! RAMA replaces slotted contention with a collision-free auction: in each of
//! the `N_a` auction slots every active terminal bids a randomly drawn ID,
//! digit by digit, and the base station keeps the highest bidder — so every
//! auction slot produces exactly one winner, regardless of the number of
//! contenders.  Data terminals always draw IDs smaller than voice terminals,
//! giving voice strict priority.  Winners are served first-come-first-served
//! in the `N_i` information slots of the same frame (fixed-rate PHY); voice
//! winners keep a reservation for the rest of their talkspurt.
//!
//! The auction's MAC-visible contract — one winner per auction slot, voice
//! before data, no collisions — is modelled symbolically: the per-digit
//! orthogonal-frequency signalling of the original paper is hardware detail
//! that does not affect protocol-level behaviour.

use std::collections::{HashSet, VecDeque};

use crate::config::SimConfig;
use crate::protocols::common::{self, RequestQueue};
use crate::protocols::{ProtocolKind, UplinkMac};
use crate::world::{FrameWorld, LinkAdaptation, VoiceTx};
use charisma_des::Sampler;
use charisma_traffic::{TerminalClass, TerminalId};

/// The RAMA protocol.
#[derive(Debug, Clone)]
pub struct Rama {
    reservations: HashSet<TerminalId>,
    queue: RequestQueue,
    /// Reusable per-frame buffers (cleared every frame; no cross-frame state).
    exclude: HashSet<TerminalId>,
    contenders: Vec<TerminalId>,
}

impl Rama {
    /// Builds RAMA for a scenario configuration.
    pub fn new(config: &SimConfig) -> Self {
        Rama {
            reservations: HashSet::new(),
            queue: RequestQueue::from_config(config),
            exclude: HashSet::new(),
            contenders: Vec::new(),
        }
    }

    /// Number of terminals currently holding a voice reservation.
    pub fn active_reservations(&self) -> usize {
        self.reservations.len()
    }

    /// Runs the auction subframe: selects up to `n_slots` distinct winners
    /// from `contenders`, voice terminals strictly before data terminals and
    /// randomly ordered within each class (each terminal redraws its ID every
    /// auction slot, so the per-slot winner is uniform among the highest
    /// class present).
    fn auction(
        world: &mut FrameWorld<'_>,
        contenders: &[TerminalId],
        n_slots: u32,
    ) -> Vec<TerminalId> {
        let mut voice: Vec<TerminalId> = Vec::new();
        let mut data: Vec<TerminalId> = Vec::new();
        for &id in contenders {
            match world.terminal(id).class() {
                TerminalClass::Voice => voice.push(id),
                TerminalClass::Data => data.push(id),
            }
        }
        // Fisher–Yates shuffle with the base-station stream: the auction IDs
        // are drawn fresh every slot, so winner order within a class is
        // uniformly random.
        let shuffle = |v: &mut Vec<TerminalId>, world: &mut FrameWorld<'_>| {
            for i in (1..v.len()).rev() {
                let j = Sampler::uniform_index(world.bs_rng(), i + 1);
                v.swap(i, j);
            }
        };
        shuffle(&mut voice, world);
        shuffle(&mut data, world);

        let mut winners = Vec::new();
        let mut ordered = voice.into_iter().chain(data);
        for _ in 0..n_slots {
            match ordered.next() {
                Some(id) => winners.push(id),
                None => break,
            }
        }
        if world.measuring {
            // Every contender bids in every auction slot until it wins or the
            // subframe ends; there are no collisions by construction.
            world.metrics_mut().contention.attempts += contenders.len() as u64;
            world.metrics_mut().contention.successes += winners.len() as u64;
        }
        winners
    }
}

impl UplinkMac for Rama {
    fn name(&self) -> &'static str {
        "RAMA"
    }

    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Rama
    }

    fn forget_terminal(&mut self, id: TerminalId) {
        self.reservations.remove(&id);
        self.queue.remove(id);
    }

    fn run_frame(&mut self, world: &mut FrameWorld<'_>) {
        let fs = world.config.frame;
        world.record_offered_slots(fs.info_slots);

        if world.frame == 0 {
            common::seed_initial_reservations(world, &mut self.reservations);
        }
        common::release_ended_reservations(world, &mut self.reservations);
        self.queue.purge_idle(world);

        let mut service: VecDeque<TerminalId> =
            common::reserved_voice_due(world, &self.reservations).into();
        let queued: Vec<TerminalId> = self.queue.iter().collect();
        service.extend(queued.iter().copied());
        self.queue.clear();

        self.exclude.clear();
        self.exclude.extend(queued.iter().copied());
        common::contenders_into(
            world,
            &self.reservations,
            &self.exclude,
            &mut self.contenders,
        );
        let winners = Self::auction(world, &self.contenders, fs.rama_auction_slots);
        service.extend(winners);

        if world.measuring {
            world
                .metrics_mut()
                .contention
                .queue_length
                .push(queued.len() as f64);
        }

        let mut remaining = fs.info_slots as f64;
        let mut unserved: Vec<TerminalId> = Vec::new();
        while let Some(id) = service.pop_front() {
            if remaining < 1.0 {
                unserved.push(id);
                continue;
            }
            match world.terminal(id).class() {
                TerminalClass::Voice => {
                    if world.terminal(id).voice_backlog() == 0 {
                        continue;
                    }
                    match world.transmit_voice(id, 1.0, LinkAdaptation::Fixed) {
                        VoiceTx::Delivered | VoiceTx::Errored => {
                            self.reservations.insert(id);
                            remaining -= 1.0;
                        }
                        VoiceTx::InsufficientCapacity => {
                            world.record_wasted_slots(1.0);
                            self.reservations.insert(id);
                            remaining -= 1.0;
                        }
                        VoiceTx::NoPacket => {}
                    }
                }
                TerminalClass::Data => {
                    let backlog = world.terminal(id).data_backlog();
                    if backlog == 0 {
                        continue;
                    }
                    let slots = remaining.min(backlog as f64);
                    let tx = world.transmit_data(id, slots, u32::MAX, LinkAdaptation::Fixed);
                    if tx.delivered == 0 && tx.errored == 0 {
                        world.record_wasted_slots(slots);
                    }
                    remaining -= slots;
                }
            }
        }

        for id in unserved {
            if !self.reservations.contains(&id) && world.terminal(id).has_backlog() {
                let _ = self.queue.push(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity() {
        let cfg = SimConfig::quick_test();
        let r = Rama::new(&cfg);
        assert_eq!(r.name(), "RAMA");
        assert_eq!(r.kind(), ProtocolKind::Rama);
        assert!(r.supports_request_queue());
        assert_eq!(r.active_reservations(), 0);
    }
}
