//! RAMA — resource auction multiple access (paper Section 3.1).
//!
//! RAMA replaces slotted contention with a collision-free auction: in each of
//! the `N_a` auction slots every active terminal bids a randomly drawn ID,
//! digit by digit, and the base station keeps the highest bidder — so every
//! auction slot produces exactly one winner, regardless of the number of
//! contenders.  Data terminals always draw IDs smaller than voice terminals,
//! giving voice strict priority.  Winners are served first-come-first-served
//! in the `N_i` information slots of the same frame (fixed-rate PHY); voice
//! winners keep a reservation for the rest of their talkspurt.
//!
//! The auction's MAC-visible contract — one winner per auction slot, voice
//! before data, no collisions — is modelled symbolically: the per-digit
//! orthogonal-frequency signalling of the original paper is hardware detail
//! that does not affect protocol-level behaviour.

use std::collections::VecDeque;

use crate::config::SimConfig;
use crate::protocols::common::{self, IdSet, RequestQueue};
use crate::protocols::{ProtocolKind, UplinkMac};
use crate::world::{FrameWorld, LinkAdaptation, VoiceTx};
use charisma_des::{Sampler, SimTime};
use charisma_traffic::{TerminalClass, TerminalId};

/// The RAMA protocol.
#[derive(Debug, Clone)]
pub struct Rama {
    reservations: IdSet,
    queue: RequestQueue,
    /// Reusable per-frame buffers (cleared every frame; no cross-frame state).
    exclude: IdSet,
    contenders: Vec<TerminalId>,
    auction_voice: Vec<TerminalId>,
    auction_data: Vec<TerminalId>,
    winners: Vec<TerminalId>,
    service: VecDeque<TerminalId>,
    unserved: Vec<TerminalId>,
    due: Vec<TerminalId>,
    due_scratch: Vec<(SimTime, TerminalId)>,
}

impl Rama {
    /// Builds RAMA for a scenario configuration.
    pub fn new(config: &SimConfig) -> Self {
        Rama {
            reservations: IdSet::new(),
            queue: RequestQueue::from_config(config),
            exclude: IdSet::new(),
            contenders: Vec::new(),
            auction_voice: Vec::new(),
            auction_data: Vec::new(),
            winners: Vec::new(),
            service: VecDeque::new(),
            unserved: Vec::new(),
            due: Vec::new(),
            due_scratch: Vec::new(),
        }
    }

    /// Number of terminals currently holding a voice reservation.
    pub fn active_reservations(&self) -> usize {
        self.reservations.len()
    }

    /// Runs the auction subframe: fills `self.winners` with up to `n_slots`
    /// distinct winners from `self.contenders`, voice terminals strictly
    /// before data terminals and randomly ordered within each class (each
    /// terminal redraws its ID every auction slot, so the per-slot winner is
    /// uniform among the highest class present).
    fn auction(&mut self, world: &mut FrameWorld<'_>, n_slots: u32) {
        self.auction_voice.clear();
        self.auction_data.clear();
        for &id in &self.contenders {
            match world.class(id) {
                TerminalClass::Voice => self.auction_voice.push(id),
                TerminalClass::Data => self.auction_data.push(id),
            }
        }
        // Fisher–Yates shuffle with the base-station stream: the auction IDs
        // are drawn fresh every slot, so winner order within a class is
        // uniformly random.
        for v in [&mut self.auction_voice, &mut self.auction_data] {
            for i in (1..v.len()).rev() {
                let j = Sampler::uniform_index(world.bs_rng(), i + 1);
                v.swap(i, j);
            }
        }

        self.winners.clear();
        self.winners.extend(
            self.auction_voice
                .iter()
                .chain(self.auction_data.iter())
                .copied()
                .take(n_slots as usize),
        );
        if world.measuring {
            // Every contender bids in every auction slot until it wins or the
            // subframe ends; there are no collisions by construction.
            world.metrics_mut().contention.attempts += self.contenders.len() as u64;
            world.metrics_mut().contention.successes += self.winners.len() as u64;
        }
    }
}

impl UplinkMac for Rama {
    fn name(&self) -> &'static str {
        "RAMA"
    }

    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Rama
    }

    fn forget_terminal(&mut self, id: TerminalId) {
        self.reservations.remove(id);
        self.queue.remove(id);
    }

    fn run_frame(&mut self, world: &mut FrameWorld<'_>) {
        let fs = world.config.frame;
        world.record_offered_slots(fs.info_slots);

        if world.frame == 0 {
            common::seed_initial_reservations(world, &mut self.reservations);
        }
        common::release_ended_reservations(world, &mut self.reservations);
        self.queue.purge_idle(world);

        common::reserved_voice_due_into(
            world,
            &self.reservations,
            &mut self.due_scratch,
            &mut self.due,
        );
        self.service.clear();
        self.service.extend(self.due.iter().copied());
        let queued_len = self.queue.len();
        self.service.extend(self.queue.iter());
        self.exclude.clear();
        self.exclude.extend(self.queue.iter());
        self.queue.clear();

        common::contenders_into(
            world,
            &self.reservations,
            &self.exclude,
            &mut self.contenders,
        );
        self.auction(world, fs.rama_auction_slots);
        self.service.extend(self.winners.iter().copied());

        if world.measuring {
            world
                .metrics_mut()
                .contention
                .queue_length
                .push(queued_len as f64);
        }

        let mut remaining = fs.info_slots as f64;
        self.unserved.clear();
        while let Some(id) = self.service.pop_front() {
            if remaining < 1.0 {
                self.unserved.push(id);
                continue;
            }
            match world.class(id) {
                TerminalClass::Voice => {
                    if world.voice_backlog(id) == 0 {
                        continue;
                    }
                    match world.transmit_voice(id, 1.0, LinkAdaptation::Fixed) {
                        VoiceTx::Delivered | VoiceTx::Errored => {
                            self.reservations.insert(id);
                            remaining -= 1.0;
                        }
                        VoiceTx::InsufficientCapacity => {
                            world.record_wasted_slots(1.0);
                            self.reservations.insert(id);
                            remaining -= 1.0;
                        }
                        VoiceTx::NoPacket => {}
                    }
                }
                TerminalClass::Data => {
                    let backlog = world.data_backlog(id);
                    if backlog == 0 {
                        continue;
                    }
                    let slots = remaining.min(backlog as f64);
                    let tx = world.transmit_data(id, slots, u32::MAX, LinkAdaptation::Fixed);
                    if tx.delivered == 0 && tx.errored == 0 {
                        world.record_wasted_slots(slots);
                    }
                    remaining -= slots;
                }
            }
        }

        for &id in &self.unserved {
            if !self.reservations.contains(id) && world.has_backlog(id) {
                let _ = self.queue.push(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity() {
        let cfg = SimConfig::quick_test();
        let r = Rama::new(&cfg);
        assert_eq!(r.name(), "RAMA");
        assert_eq!(r.kind(), ProtocolKind::Rama);
        assert!(r.supports_request_queue());
        assert_eq!(r.active_reservations(), 0);
    }
}
