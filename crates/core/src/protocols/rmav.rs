//! RMAV — reservation-based multiple access with variable frame
//! (paper Section 3.2).
//!
//! RMAV dedicates a single *competitive* request slot per frame; every other
//! slot is an information slot already assigned to some winner.  A data
//! winner may claim up to `P_max` (10) information slots; a voice winner gets
//! a single slot for its pending packet.  Unlike the PRMA-style protocols,
//! RMAV has no per-talkspurt reservation renewal: every pending packet (voice
//! or data burst fragment) must win the competitive slot before it can be
//! scheduled.  With only one contention opportunity per frame the protocol
//! achieves very low delay at light load but thrashes as soon as a moderate
//! number of terminals contend — "even with a moderate number of voice users
//! (e.g., 10)", as the paper puts it.
//!
//! *Reproduction note:* the original variable-length frame is folded onto the
//! common 2.5 ms frame grid: each frame offers `rmav_info_slots` information
//! slots plus one competitive minislot, and a multi-slot data grant simply
//! spills over into the following frames until exhausted.  The defining
//! characteristics — one contention opportunity per frame, no talkspurt
//! reservation, multi-slot data grants — are preserved; only the elastic
//! frame duration is approximated, which keeps the traffic processes
//! identical (and the channel statistics equivalent — see
//! `charisma_des::rng` on lazy channel evaluation) across protocols.  RMAV
//! has no request-queue variant:
//! with a single winner per frame there is nothing to queue (paper
//! footnote 3).
//!
//! # Audit: the ~98 % voice loss at moderate load is predicted, not a bug
//!
//! The grant bookkeeping was audited end to end (grants are released when
//! the backlog drains or the packet expires, granted terminals are excluded
//! from contention, voice grants are single-shot, data grants spill across
//! frames) and found to implement the protocol as described.  The extreme
//! voice loss is *structural*: admission is bottlenecked by the single
//! competitive slot.  With `n` voice contenders at permission probability
//! `p_v = 0.15`, the per-frame admission probability is
//! `n·p_v·(1−p_v)^(n−1)`, which peaks at ≈ 0.4 admissions/frame around
//! `n ≈ 6` and *collapses* for larger `n` (at `n = 30` it is already below
//! 0.07).  Voice demand is `N_v × 0.426 (activity) / 8 frames ≈ 0.053·N_v`
//! packets/frame — it crosses the ≈ 0.4/frame admission ceiling at
//! `N_v ≈ 8`.  Because every voice packet must win the competitive slot
//! within its 20 ms (8-frame) deadline, everything beyond the ceiling is
//! dropped: ≈ 60 % loss at 20 voice users, ≈ 98 % at the 60-user quickstart
//! load.  This is exactly the paper's observation that RMAV performs poorly
//! "even with a moderate number of voice users (e.g., 10)" and thrashes
//! beyond that; `tests::voice_loss_is_structural_not_a_grant_leak`
//! regression-pins both the thrashing and the grant-release behaviour.

use std::collections::VecDeque;

use crate::config::SimConfig;
use crate::protocols::common::{self, IdSet};
use crate::protocols::{ProtocolKind, UplinkMac};
use crate::world::{FrameWorld, LinkAdaptation, VoiceTx};
use charisma_traffic::{TerminalClass, TerminalId};

/// An outstanding grant produced by the competitive slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Grant {
    terminal: TerminalId,
    slots_left: u32,
}

/// The RMAV protocol.
#[derive(Debug, Clone)]
pub struct Rmav {
    grants: VecDeque<Grant>,
    max_data_slots: u32,
    /// Reusable per-frame buffers (cleared every frame; no cross-frame state).
    exclude: IdSet,
    contenders: Vec<TerminalId>,
    winners: Vec<TerminalId>,
}

impl Rmav {
    /// Builds RMAV for a scenario configuration.
    pub fn new(config: &SimConfig) -> Self {
        Rmav {
            grants: VecDeque::new(),
            max_data_slots: config.frame.rmav_max_data_slots,
            exclude: IdSet::new(),
            contenders: Vec::new(),
            winners: Vec::new(),
        }
    }

    /// Number of outstanding grants awaiting information slots.
    pub fn outstanding_grants(&self) -> usize {
        self.grants.len()
    }
}

impl UplinkMac for Rmav {
    fn name(&self) -> &'static str {
        "RMAV"
    }

    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Rmav
    }

    fn supports_request_queue(&self) -> bool {
        false
    }

    fn forget_terminal(&mut self, id: TerminalId) {
        self.grants.retain(|g| g.terminal != id);
    }

    fn run_frame(&mut self, world: &mut FrameWorld<'_>) {
        let fs = world.config.frame;
        world.record_offered_slots(fs.rmav_info_slots);

        // Drop grants whose terminal no longer has anything to send (the
        // voice packet expired, or the data burst drained).
        self.grants.retain(|g| world.has_backlog(g.terminal));

        // --- The single competitive request slot -------------------------
        self.exclude.clear();
        self.exclude.extend(self.grants.iter().map(|g| g.terminal));
        let no_reservations = IdSet::new();
        common::contenders_into(world, &no_reservations, &self.exclude, &mut self.contenders);
        world.contend_into(1, &self.contenders, &mut self.winners);
        if let Some(&winner) = self.winners.first() {
            let slots = match world.class(winner) {
                TerminalClass::Voice => 1,
                TerminalClass::Data => {
                    let backlog = world.data_backlog(winner);
                    self.max_data_slots
                        .min(backlog.min(u32::MAX as u64) as u32)
                        .max(1)
                }
            };
            self.grants.push_back(Grant {
                terminal: winner,
                slots_left: slots,
            });
        }

        if world.measuring {
            world
                .metrics_mut()
                .contention
                .queue_length
                .push(self.grants.len() as f64);
        }

        // --- Information slots: serve the grant queue FIFO ----------------
        let mut remaining = fs.rmav_info_slots;
        while remaining > 0 {
            let Some(mut grant) = self.grants.pop_front() else {
                break;
            };
            let id = grant.terminal;
            match world.class(id) {
                TerminalClass::Voice => {
                    if world.voice_backlog(id) == 0 {
                        continue;
                    }
                    match world.transmit_voice(id, 1.0, LinkAdaptation::Fixed) {
                        VoiceTx::Delivered | VoiceTx::Errored => remaining -= 1,
                        VoiceTx::InsufficientCapacity => {
                            world.record_wasted_slots(1.0);
                            remaining -= 1;
                        }
                        VoiceTx::NoPacket => {}
                    }
                }
                TerminalClass::Data => {
                    let backlog = world.data_backlog(id);
                    if backlog == 0 {
                        continue;
                    }
                    let use_slots = grant.slots_left.min(remaining);
                    let tx =
                        world.transmit_data(id, use_slots as f64, u32::MAX, LinkAdaptation::Fixed);
                    if tx.delivered == 0 && tx.errored == 0 {
                        world.record_wasted_slots(use_slots as f64);
                    }
                    remaining -= use_slots;
                    grant.slots_left -= use_slots;
                    if grant.slots_left > 0 && world.has_backlog(id) {
                        // The grant spills into the next frame (variable-length
                        // frame behaviour folded onto the fixed grid).
                        self.grants.push_front(grant);
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_no_queue_support() {
        let cfg = SimConfig::quick_test();
        let r = Rmav::new(&cfg);
        assert_eq!(r.name(), "RMAV");
        assert_eq!(r.kind(), ProtocolKind::Rmav);
        assert!(!r.supports_request_queue());
        assert_eq!(r.outstanding_grants(), 0);
    }

    #[test]
    fn max_data_slots_comes_from_config() {
        let mut cfg = SimConfig::quick_test();
        cfg.frame.rmav_max_data_slots = 7;
        let r = Rmav::new(&cfg);
        assert_eq!(r.max_data_slots, 7);
    }

    #[test]
    fn voice_loss_is_structural_not_a_grant_leak() {
        // See the module-level audit note: the single competitive slot caps
        // admissions at ~0.4 packets/frame, so RMAV must thrash at loads the
        // reservation protocols handle easily — while at very light load (a
        // couple of terminals, demand below the admission ceiling) it must
        // not leak grants and must deliver most packets.
        use crate::scenario::Scenario;
        let mut cfg = SimConfig::quick_test();
        cfg.num_data = 0;
        cfg.warmup_frames = 400;
        cfg.measured_frames = 4_000;

        cfg.num_voice = 2;
        let light = Scenario::new(cfg.clone()).run(ProtocolKind::Rmav);
        assert!(
            light.voice_loss_rate() < 0.35,
            "at 2 voice users RMAV must be below the admission ceiling, loss {}",
            light.voice_loss_rate()
        );

        cfg.num_voice = 30;
        let rmav = Scenario::new(cfg.clone()).run(ProtocolKind::Rmav);
        let dtdma = Scenario::new(cfg).run(ProtocolKind::DTdmaFr);
        assert!(
            rmav.voice_loss_rate() > 0.6,
            "30 voice users is ~4x the single-slot admission ceiling, loss {}",
            rmav.voice_loss_rate()
        );
        assert!(
            dtdma.voice_loss_rate() < 0.1,
            "the same load is well within D-TDMA/FR capacity, loss {}",
            dtdma.voice_loss_rate()
        );
    }
}
