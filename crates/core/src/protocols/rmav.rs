//! RMAV — reservation-based multiple access with variable frame
//! (paper Section 3.2).
//!
//! RMAV dedicates a single *competitive* request slot per frame; every other
//! slot is an information slot already assigned to some winner.  A data
//! winner may claim up to `P_max` (10) information slots; a voice winner gets
//! a single slot for its pending packet.  Unlike the PRMA-style protocols,
//! RMAV has no per-talkspurt reservation renewal: every pending packet (voice
//! or data burst fragment) must win the competitive slot before it can be
//! scheduled.  With only one contention opportunity per frame the protocol
//! achieves very low delay at light load but thrashes as soon as a moderate
//! number of terminals contend — "even with a moderate number of voice users
//! (e.g., 10)", as the paper puts it.
//!
//! *Reproduction note:* the original variable-length frame is folded onto the
//! common 2.5 ms frame grid: each frame offers `rmav_info_slots` information
//! slots plus one competitive minislot, and a multi-slot data grant simply
//! spills over into the following frames until exhausted.  The defining
//! characteristics — one contention opportunity per frame, no talkspurt
//! reservation, multi-slot data grants — are preserved; only the elastic
//! frame duration is approximated, which keeps the traffic and channel
//! processes identical across protocols.  RMAV has no request-queue variant:
//! with a single winner per frame there is nothing to queue (paper
//! footnote 3).

use std::collections::{HashSet, VecDeque};

use crate::config::SimConfig;
use crate::protocols::common;
use crate::protocols::{ProtocolKind, UplinkMac};
use crate::world::{FrameWorld, LinkAdaptation, VoiceTx};
use charisma_traffic::{TerminalClass, TerminalId};

/// An outstanding grant produced by the competitive slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Grant {
    terminal: TerminalId,
    slots_left: u32,
}

/// The RMAV protocol.
#[derive(Debug, Clone)]
pub struct Rmav {
    grants: VecDeque<Grant>,
    max_data_slots: u32,
}

impl Rmav {
    /// Builds RMAV for a scenario configuration.
    pub fn new(config: &SimConfig) -> Self {
        Rmav {
            grants: VecDeque::new(),
            max_data_slots: config.frame.rmav_max_data_slots,
        }
    }

    /// Number of outstanding grants awaiting information slots.
    pub fn outstanding_grants(&self) -> usize {
        self.grants.len()
    }
}

impl UplinkMac for Rmav {
    fn name(&self) -> &'static str {
        "RMAV"
    }

    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Rmav
    }

    fn supports_request_queue(&self) -> bool {
        false
    }

    fn run_frame(&mut self, world: &mut FrameWorld<'_>) {
        let fs = world.config.frame;
        world.record_offered_slots(fs.rmav_info_slots);

        // Drop grants whose terminal no longer has anything to send (the
        // voice packet expired, or the data burst drained).
        self.grants
            .retain(|g| world.terminal(g.terminal).has_backlog());

        // --- The single competitive request slot -------------------------
        let exclude: HashSet<TerminalId> = self.grants.iter().map(|g| g.terminal).collect();
        let no_reservations = HashSet::new();
        let contenders = common::contenders(world, &no_reservations, &exclude);
        let winners = world.contend(1, &contenders);
        if let Some(&winner) = winners.first() {
            let slots = match world.terminal(winner).class() {
                TerminalClass::Voice => 1,
                TerminalClass::Data => {
                    let backlog = world.terminal(winner).data_backlog();
                    self.max_data_slots
                        .min(backlog.min(u32::MAX as u64) as u32)
                        .max(1)
                }
            };
            self.grants.push_back(Grant {
                terminal: winner,
                slots_left: slots,
            });
        }

        if world.measuring {
            world
                .metrics_mut()
                .contention
                .queue_length
                .push(self.grants.len() as f64);
        }

        // --- Information slots: serve the grant queue FIFO ----------------
        let mut remaining = fs.rmav_info_slots;
        while remaining > 0 {
            let Some(mut grant) = self.grants.pop_front() else {
                break;
            };
            let id = grant.terminal;
            match world.terminal(id).class() {
                TerminalClass::Voice => {
                    if world.terminal(id).voice_backlog() == 0 {
                        continue;
                    }
                    match world.transmit_voice(id, 1.0, LinkAdaptation::Fixed) {
                        VoiceTx::Delivered | VoiceTx::Errored => remaining -= 1,
                        VoiceTx::InsufficientCapacity => {
                            world.record_wasted_slots(1.0);
                            remaining -= 1;
                        }
                        VoiceTx::NoPacket => {}
                    }
                }
                TerminalClass::Data => {
                    let backlog = world.terminal(id).data_backlog();
                    if backlog == 0 {
                        continue;
                    }
                    let use_slots = grant.slots_left.min(remaining);
                    let tx =
                        world.transmit_data(id, use_slots as f64, u32::MAX, LinkAdaptation::Fixed);
                    if tx.delivered == 0 && tx.errored == 0 {
                        world.record_wasted_slots(use_slots as f64);
                    }
                    remaining -= use_slots;
                    grant.slots_left -= use_slots;
                    if grant.slots_left > 0 && world.terminal(id).has_backlog() {
                        // The grant spills into the next frame (variable-length
                        // frame behaviour folded onto the fixed grid).
                        self.grants.push_front(grant);
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_no_queue_support() {
        let cfg = SimConfig::quick_test();
        let r = Rmav::new(&cfg);
        assert_eq!(r.name(), "RMAV");
        assert_eq!(r.kind(), ProtocolKind::Rmav);
        assert!(!r.supports_request_queue());
        assert_eq!(r.outstanding_grants(), 0);
    }

    #[test]
    fn max_data_slots_comes_from_config() {
        let mut cfg = SimConfig::quick_test();
        cfg.frame.rmav_max_data_slots = 7;
        let r = Rmav::new(&cfg);
        assert_eq!(r.max_data_slots, 7);
    }
}
