//! The six uplink access control protocols.
//!
//! | Module | Protocol | PHY | Key idea |
//! |---|---|---|---|
//! | [`dtdma`] | D-TDMA/FR | fixed | static frame, immediate FCFS assignment |
//! | [`dtdma`] | D-TDMA/VR | adaptive (blind) | same MAC as FR over a variable-throughput PHY |
//! | [`rama`] | RAMA | fixed | collision-free ID auction |
//! | [`rmav`] | RMAV | fixed | one competitive slot per frame, multi-slot data grants |
//! | [`drma`] | DRMA | fixed | unused information slots become request minislots |
//! | [`charisma`] | CHARISMA | adaptive (CSI-aware) | gather all requests, allocate by CSI/deadline priority |
//!
//! Every protocol implements [`UplinkMac`] and is driven one frame at a time
//! by the scenario runner through a [`FrameWorld`].

pub mod charisma;
pub mod common;
pub mod drma;
pub mod dtdma;
pub mod rama;
pub mod rmav;

pub use charisma::Charisma;
pub use drma::Drma;
pub use dtdma::DTdma;
pub use rama::Rama;
pub use rmav::Rmav;

use crate::config::SimConfig;
use crate::world::FrameWorld;
use charisma_traffic::TerminalId;
use serde::{Deserialize, Serialize};

/// A MAC protocol driven frame-synchronously by the scenario runner.
///
/// `Send` is a supertrait because the sharded multi-cell path steps cells —
/// each owning one MAC instance — on worker threads; protocol state must be
/// plain data (no `Rc`, no thread affinity), which every implementation here
/// satisfies by construction.
pub trait UplinkMac: Send {
    /// Human-readable protocol name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Which protocol this is.
    fn kind(&self) -> ProtocolKind;

    /// Whether the protocol can make use of a base-station request queue
    /// (every protocol except RMAV, per Section 4.5 of the paper).
    fn supports_request_queue(&self) -> bool {
        true
    }

    /// Executes one uplink frame: request gathering, slot allocation and
    /// packet transmission.
    fn run_frame(&mut self, world: &mut FrameWorld<'_>);

    /// Purges every piece of per-terminal state the base station holds for
    /// `id` — reservations, queued or gathered requests, cached CSI, pending
    /// grants.  The multi-cell system layer calls this on the **old** cell's
    /// MAC instance when a terminal is handed off, so a departed terminal can
    /// never be scheduled by a base station that no longer serves it.  The
    /// default is a no-op for stateless protocols.
    fn forget_terminal(&mut self, _id: TerminalId) {}
}

/// Identifies one of the six protocols under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// The paper's proposed channel-adaptive protocol.
    Charisma,
    /// Dynamic TDMA with a fixed-rate PHY.
    DTdmaFr,
    /// Dynamic TDMA with a (MAC-blind) variable-rate PHY.
    DTdmaVr,
    /// Resource auction multiple access.
    Rama,
    /// Reservation-based multiple access with variable frame.
    Rmav,
    /// Dynamic reservation multiple access.
    Drma,
}

impl ProtocolKind {
    /// All six protocols, in the order the paper lists them.
    pub const ALL: [ProtocolKind; 6] = [
        ProtocolKind::Charisma,
        ProtocolKind::DTdmaVr,
        ProtocolKind::DTdmaFr,
        ProtocolKind::Rama,
        ProtocolKind::Drma,
        ProtocolKind::Rmav,
    ];

    /// The display name used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolKind::Charisma => "CHARISMA",
            ProtocolKind::DTdmaFr => "D-TDMA/FR",
            ProtocolKind::DTdmaVr => "D-TDMA/VR",
            ProtocolKind::Rama => "RAMA",
            ProtocolKind::Rmav => "RMAV",
            ProtocolKind::Drma => "DRMA",
        }
    }

    /// Whether the protocol supports the request-queue variant.
    pub fn supports_request_queue(&self) -> bool {
        !matches!(self, ProtocolKind::Rmav)
    }

    /// Parses the display label back into a protocol (the inverse of
    /// [`ProtocolKind::label`]; used by the scenario-spec JSON codec).
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.label() == label)
    }

    /// Builds a fresh protocol instance for a scenario configuration.
    pub fn build(&self, config: &SimConfig) -> Box<dyn UplinkMac> {
        match self {
            ProtocolKind::Charisma => Box::new(Charisma::new(config)),
            ProtocolKind::DTdmaFr => Box::new(DTdma::fixed_rate(config)),
            ProtocolKind::DTdmaVr => Box::new(DTdma::variable_rate(config)),
            ProtocolKind::Rama => Box::new(Rama::new(config)),
            ProtocolKind::Rmav => Box::new(Rmav::new(config)),
            ProtocolKind::Drma => Box::new(Drma::new(config)),
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_six_distinct_protocols() {
        let mut labels: Vec<&str> = ProtocolKind::ALL.iter().map(|p| p.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn rmav_is_the_only_protocol_without_request_queue_support() {
        for p in ProtocolKind::ALL {
            assert_eq!(p.supports_request_queue(), p != ProtocolKind::Rmav, "{p}");
        }
    }

    #[test]
    fn factory_builds_matching_kinds() {
        let cfg = SimConfig::quick_test();
        for p in ProtocolKind::ALL {
            let built = p.build(&cfg);
            assert_eq!(built.kind(), p);
            assert_eq!(built.name(), p.label());
            assert_eq!(built.supports_request_queue(), p.supports_request_queue());
        }
    }
}
