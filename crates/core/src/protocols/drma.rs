//! DRMA — dynamic reservation multiple access (paper Section 3.3).
//!
//! DRMA has no dedicated request subframe: a frame consists of `N_k`
//! information slots, and before each slot the base station announces whether
//! it is assigned.  An *unassigned* information slot is converted on the fly
//! into `N_x` request minislots in which active terminals contend; the
//! winners are appended to the service list and use later information slots
//! of the same frame (or of subsequent frames, via the request queue).
//!
//! The defining property is self-stabilisation: when the system is loaded,
//! every slot is assigned, no contention opportunities exist and terminals
//! implicitly queue at their own side ("distributed request queueing"), so
//! the protocol cannot thrash — which is also why an explicit base-station
//! request queue adds little (Section 5.1 of the paper).

use std::collections::VecDeque;

use crate::config::SimConfig;
use crate::protocols::common::{self, IdSet, RequestQueue};
use crate::protocols::{ProtocolKind, UplinkMac};
use crate::world::{FrameWorld, LinkAdaptation, VoiceTx};
use charisma_des::SimTime;
use charisma_traffic::{TerminalClass, TerminalId};

/// The DRMA protocol.
#[derive(Debug, Clone)]
pub struct Drma {
    reservations: IdSet,
    queue: RequestQueue,
    /// Reusable per-frame buffers (cleared every frame; no cross-frame state).
    exclude: IdSet,
    pool: Vec<TerminalId>,
    winners: Vec<TerminalId>,
    pending: VecDeque<TerminalId>,
    due: Vec<TerminalId>,
    due_scratch: Vec<(SimTime, TerminalId)>,
}

impl Drma {
    /// Builds DRMA for a scenario configuration.
    pub fn new(config: &SimConfig) -> Self {
        Drma {
            reservations: IdSet::new(),
            queue: RequestQueue::from_config(config),
            exclude: IdSet::new(),
            pool: Vec::new(),
            winners: Vec::new(),
            pending: VecDeque::new(),
            due: Vec::new(),
            due_scratch: Vec::new(),
        }
    }

    /// Number of terminals currently holding a voice reservation.
    pub fn active_reservations(&self) -> usize {
        self.reservations.len()
    }
}

impl UplinkMac for Drma {
    fn name(&self) -> &'static str {
        "DRMA"
    }

    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Drma
    }

    fn forget_terminal(&mut self, id: TerminalId) {
        self.reservations.remove(id);
        self.queue.remove(id);
    }

    fn run_frame(&mut self, world: &mut FrameWorld<'_>) {
        let fs = world.config.frame;
        world.record_offered_slots(fs.drma_info_slots);

        if world.frame == 0 {
            common::seed_initial_reservations(world, &mut self.reservations);
        }
        common::release_ended_reservations(world, &mut self.reservations);
        self.queue.purge_idle(world);

        // Pending service: reserved voice packets due, then queued requests.
        common::reserved_voice_due_into(
            world,
            &self.reservations,
            &mut self.due_scratch,
            &mut self.due,
        );
        self.pending.clear();
        self.pending.extend(self.due.iter().copied());
        let queued_len = self.queue.len();
        self.pending.extend(self.queue.iter());
        self.queue.clear();

        if world.measuring {
            world
                .metrics_mut()
                .contention
                .queue_length
                .push(queued_len as f64);
        }

        // Terminals that may contend when an unassigned slot is converted
        // (everything already pending — due renewals and drained queue
        // entries — is represented at the base station).
        self.exclude.clear();
        self.exclude.extend(self.pending.iter().copied());
        common::contenders_into(world, &self.reservations, &self.exclude, &mut self.pool);

        // Walk the N_k information slots of the frame.
        for _slot in 0..fs.drma_info_slots {
            if let Some(id) = self.pending.pop_front() {
                match world.class(id) {
                    TerminalClass::Voice => {
                        if world.voice_backlog(id) == 0 {
                            // Nothing due after all: the slot falls through to
                            // contention below on the next iteration; to keep
                            // the walk simple we simply leave it unassigned.
                            continue;
                        }
                        match world.transmit_voice(id, 1.0, LinkAdaptation::Fixed) {
                            VoiceTx::Delivered | VoiceTx::Errored => {
                                self.reservations.insert(id);
                            }
                            VoiceTx::InsufficientCapacity => {
                                world.record_wasted_slots(1.0);
                                self.reservations.insert(id);
                            }
                            VoiceTx::NoPacket => {}
                        }
                    }
                    TerminalClass::Data => {
                        // One information slot per successful data request; the
                        // terminal contends again for the rest of its burst.
                        let tx = world.transmit_data(id, 1.0, u32::MAX, LinkAdaptation::Fixed);
                        if tx.delivered == 0 && tx.errored == 0 {
                            world.record_wasted_slots(1.0);
                        }
                    }
                }
            } else {
                // Unassigned slot → N_x request minislots.
                if self.pool.is_empty() {
                    continue;
                }
                world.contend_into(fs.drma_minislots, &self.pool, &mut self.winners);
                if !self.winners.is_empty() {
                    let winners = &self.winners;
                    self.pool.retain(|id| !winners.contains(id));
                    self.pending.extend(winners.iter().copied());
                }
            }
        }

        // Winners acknowledged late in the frame that found no free slot are
        // queued (if the queue is enabled) or forgotten.
        for &id in &self.pending {
            if !self.reservations.contains(id) && world.has_backlog(id) {
                let _ = self.queue.push(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity() {
        let cfg = SimConfig::quick_test();
        let d = Drma::new(&cfg);
        assert_eq!(d.name(), "DRMA");
        assert_eq!(d.kind(), ProtocolKind::Drma);
        assert!(d.supports_request_queue());
        assert_eq!(d.active_reservations(), 0);
    }
}
