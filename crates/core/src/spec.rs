//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] is a *named bundle of overrides* on
//! [`SimConfig`]: which protocols to run, the
//! voice/data user grids, the speed profile, the channel mode, the run
//! length, the seed.  Specs are pure data — they serialise to JSON (strictly:
//! unknown keys and malformed grids are rejected, see [`ScenarioSpec::from_json`])
//! and expand into the [`SweepPoint`]s that the
//! existing deterministic parallel sweep executor runs.  Every experiment of
//! the paper's evaluation, plus scenarios the paper never plotted, is
//! expressed this way in the benchmark registry (`charisma_bench::registry`)
//! instead of as a hand-rolled loop in its own binary.
//!
//! ```
//! use charisma::spec::{Axis, FrameBudget, ScenarioSpec};
//!
//! let mut spec = ScenarioSpec::new("example");
//! spec.axis = Axis::VoiceUsers;
//! spec.voice_users = vec![10, 20];
//! spec.data_users = vec![0, 5];
//!
//! // The spec round-trips through JSON byte-for-byte…
//! let json = spec.to_json_string();
//! assert_eq!(ScenarioSpec::from_json_str(&json).unwrap(), spec);
//!
//! // …and expands into one sweep point per (protocol, grid) combination.
//! let points = spec
//!     .expand(FrameBudget { warmup: 100, measured: 1_000 })
//!     .unwrap();
//! assert_eq!(points.len(), 6 * 2 * 2); // 6 protocols x 2 Nd x 2 Nv
//! ```

use crate::config::{HandoffAdmission, HandoffConfig, Layout, LoadRamp, SimConfig, SystemConfig};
use crate::json::Json;
use crate::protocols::ProtocolKind;
use crate::sweep::{ReplicationPolicy, SweepPoint};
use charisma_radio::{ChannelMode, PathLossConfig, SpeedProfile};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An invalid scenario specification (bad grid, unknown key, malformed JSON).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario spec error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(message: impl Into<String>) -> SpecError {
    SpecError(message.into())
}

/// The independent variable a spec sweeps over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Axis {
    /// Sweep the number of voice users (`voice_users` is the axis grid).
    VoiceUsers,
    /// Sweep the number of data users (`data_users` is the axis grid).
    DataUsers,
    /// Sweep a fixed terminal speed (`speed_grid_kmh` is the axis grid; the
    /// `speed` profile is ignored).
    SpeedKmh,
    /// No sweep: one run per (protocol, queue variant, voice grid x data
    /// grid) combination, with the voice-user count reported as the load.
    Single,
}

impl Axis {
    /// The JSON encoding of the axis.
    pub fn as_str(&self) -> &'static str {
        match self {
            Axis::VoiceUsers => "voice_users",
            Axis::DataUsers => "data_users",
            Axis::SpeedKmh => "speed_kmh",
            Axis::Single => "single",
        }
    }

    /// Parses the JSON encoding.
    pub fn from_str_strict(s: &str) -> Result<Self, SpecError> {
        match s {
            "voice_users" => Ok(Axis::VoiceUsers),
            "data_users" => Ok(Axis::DataUsers),
            "speed_kmh" => Ok(Axis::SpeedKmh),
            "single" => Ok(Axis::Single),
            other => Err(err(format!(
                "unknown axis \"{other}\" (valid: voice_users, data_users, speed_kmh, single)"
            ))),
        }
    }
}

/// Which request-queue variants (Section 4.5 of the paper) a spec covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueToggle {
    /// Base station without a request queue only.
    Off,
    /// Request queue enabled (protocols without queue support are skipped).
    On,
    /// Both variants — the paper's (a)/(b) sub-figure pairs.
    Both,
}

impl QueueToggle {
    /// The queue settings this toggle expands to.
    pub fn variants(&self) -> &'static [bool] {
        match self {
            QueueToggle::Off => &[false],
            QueueToggle::On => &[true],
            QueueToggle::Both => &[false, true],
        }
    }

    /// The JSON encoding of the toggle.
    pub fn as_str(&self) -> &'static str {
        match self {
            QueueToggle::Off => "off",
            QueueToggle::On => "on",
            QueueToggle::Both => "both",
        }
    }

    /// Parses the JSON encoding.
    pub fn from_str_strict(s: &str) -> Result<Self, SpecError> {
        match s {
            "off" => Ok(QueueToggle::Off),
            "on" => Ok(QueueToggle::On),
            "both" => Ok(QueueToggle::Both),
            other => Err(err(format!(
                "unknown request_queue \"{other}\" (valid: off, on, both)"
            ))),
        }
    }
}

/// How long each expanded point simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DurationSpec {
    /// Use the [`FrameBudget`] supplied at expansion time (i.e. the bench
    /// profile: quick / standard / full).
    Profile,
    /// A fixed number of frames, independent of the profile.
    Frames {
        /// Warm-up frames before measurement starts.
        warmup: u64,
        /// Measured frames.
        measured: u64,
    },
}

/// The profile-supplied run length used by [`DurationSpec::Profile`] specs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameBudget {
    /// Warm-up frames per sweep point.
    pub warmup: u64,
    /// Measured frames per sweep point.
    pub measured: u64,
}

/// How many replications each expanded point of a spec runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RepsSpec {
    /// Use the profile-level default [`ReplicationPolicy`] supplied at run
    /// time (quick / standard / full each define one).
    Profile,
    /// A fixed policy, independent of the profile.
    Policy(ReplicationPolicy),
}

/// A mid-run voice load step, expressed relative to the measured window so it
/// scales with the profile (resolved to an absolute
/// [`LoadRamp`] at expansion).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RampSpec {
    /// Voice terminals active from frame 0; the rest activate at the ramp.
    pub initial_voice: u32,
    /// Where in the measured window the remaining voice users activate,
    /// as a fraction in `[0, 1)` (0.5 = halfway through measurement).
    pub at_measured_fraction: f64,
}

/// One sweep point produced by expanding a [`ScenarioSpec`], carrying the
/// labelling the campaign CSV needs alongside the executable point.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPoint {
    /// Name of the spec the point came from.
    pub scenario: String,
    /// Mean terminal speed of the point (the swept value on a speed axis).
    pub speed_kmh: f64,
    /// The spec's replication override (None: the profile default applies).
    pub reps: Option<ReplicationPolicy>,
    /// The executable sweep point (protocol + full configuration).
    pub point: SweepPoint,
}

/// A named, declarative scenario: overrides on the paper's Table 1 defaults
/// plus the grids to sweep.  See the [module docs](self) for the JSON shape
/// and an example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (the `scenario` column of campaign CSVs).
    pub name: String,
    /// Protocols to run (expansion order follows this list).
    pub protocols: Vec<ProtocolKind>,
    /// The independent variable.
    pub axis: Axis,
    /// Voice-user grid (the axis grid when `axis` is [`Axis::VoiceUsers`],
    /// otherwise the fixed voice populations to cross with the axis).
    pub voice_users: Vec<u32>,
    /// Data-user grid (the axis grid when `axis` is [`Axis::DataUsers`]).
    pub data_users: Vec<u32>,
    /// Terminal speed population (ignored when `axis` is [`Axis::SpeedKmh`]).
    pub speed: SpeedProfile,
    /// Fixed speeds swept when `axis` is [`Axis::SpeedKmh`]; must be empty
    /// otherwise.
    pub speed_grid_kmh: Vec<f64>,
    /// Channel evaluation mode (lazy by default).
    pub channel_mode: ChannelMode,
    /// Run length per point.
    pub duration: DurationSpec,
    /// Request-queue variants to cover.
    pub request_queue: QueueToggle,
    /// Master seed override (None: the Table 1 default seed).
    pub seed: Option<u64>,
    /// CHARISMA's CSI term (false: the Section 5.3.1 CSI-blind ablation).
    pub csi_aware: bool,
    /// Optional mid-run voice load step.
    pub ramp: Option<RampSpec>,
    /// Replications per expanded point (default: the profile policy).
    pub replications: RepsSpec,
    /// Number of cells (1: the paper's implicit single cell — the
    /// historical code path; > 1: the multi-cell system layer, with
    /// `voice_users`/`data_users` read as **per-cell** populations).
    pub cells: u32,
    /// Base-station layout geometry (multi-cell specs only).
    pub layout: Layout,
    /// Handoff admission behaviour (multi-cell specs only).
    pub handoff: HandoffConfig,
    /// Intra-point worker threads for the sharded system frame loop
    /// (multi-cell specs only; 0 or 1 selects the round-robin path).  An
    /// execution hint: reports are byte-identical at any value.
    pub system_threads: u32,
}

impl ScenarioSpec {
    /// A spec with the paper's defaults: all six protocols, a single
    /// 40-voice-user point, paper speed population, lazy channel, no queue.
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioSpec {
            name: name.into(),
            protocols: ProtocolKind::ALL.to_vec(),
            axis: Axis::Single,
            voice_users: vec![40],
            data_users: vec![0],
            speed: SpeedProfile::paper_default(),
            speed_grid_kmh: Vec::new(),
            channel_mode: ChannelMode::Lazy,
            duration: DurationSpec::Profile,
            request_queue: QueueToggle::Off,
            seed: None,
            csi_aware: true,
            ramp: None,
            replications: RepsSpec::Profile,
            cells: 1,
            layout: Layout::default(),
            handoff: HandoffConfig::default(),
            system_threads: 0,
        }
    }

    /// The master seed the expanded points will use.
    pub fn effective_seed(&self) -> u64 {
        self.seed.unwrap_or_else(|| SimConfig::default_paper().seed)
    }

    /// Validates the spec without expanding it.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty() {
            return Err(err("scenario name must not be empty"));
        }
        if self.protocols.is_empty() {
            return Err(err(format!(
                "{}: protocol set must not be empty",
                self.name
            )));
        }
        for (i, p) in self.protocols.iter().enumerate() {
            if self.protocols[..i].contains(p) {
                return Err(err(format!("{}: duplicate protocol {p}", self.name)));
            }
        }
        check_grid_u32(&self.name, "voice_users", &self.voice_users)?;
        check_grid_u32(&self.name, "data_users", &self.data_users)?;
        check_speed_profile(&self.name, &self.speed)?;
        if self.axis == Axis::SpeedKmh {
            check_grid_f64(&self.name, "speed_grid_kmh", &self.speed_grid_kmh)?;
        } else if !self.speed_grid_kmh.is_empty() {
            return Err(err(format!(
                "{}: speed_grid_kmh is only valid with axis \"speed_kmh\"",
                self.name
            )));
        }
        let min_voice = *self.voice_users.first().expect("non-empty grid");
        let min_data = *self.data_users.first().expect("non-empty grid");
        if min_voice == 0 && min_data == 0 {
            return Err(err(format!(
                "{}: the (voice_users, data_users) grids include the empty cell (0, 0)",
                self.name
            )));
        }
        if let DurationSpec::Frames { measured, .. } = self.duration {
            if measured == 0 {
                return Err(err(format!(
                    "{}: measured frames must be positive",
                    self.name
                )));
            }
        }
        if self.request_queue != QueueToggle::Off
            && !self.protocols.iter().any(|p| p.supports_request_queue())
        {
            return Err(err(format!(
                "{}: request queue enabled but no selected protocol supports one",
                self.name
            )));
        }
        if let RepsSpec::Policy(policy) = &self.replications {
            policy
                .validate()
                .map_err(|e| err(format!("{}: {e}", self.name)))?;
        }
        if self.cells == 0 {
            return Err(err(format!(
                "{}: a system needs at least one cell",
                self.name
            )));
        }
        if self.cells == 1
            && (self.layout != Layout::default()
                || self.handoff != HandoffConfig::default()
                || self.system_threads > 0)
        {
            // The serialiser omits layout/handoff/system_threads for
            // single-cell specs, so a non-default value here would be dropped
            // silently on round-trip; refuse it instead (it has no effect on
            // a single-cell run).
            return Err(err(format!(
                "{}: layout/handoff/system_threads settings are only meaningful with cells > 1",
                self.name
            )));
        }
        if self.cells > 1 {
            let radius = self.layout.cell_radius_m();
            if !(radius.is_finite() && radius > 0.0) {
                return Err(err(format!(
                    "{}: cell radius must be positive and finite, got {radius}",
                    self.name
                )));
            }
            if self.handoff.retry_frames == 0 {
                return Err(err(format!(
                    "{}: handoff retry_frames must be positive",
                    self.name
                )));
            }
            if !(self.handoff.hysteresis_m.is_finite() && self.handoff.hysteresis_m >= 0.0) {
                return Err(err(format!(
                    "{}: handoff hysteresis must be finite and non-negative, got {}",
                    self.name, self.handoff.hysteresis_m
                )));
            }
            if self.handoff.cell_capacity != 0 {
                // Every expanded point starts each cell at (Nv + Nd)
                // terminals, so a finite capacity must cover the largest
                // grid cell.
                let largest = self.voice_users.last().copied().unwrap_or(0)
                    + self.data_users.last().copied().unwrap_or(0);
                if self.handoff.cell_capacity < largest {
                    return Err(err(format!(
                        "{}: handoff cell_capacity ({}) is below the largest initial \
                         per-cell population ({largest})",
                        self.name, self.handoff.cell_capacity
                    )));
                }
            }
        }
        if let Some(ramp) = &self.ramp {
            if !(0.0..1.0).contains(&ramp.at_measured_fraction) {
                return Err(err(format!(
                    "{}: ramp at_measured_fraction must be in [0, 1), got {}",
                    self.name, ramp.at_measured_fraction
                )));
            }
            if ramp.initial_voice > min_voice {
                return Err(err(format!(
                    "{}: ramp initial_voice ({}) exceeds the smallest voice population ({})",
                    self.name, ramp.initial_voice, min_voice
                )));
            }
        }
        Ok(())
    }

    /// Expands the spec into executable sweep points, in a deterministic
    /// order: protocols (as listed) x queue variants x non-axis grid x axis
    /// grid.  Protocols that cannot use a request queue are skipped for the
    /// queue-on variant, mirroring the paper's figures.
    pub fn expand(&self, budget: FrameBudget) -> Result<Vec<CampaignPoint>, SpecError> {
        self.validate()?;
        let (warmup, measured) = match self.duration {
            DurationSpec::Profile => (budget.warmup, budget.measured),
            DurationSpec::Frames { warmup, measured } => (warmup, measured),
        };
        let mut out = Vec::new();
        for &protocol in &self.protocols {
            for &queue in self.request_queue.variants() {
                if queue && !protocol.supports_request_queue() {
                    continue;
                }
                match self.axis {
                    Axis::VoiceUsers => {
                        for &nd in &self.data_users {
                            for &nv in &self.voice_users {
                                out.push(self.point(
                                    protocol, queue, nv, nd, None, nv as f64, warmup, measured,
                                ));
                            }
                        }
                    }
                    Axis::DataUsers => {
                        for &nv in &self.voice_users {
                            for &nd in &self.data_users {
                                out.push(self.point(
                                    protocol, queue, nv, nd, None, nd as f64, warmup, measured,
                                ));
                            }
                        }
                    }
                    Axis::SpeedKmh => {
                        for &nv in &self.voice_users {
                            for &nd in &self.data_users {
                                for &v in &self.speed_grid_kmh {
                                    out.push(self.point(
                                        protocol,
                                        queue,
                                        nv,
                                        nd,
                                        Some(v),
                                        v,
                                        warmup,
                                        measured,
                                    ));
                                }
                            }
                        }
                    }
                    Axis::Single => {
                        for &nv in &self.voice_users {
                            for &nd in &self.data_users {
                                out.push(self.point(
                                    protocol, queue, nv, nd, None, nv as f64, warmup, measured,
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn point(
        &self,
        protocol: ProtocolKind,
        queue: bool,
        num_voice: u32,
        num_data: u32,
        speed_override: Option<f64>,
        load: f64,
        warmup: u64,
        measured: u64,
    ) -> CampaignPoint {
        let mut config = SimConfig::default_paper();
        config.num_voice = num_voice;
        config.num_data = num_data;
        config.request_queue = queue;
        config.channel_mode = self.channel_mode;
        config.charisma.csi_aware = self.csi_aware;
        config.warmup_frames = warmup;
        config.measured_frames = measured;
        config.speed = match speed_override {
            Some(v) => SpeedProfile::Fixed(v),
            None => self.speed,
        };
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        if let Some(ramp) = &self.ramp {
            config.ramp = Some(LoadRamp {
                initial_voice: ramp.initial_voice,
                activation_frame: warmup
                    + (measured as f64 * ramp.at_measured_fraction).round() as u64,
            });
        }
        if self.cells > 1 {
            config.system = Some(SystemConfig {
                cells: self.cells,
                layout: self.layout,
                handoff: self.handoff,
                path_loss: PathLossConfig::default(),
                threads: self.system_threads,
            });
        }
        CampaignPoint {
            scenario: self.name.clone(),
            speed_kmh: config.speed.mean_kmh(),
            reps: match self.replications {
                RepsSpec::Profile => None,
                RepsSpec::Policy(policy) => Some(policy),
            },
            point: SweepPoint {
                load,
                protocol,
                config,
            },
        }
    }

    /// Serialises the spec to a JSON object (all fields explicit).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("name".into(), Json::Str(self.name.clone())),
            (
                "protocols".into(),
                Json::Array(
                    self.protocols
                        .iter()
                        .map(|p| Json::Str(p.label().to_string()))
                        .collect(),
                ),
            ),
            ("axis".into(), Json::Str(self.axis.as_str().into())),
            ("voice_users".into(), u32_grid_to_json(&self.voice_users)),
            ("data_users".into(), u32_grid_to_json(&self.data_users)),
            ("speed".into(), speed_to_json(&self.speed)),
            (
                "channel_mode".into(),
                Json::Str(channel_mode_str(self.channel_mode).into()),
            ),
            ("duration".into(), duration_to_json(&self.duration)),
            (
                "replications".into(),
                replications_to_json(&self.replications),
            ),
            (
                "request_queue".into(),
                Json::Str(self.request_queue.as_str().into()),
            ),
            ("csi_aware".into(), Json::Bool(self.csi_aware)),
        ];
        if !self.speed_grid_kmh.is_empty() {
            pairs.push((
                "speed_grid_kmh".into(),
                Json::Array(self.speed_grid_kmh.iter().map(|&v| Json::Num(v)).collect()),
            ));
        }
        // The multi-cell fields are emitted only for multi-cell specs, so
        // the serialised form of every pre-existing (single-cell) spec is
        // byte-identical to earlier releases.
        if self.cells > 1 {
            pairs.push(("cells".into(), Json::Int(self.cells as u64)));
            pairs.push(("layout".into(), layout_to_json(&self.layout)));
            pairs.push(("handoff".into(), handoff_to_json(&self.handoff)));
            if self.system_threads > 0 {
                pairs.push((
                    "system_threads".into(),
                    Json::Int(self.system_threads as u64),
                ));
            }
        }
        if let Some(seed) = self.seed {
            pairs.push(("seed".into(), Json::Int(seed)));
        }
        if let Some(ramp) = &self.ramp {
            pairs.push((
                "ramp".into(),
                Json::Object(vec![
                    ("initial_voice".into(), Json::Int(ramp.initial_voice as u64)),
                    (
                        "at_measured_fraction".into(),
                        Json::Num(ramp.at_measured_fraction),
                    ),
                ]),
            ));
        }
        Json::Object(pairs)
    }

    /// The JSON text form of the spec (deterministic bytes).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Decodes a spec from a JSON object, rejecting unknown keys; missing
    /// optional fields take the [`ScenarioSpec::new`] defaults.  The decoded
    /// spec is validated before it is returned.
    pub fn from_json(value: &Json) -> Result<Self, SpecError> {
        let pairs = value
            .as_object()
            .ok_or_else(|| err(format!("spec must be an object, got {}", value.type_name())))?;
        let name = value
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| err("spec is missing the required string field \"name\""))?;
        let mut spec = ScenarioSpec::new(name);
        let mut saw_layout = false;
        let mut saw_handoff = false;
        for (key, v) in pairs {
            match key.as_str() {
                "name" => {}
                "protocols" => {
                    let items = v
                        .as_array()
                        .ok_or_else(|| err("\"protocols\" must be an array of labels"))?;
                    spec.protocols = items
                        .iter()
                        .map(|item| {
                            let label = item
                                .as_str()
                                .ok_or_else(|| err("\"protocols\" entries must be strings"))?;
                            ProtocolKind::from_label(label).ok_or_else(|| {
                                err(format!(
                                    "unknown protocol \"{label}\" (valid: {})",
                                    ProtocolKind::ALL.map(|p| p.label()).join(", ")
                                ))
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "axis" => {
                    spec.axis = Axis::from_str_strict(
                        v.as_str().ok_or_else(|| err("\"axis\" must be a string"))?,
                    )?;
                }
                "voice_users" => spec.voice_users = json_to_u32_grid(v, "voice_users")?,
                "data_users" => spec.data_users = json_to_u32_grid(v, "data_users")?,
                "speed" => spec.speed = speed_from_json(v)?,
                "speed_grid_kmh" => spec.speed_grid_kmh = json_to_f64_grid(v, "speed_grid_kmh")?,
                "channel_mode" => {
                    spec.channel_mode = channel_mode_from_str(
                        v.as_str()
                            .ok_or_else(|| err("\"channel_mode\" must be a string"))?,
                    )?;
                }
                "duration" => spec.duration = duration_from_json(v)?,
                "replications" => spec.replications = replications_from_json(v)?,
                "request_queue" => {
                    spec.request_queue = QueueToggle::from_str_strict(
                        v.as_str()
                            .ok_or_else(|| err("\"request_queue\" must be a string"))?,
                    )?;
                }
                "seed" => {
                    spec.seed = Some(
                        v.as_u64()
                            .ok_or_else(|| err("\"seed\" must be an unsigned integer"))?,
                    );
                }
                "csi_aware" => {
                    spec.csi_aware = v
                        .as_bool()
                        .ok_or_else(|| err("\"csi_aware\" must be a boolean"))?;
                }
                "ramp" => spec.ramp = Some(ramp_from_json(v)?),
                "cells" => {
                    spec.cells = v
                        .as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| err("\"cells\" must be an unsigned 32-bit integer"))?;
                }
                "layout" => {
                    spec.layout = layout_from_json(v)?;
                    saw_layout = true;
                }
                "handoff" => {
                    spec.handoff = handoff_from_json(v)?;
                    saw_handoff = true;
                }
                "system_threads" => {
                    spec.system_threads = v
                        .as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| {
                            err("\"system_threads\" must be an unsigned 32-bit integer")
                        })?;
                }
                unknown => {
                    return Err(err(format!(
                        "unknown key \"{unknown}\" in scenario spec \"{name}\""
                    )));
                }
            }
        }
        if spec.cells <= 1 && (saw_layout || saw_handoff) {
            return Err(err(format!(
                "{}: \"layout\"/\"handoff\" are only valid with \"cells\" > 1",
                spec.name
            )));
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Decodes a spec from JSON text (see [`ScenarioSpec::from_json`]).
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        let value = Json::parse(text).map_err(|e| err(e.to_string()))?;
        Self::from_json(&value)
    }
}

/// Rejects speed profiles with non-finite or negative values up front (the
/// radio layer's own assertions would otherwise only fire mid-run, and a NaN
/// would serialise as invalid JSON in the manifest).
fn check_speed_profile(name: &str, speed: &SpeedProfile) -> Result<(), SpecError> {
    let finite_nonneg = |field: &str, v: f64| -> Result<(), SpecError> {
        if v.is_finite() && v >= 0.0 {
            Ok(())
        } else {
            Err(err(format!(
                "{name}: speed profile field \"{field}\" must be finite and non-negative, got {v}"
            )))
        }
    };
    match *speed {
        SpeedProfile::Fixed(kmh) => finite_nonneg("kmh", kmh),
        SpeedProfile::Uniform { min_kmh, max_kmh } => {
            finite_nonneg("min_kmh", min_kmh)?;
            finite_nonneg("max_kmh", max_kmh)?;
            if min_kmh > max_kmh {
                return Err(err(format!(
                    "{name}: speed range [{min_kmh}, {max_kmh}] is reversed"
                )));
            }
            Ok(())
        }
        SpeedProfile::Bimodal {
            slow_kmh,
            fast_kmh,
            fraction_fast,
        } => {
            finite_nonneg("slow_kmh", slow_kmh)?;
            finite_nonneg("fast_kmh", fast_kmh)?;
            if !(0.0..=1.0).contains(&fraction_fast) {
                return Err(err(format!(
                    "{name}: fraction_fast must be a probability, got {fraction_fast}"
                )));
            }
            Ok(())
        }
    }
}

fn check_grid_u32(name: &str, field: &str, grid: &[u32]) -> Result<(), SpecError> {
    if grid.is_empty() {
        return Err(err(format!("{name}: grid \"{field}\" must not be empty")));
    }
    if !grid.windows(2).all(|w| w[0] < w[1]) {
        return Err(err(format!(
            "{name}: grid \"{field}\" must be strictly increasing, got {grid:?}"
        )));
    }
    Ok(())
}

fn check_grid_f64(name: &str, field: &str, grid: &[f64]) -> Result<(), SpecError> {
    if grid.is_empty() {
        return Err(err(format!("{name}: grid \"{field}\" must not be empty")));
    }
    if grid.iter().any(|v| !v.is_finite() || *v < 0.0) {
        return Err(err(format!(
            "{name}: grid \"{field}\" must hold finite non-negative values, got {grid:?}"
        )));
    }
    if !grid.windows(2).all(|w| w[0] < w[1]) {
        return Err(err(format!(
            "{name}: grid \"{field}\" must be strictly increasing, got {grid:?}"
        )));
    }
    Ok(())
}

fn u32_grid_to_json(grid: &[u32]) -> Json {
    Json::Array(grid.iter().map(|&v| Json::Int(v as u64)).collect())
}

fn json_to_u32_grid(v: &Json, field: &str) -> Result<Vec<u32>, SpecError> {
    let items = v
        .as_array()
        .ok_or_else(|| err(format!("\"{field}\" must be an array of integers")))?;
    items
        .iter()
        .map(|item| {
            item.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| {
                    err(format!(
                        "\"{field}\" entries must be unsigned 32-bit integers"
                    ))
                })
        })
        .collect()
}

fn json_to_f64_grid(v: &Json, field: &str) -> Result<Vec<f64>, SpecError> {
    let items = v
        .as_array()
        .ok_or_else(|| err(format!("\"{field}\" must be an array of numbers")))?;
    items
        .iter()
        .map(|item| {
            item.as_f64()
                .ok_or_else(|| err(format!("\"{field}\" entries must be numbers")))
        })
        .collect()
}

/// The JSON encoding of a [`ChannelMode`].
fn channel_mode_str(mode: ChannelMode) -> &'static str {
    match mode {
        ChannelMode::Lazy => "lazy",
        ChannelMode::Eager => "eager",
    }
}

fn channel_mode_from_str(s: &str) -> Result<ChannelMode, SpecError> {
    match s {
        "lazy" => Ok(ChannelMode::Lazy),
        "eager" => Ok(ChannelMode::Eager),
        other => Err(err(format!(
            "unknown channel_mode \"{other}\" (valid: lazy, eager)"
        ))),
    }
}

fn speed_to_json(speed: &SpeedProfile) -> Json {
    match *speed {
        SpeedProfile::Fixed(kmh) => Json::Object(vec![
            ("kind".into(), Json::Str("fixed".into())),
            ("kmh".into(), Json::Num(kmh)),
        ]),
        SpeedProfile::Uniform { min_kmh, max_kmh } => Json::Object(vec![
            ("kind".into(), Json::Str("uniform".into())),
            ("min_kmh".into(), Json::Num(min_kmh)),
            ("max_kmh".into(), Json::Num(max_kmh)),
        ]),
        SpeedProfile::Bimodal {
            slow_kmh,
            fast_kmh,
            fraction_fast,
        } => Json::Object(vec![
            ("kind".into(), Json::Str("bimodal".into())),
            ("slow_kmh".into(), Json::Num(slow_kmh)),
            ("fast_kmh".into(), Json::Num(fast_kmh)),
            ("fraction_fast".into(), Json::Num(fraction_fast)),
        ]),
    }
}

fn speed_from_json(v: &Json) -> Result<SpeedProfile, SpecError> {
    let pairs = v
        .as_object()
        .ok_or_else(|| err("\"speed\" must be an object with a \"kind\" field"))?;
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| err("\"speed\" is missing the string field \"kind\""))?;
    let allowed: &[&str] = match kind {
        "fixed" => &["kind", "kmh"],
        "uniform" => &["kind", "min_kmh", "max_kmh"],
        "bimodal" => &["kind", "slow_kmh", "fast_kmh", "fraction_fast"],
        other => {
            return Err(err(format!(
                "unknown speed kind \"{other}\" (valid: fixed, uniform, bimodal)"
            )));
        }
    };
    for (key, _) in pairs {
        if !allowed.contains(&key.as_str()) {
            return Err(err(format!(
                "unknown key \"{key}\" in \"{kind}\" speed profile"
            )));
        }
    }
    let num = |field: &str| -> Result<f64, SpecError> {
        v.get(field).and_then(Json::as_f64).ok_or_else(|| {
            err(format!(
                "\"{kind}\" speed profile needs the number \"{field}\""
            ))
        })
    };
    match kind {
        "fixed" => Ok(SpeedProfile::Fixed(num("kmh")?)),
        "uniform" => Ok(SpeedProfile::Uniform {
            min_kmh: num("min_kmh")?,
            max_kmh: num("max_kmh")?,
        }),
        _ => Ok(SpeedProfile::Bimodal {
            slow_kmh: num("slow_kmh")?,
            fast_kmh: num("fast_kmh")?,
            fraction_fast: num("fraction_fast")?,
        }),
    }
}

fn duration_to_json(duration: &DurationSpec) -> Json {
    match *duration {
        DurationSpec::Profile => Json::Str("profile".into()),
        DurationSpec::Frames { warmup, measured } => Json::Object(vec![
            ("warmup_frames".into(), Json::Int(warmup)),
            ("measured_frames".into(), Json::Int(measured)),
        ]),
    }
}

fn duration_from_json(v: &Json) -> Result<DurationSpec, SpecError> {
    match v {
        Json::Str(s) if s == "profile" => Ok(DurationSpec::Profile),
        Json::Str(s) => Err(err(format!(
            "unknown duration \"{s}\" (valid: \"profile\" or {{warmup_frames, measured_frames}})"
        ))),
        Json::Object(pairs) => {
            for (key, _) in pairs {
                if key != "warmup_frames" && key != "measured_frames" {
                    return Err(err(format!("unknown key \"{key}\" in \"duration\"")));
                }
            }
            let field = |name: &str| {
                v.get(name).and_then(Json::as_u64).ok_or_else(|| {
                    err(format!(
                        "\"duration\" needs the unsigned integer \"{name}\""
                    ))
                })
            };
            Ok(DurationSpec::Frames {
                warmup: field("warmup_frames")?,
                measured: field("measured_frames")?,
            })
        }
        other => Err(err(format!(
            "\"duration\" must be \"profile\" or an object, got {}",
            other.type_name()
        ))),
    }
}

fn replications_to_json(reps: &RepsSpec) -> Json {
    match reps {
        RepsSpec::Profile => Json::Str("profile".into()),
        RepsSpec::Policy(policy) => {
            let mut pairs = vec![
                ("min".into(), Json::Int(policy.min_reps as u64)),
                ("max".into(), Json::Int(policy.max_reps as u64)),
            ];
            if let Some(target) = policy.target_rel_ci95 {
                pairs.push(("target_rel_ci95".into(), Json::Num(target)));
            }
            Json::Object(pairs)
        }
    }
}

fn replications_from_json(v: &Json) -> Result<RepsSpec, SpecError> {
    match v {
        Json::Str(s) if s == "profile" => Ok(RepsSpec::Profile),
        Json::Str(s) => Err(err(format!(
            "unknown replications \"{s}\" (valid: \"profile\" or {{min, max, target_rel_ci95?}})"
        ))),
        Json::Object(pairs) => {
            for (key, _) in pairs {
                if key != "min" && key != "max" && key != "target_rel_ci95" {
                    return Err(err(format!("unknown key \"{key}\" in \"replications\"")));
                }
            }
            let int_field = |name: &str| {
                v.get(name)
                    .and_then(Json::as_u64)
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| {
                        err(format!(
                            "\"replications\" needs the unsigned integer \"{name}\""
                        ))
                    })
            };
            let target_rel_ci95 = match v.get("target_rel_ci95") {
                None => None,
                Some(t) => Some(t.as_f64().ok_or_else(|| {
                    err("\"replications\" field \"target_rel_ci95\" must be a number")
                })?),
            };
            Ok(RepsSpec::Policy(ReplicationPolicy {
                min_reps: int_field("min")?,
                max_reps: int_field("max")?,
                target_rel_ci95,
            }))
        }
        other => Err(err(format!(
            "\"replications\" must be \"profile\" or an object, got {}",
            other.type_name()
        ))),
    }
}

fn layout_to_json(layout: &Layout) -> Json {
    let (kind, radius) = match *layout {
        Layout::Hex { cell_radius_m } => ("hex", cell_radius_m),
        Layout::Line { cell_radius_m } => ("line", cell_radius_m),
    };
    Json::Object(vec![
        ("kind".into(), Json::Str(kind.into())),
        ("cell_radius_m".into(), Json::Num(radius)),
    ])
}

fn layout_from_json(v: &Json) -> Result<Layout, SpecError> {
    let pairs = v
        .as_object()
        .ok_or_else(|| err("\"layout\" must be an object with a \"kind\" field"))?;
    for (key, _) in pairs {
        if key != "kind" && key != "cell_radius_m" {
            return Err(err(format!("unknown key \"{key}\" in \"layout\"")));
        }
    }
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| err("\"layout\" is missing the string field \"kind\""))?;
    let cell_radius_m = v
        .get("cell_radius_m")
        .and_then(Json::as_f64)
        .ok_or_else(|| err("\"layout\" needs the number \"cell_radius_m\""))?;
    match kind {
        "hex" => Ok(Layout::Hex { cell_radius_m }),
        "line" => Ok(Layout::Line { cell_radius_m }),
        other => Err(err(format!(
            "unknown layout kind \"{other}\" (valid: hex, line)"
        ))),
    }
}

fn admission_str(admission: HandoffAdmission) -> &'static str {
    match admission {
        HandoffAdmission::DropOnFull => "drop_on_full",
        HandoffAdmission::Queue => "queue",
    }
}

fn handoff_to_json(handoff: &HandoffConfig) -> Json {
    Json::Object(vec![
        (
            "admission".into(),
            Json::Str(admission_str(handoff.admission).into()),
        ),
        (
            "cell_capacity".into(),
            Json::Int(handoff.cell_capacity as u64),
        ),
        ("retry_frames".into(), Json::Int(handoff.retry_frames)),
        ("hysteresis_m".into(), Json::Num(handoff.hysteresis_m)),
    ])
}

fn handoff_from_json(v: &Json) -> Result<HandoffConfig, SpecError> {
    let pairs = v
        .as_object()
        .ok_or_else(|| err("\"handoff\" must be an object"))?;
    let mut handoff = HandoffConfig::default();
    for (key, value) in pairs {
        match key.as_str() {
            "admission" => {
                let s = value
                    .as_str()
                    .ok_or_else(|| err("\"handoff\" field \"admission\" must be a string"))?;
                handoff.admission = match s {
                    "drop_on_full" => HandoffAdmission::DropOnFull,
                    "queue" => HandoffAdmission::Queue,
                    other => {
                        return Err(err(format!(
                            "unknown handoff admission \"{other}\" (valid: drop_on_full, queue)"
                        )));
                    }
                };
            }
            "cell_capacity" => {
                handoff.cell_capacity = value
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| {
                        err("\"handoff\" field \"cell_capacity\" must be an unsigned integer")
                    })?;
            }
            "retry_frames" => {
                handoff.retry_frames = value.as_u64().ok_or_else(|| {
                    err("\"handoff\" field \"retry_frames\" must be an unsigned integer")
                })?;
            }
            "hysteresis_m" => {
                handoff.hysteresis_m = value
                    .as_f64()
                    .ok_or_else(|| err("\"handoff\" field \"hysteresis_m\" must be a number"))?;
            }
            unknown => return Err(err(format!("unknown key \"{unknown}\" in \"handoff\""))),
        }
    }
    Ok(handoff)
}

fn ramp_from_json(v: &Json) -> Result<RampSpec, SpecError> {
    let pairs = v
        .as_object()
        .ok_or_else(|| err("\"ramp\" must be an object"))?;
    for (key, _) in pairs {
        if key != "initial_voice" && key != "at_measured_fraction" {
            return Err(err(format!("unknown key \"{key}\" in \"ramp\"")));
        }
    }
    let initial_voice = v
        .get("initial_voice")
        .and_then(Json::as_u64)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| err("\"ramp\" needs the unsigned integer \"initial_voice\""))?;
    let at_measured_fraction = v
        .get("at_measured_fraction")
        .and_then(Json::as_f64)
        .ok_or_else(|| err("\"ramp\" needs the number \"at_measured_fraction\""))?;
    Ok(RampSpec {
        initial_voice,
        at_measured_fraction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::new("round-trip");
        spec.protocols = vec![ProtocolKind::Charisma, ProtocolKind::DTdmaVr];
        spec.axis = Axis::VoiceUsers;
        spec.voice_users = vec![20, 60, 100];
        spec.data_users = vec![0, 10];
        spec.speed = SpeedProfile::Bimodal {
            slow_kmh: 3.0,
            fast_kmh: 80.0,
            fraction_fast: 0.5,
        };
        spec.channel_mode = ChannelMode::Eager;
        spec.duration = DurationSpec::Frames {
            warmup: 500,
            measured: 5_000,
        };
        spec.request_queue = QueueToggle::Both;
        spec.seed = Some(0xDEAD_BEEF_5EED_CAFE);
        spec.csi_aware = false;
        spec.ramp = Some(RampSpec {
            initial_voice: 10,
            at_measured_fraction: 0.5,
        });
        spec.replications = RepsSpec::Policy(ReplicationPolicy::adaptive(3, 8, 0.05));
        spec
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let spec = full_spec();
        let text = spec.to_json_string();
        let back = ScenarioSpec::from_json_str(&text).unwrap();
        assert_eq!(back, spec);
        // Deterministic serialisation: encoding again yields identical bytes.
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn json_round_trip_preserves_defaults() {
        let spec = ScenarioSpec::new("defaults");
        let back = ScenarioSpec::from_json_str(&spec.to_json_string()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.seed, None);
        assert_eq!(back.effective_seed(), SimConfig::default_paper().seed);
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let text = r#"{"name": "x", "voice_userz": [10]}"#;
        let e = ScenarioSpec::from_json_str(text).unwrap_err();
        assert!(e.to_string().contains("voice_userz"), "{e}");

        let nested = r#"{"name": "x", "speed": {"kind": "fixed", "kmh": 50, "mph": 30}}"#;
        let e = ScenarioSpec::from_json_str(nested).unwrap_err();
        assert!(e.to_string().contains("mph"), "{e}");

        let ramp = r#"{"name": "x", "ramp": {"initial_voice": 5, "at": 0.5}}"#;
        assert!(ScenarioSpec::from_json_str(ramp).is_err());
    }

    #[test]
    fn invalid_grids_are_rejected() {
        // Empty grid.
        let e = ScenarioSpec::from_json_str(r#"{"name": "x", "voice_users": []}"#).unwrap_err();
        assert!(e.to_string().contains("must not be empty"), "{e}");
        // Not strictly increasing.
        let e = ScenarioSpec::from_json_str(r#"{"name": "x", "voice_users": [10, 10, 20]}"#)
            .unwrap_err();
        assert!(e.to_string().contains("strictly increasing"), "{e}");
        // The empty (0, 0) cell.
        let e = ScenarioSpec::from_json_str(
            r#"{"name": "x", "voice_users": [0, 10], "data_users": [0, 5]}"#,
        )
        .unwrap_err();
        assert!(e.to_string().contains("(0, 0)"), "{e}");
        // A speed grid without a speed axis.
        let e = ScenarioSpec::from_json_str(r#"{"name": "x", "speed_grid_kmh": [10, 50]}"#)
            .unwrap_err();
        assert!(e.to_string().contains("speed_kmh"), "{e}");
        // Negative / non-finite axis speeds.
        let mut spec = ScenarioSpec::new("x");
        spec.axis = Axis::SpeedKmh;
        spec.speed_grid_kmh = vec![-5.0, 10.0];
        assert!(spec.validate().is_err());
    }

    #[test]
    fn invalid_speed_profiles_are_rejected() {
        let fixed = r#"{"name": "x", "speed": {"kind": "fixed", "kmh": -5}}"#;
        let e = ScenarioSpec::from_json_str(fixed).unwrap_err();
        assert!(e.to_string().contains("kmh"), "{e}");
        let reversed =
            r#"{"name": "x", "speed": {"kind": "uniform", "min_kmh": 80, "max_kmh": 20}}"#;
        assert!(ScenarioSpec::from_json_str(reversed).is_err());
        let bad_fraction = r#"{"name": "x", "speed":
            {"kind": "bimodal", "slow_kmh": 3, "fast_kmh": 80, "fraction_fast": 1.5}}"#;
        assert!(ScenarioSpec::from_json_str(bad_fraction).is_err());
        let mut spec = ScenarioSpec::new("x");
        spec.speed = SpeedProfile::Fixed(f64::NAN);
        assert!(spec.validate().is_err());
    }

    #[test]
    fn unknown_protocols_and_enums_are_rejected() {
        assert!(ScenarioSpec::from_json_str(r#"{"name": "x", "protocols": ["FOO"]}"#).is_err());
        assert!(ScenarioSpec::from_json_str(r#"{"name": "x", "axis": "users"}"#).is_err());
        assert!(ScenarioSpec::from_json_str(r#"{"name": "x", "channel_mode": "warm"}"#).is_err());
        assert!(ScenarioSpec::from_json_str(r#"{"name": "x", "request_queue": "maybe"}"#).is_err());
        assert!(ScenarioSpec::from_json_str(r#"{"name": "x", "duration": "short"}"#).is_err());
    }

    #[test]
    fn expansion_covers_the_grid_and_skips_rmav_queue_points() {
        let mut spec = ScenarioSpec::new("grid");
        spec.axis = Axis::VoiceUsers;
        spec.voice_users = vec![10, 20];
        spec.data_users = vec![0, 10];
        spec.request_queue = QueueToggle::Both;
        let budget = FrameBudget {
            warmup: 100,
            measured: 1_000,
        };
        let points = spec.expand(budget).unwrap();
        // 6 protocols off-queue + 5 on-queue (RMAV skipped), x 2 Nd x 2 Nv.
        assert_eq!(points.len(), (6 + 5) * 2 * 2);
        assert!(points
            .iter()
            .all(|p| !(p.point.protocol == ProtocolKind::Rmav && p.point.config.request_queue)));
        assert!(points.iter().all(|p| p.scenario == "grid"));
        assert!(points
            .iter()
            .all(|p| p.point.config.measured_frames == 1_000));
        // Loads follow the voice axis.
        assert!(points
            .iter()
            .all(|p| p.point.load == p.point.config.num_voice as f64));
    }

    #[test]
    fn speed_axis_overrides_the_profile() {
        let mut spec = ScenarioSpec::new("speeds");
        spec.protocols = vec![ProtocolKind::Charisma];
        spec.axis = Axis::SpeedKmh;
        spec.voice_users = vec![50];
        spec.speed_grid_kmh = vec![10.0, 50.0, 80.0];
        let points = spec
            .expand(FrameBudget {
                warmup: 10,
                measured: 100,
            })
            .unwrap();
        assert_eq!(points.len(), 3);
        for (p, v) in points.iter().zip([10.0, 50.0, 80.0]) {
            assert_eq!(p.point.config.speed, SpeedProfile::Fixed(v));
            assert_eq!(p.point.load, v);
            assert_eq!(p.speed_kmh, v);
        }
    }

    #[test]
    fn ramp_resolves_relative_to_the_measured_window() {
        let mut spec = ScenarioSpec::new("ramp");
        spec.protocols = vec![ProtocolKind::Charisma];
        spec.voice_users = vec![120];
        spec.ramp = Some(RampSpec {
            initial_voice: 40,
            at_measured_fraction: 0.5,
        });
        let points = spec
            .expand(FrameBudget {
                warmup: 1_000,
                measured: 10_000,
            })
            .unwrap();
        assert_eq!(points.len(), 1);
        let ramp = points[0].point.config.ramp.expect("ramp configured");
        assert_eq!(ramp.initial_voice, 40);
        assert_eq!(ramp.activation_frame, 1_000 + 5_000);
    }

    #[test]
    fn expanded_configs_pass_sim_config_validation() {
        let spec = full_spec();
        for p in spec
            .expand(FrameBudget {
                warmup: 100,
                measured: 1_000,
            })
            .unwrap()
        {
            p.point.config.validate();
        }
    }

    #[test]
    fn replications_json_round_trips_and_rejects_bad_policies() {
        // Default: the profile policy, encoded as the string "profile".
        let spec = ScenarioSpec::new("defaults");
        assert!(spec
            .to_json_string()
            .contains("\"replications\": \"profile\""));

        // Fixed policy without a stopping rule.
        let mut fixed = ScenarioSpec::new("fixed");
        fixed.replications = RepsSpec::Policy(ReplicationPolicy::fixed(5));
        let back = ScenarioSpec::from_json_str(&fixed.to_json_string()).unwrap();
        assert_eq!(back, fixed);

        // Adaptive policy round-trips through the full_spec fixture too
        // (json_round_trip_preserves_every_field), so only spot-check here.
        let adaptive = r#"{"name": "x", "replications": {"min": 3, "max": 10,
                           "target_rel_ci95": 0.1}}"#;
        let spec = ScenarioSpec::from_json_str(adaptive).unwrap();
        assert_eq!(
            spec.replications,
            RepsSpec::Policy(ReplicationPolicy::adaptive(3, 10, 0.1))
        );
        // Expanded points carry the override; profile specs carry None.
        let budget = FrameBudget {
            warmup: 10,
            measured: 100,
        };
        assert!(spec
            .expand(budget)
            .unwrap()
            .iter()
            .all(|p| p.reps == Some(ReplicationPolicy::adaptive(3, 10, 0.1))));
        assert!(ScenarioSpec::new("d")
            .expand(budget)
            .unwrap()
            .iter()
            .all(|p| p.reps.is_none()));

        // Rejections: unknown key, zero reps, max < min, bad target, bad kind.
        for bad in [
            r#"{"name": "x", "replications": {"min": 1, "max": 2, "reps": 3}}"#,
            r#"{"name": "x", "replications": {"min": 0, "max": 2}}"#,
            r#"{"name": "x", "replications": {"min": 5, "max": 2}}"#,
            r#"{"name": "x", "replications": {"min": 2, "max": 4, "target_rel_ci95": -1}}"#,
            r#"{"name": "x", "replications": "thrice"}"#,
            r#"{"name": "x", "replications": 3}"#,
        ] {
            assert!(ScenarioSpec::from_json_str(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn multicell_fields_round_trip_and_expand_into_a_system_config() {
        let mut spec = ScenarioSpec::new("multicell");
        spec.protocols = vec![ProtocolKind::Charisma];
        spec.voice_users = vec![10, 20];
        spec.data_users = vec![5];
        spec.cells = 7;
        spec.layout = Layout::Hex {
            cell_radius_m: 250.0,
        };
        spec.handoff = HandoffConfig {
            admission: HandoffAdmission::DropOnFull,
            cell_capacity: 30,
            retry_frames: 20,
            hysteresis_m: 10.0,
        };
        let text = spec.to_json_string();
        assert!(text.contains("\"cells\": 7"), "{text}");
        assert!(text.contains("drop_on_full"), "{text}");
        let back = ScenarioSpec::from_json_str(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json_string(), text);

        let points = spec
            .expand(FrameBudget {
                warmup: 10,
                measured: 100,
            })
            .unwrap();
        for p in &points {
            let system = p
                .point
                .config
                .system
                .expect("multi-cell points carry a system");
            assert_eq!(system.cells, 7);
            assert_eq!(system.layout.cell_radius_m(), 250.0);
            assert_eq!(system.handoff.admission, HandoffAdmission::DropOnFull);
            p.point.config.validate();
        }
    }

    #[test]
    fn single_cell_specs_serialise_without_the_multicell_keys() {
        let spec = ScenarioSpec::new("single");
        let text = spec.to_json_string();
        assert!(!text.contains("\"cells\""), "{text}");
        assert!(!text.contains("\"layout\""), "{text}");
        assert!(!text.contains("\"handoff\""), "{text}");
        // Expanded points stay on the historical single-cell path.
        let points = spec
            .expand(FrameBudget {
                warmup: 10,
                measured: 100,
            })
            .unwrap();
        assert!(points.iter().all(|p| p.point.config.system.is_none()));
    }

    #[test]
    fn multicell_spec_rejections() {
        // layout/handoff without cells > 1.
        for bad in [
            r#"{"name": "x", "layout": {"kind": "hex", "cell_radius_m": 100}}"#,
            r#"{"name": "x", "handoff": {"admission": "queue"}}"#,
            r#"{"name": "x", "cells": 1, "layout": {"kind": "hex", "cell_radius_m": 100}}"#,
        ] {
            let e = ScenarioSpec::from_json_str(bad).unwrap_err();
            assert!(e.to_string().contains("cells"), "{bad}: {e}");
        }
        // Zero cells, unknown layout kind / admission, unknown keys.
        assert!(ScenarioSpec::from_json_str(r#"{"name": "x", "cells": 0}"#).is_err());
        assert!(ScenarioSpec::from_json_str(
            r#"{"name": "x", "cells": 3, "layout": {"kind": "ring", "cell_radius_m": 100}}"#
        )
        .is_err());
        assert!(ScenarioSpec::from_json_str(
            r#"{"name": "x", "cells": 3, "handoff": {"admission": "refuse"}}"#
        )
        .is_err());
        assert!(ScenarioSpec::from_json_str(
            r#"{"name": "x", "cells": 3, "handoff": {"admision": "queue"}}"#
        )
        .is_err());
        assert!(ScenarioSpec::from_json_str(
            r#"{"name": "x", "cells": 3, "layout": {"kind": "hex", "radius": 100}}"#
        )
        .is_err());
        // Capacity below the largest grid population.
        let mut spec = ScenarioSpec::new("cap");
        spec.voice_users = vec![10, 40];
        spec.cells = 3;
        spec.handoff.cell_capacity = 20;
        let e = spec.validate().unwrap_err();
        assert!(e.to_string().contains("cell_capacity"), "{e}");
        // A programmatically built single-cell spec with non-default
        // layout/handoff must fail validation rather than silently dropping
        // the settings on serialisation.
        let mut single = ScenarioSpec::new("single-custom");
        single.handoff.cell_capacity = 60;
        let e = single.validate().unwrap_err();
        assert!(e.to_string().contains("cells > 1"), "{e}");
    }

    #[test]
    fn queue_on_with_only_rmav_is_rejected() {
        let mut spec = ScenarioSpec::new("rmav-queue");
        spec.protocols = vec![ProtocolKind::Rmav];
        spec.request_queue = QueueToggle::On;
        assert!(spec.validate().is_err());
    }
}
