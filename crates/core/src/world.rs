//! The per-frame execution environment shared by all protocols.
//!
//! [`FrameWorld`] bundles everything a MAC protocol may touch during one
//! frame — the terminal population, the physical layers, the CSI estimator,
//! the metrics accumulators — and provides the two pieces of machinery every
//! protocol needs so they are implemented exactly once:
//!
//! * **request contention** ([`FrameWorld::contend`]): the slotted request
//!   phase with per-class permission probabilities, collision destruction
//!   (no capture) and per-slot acknowledgement, and
//! * **the transmission engine** ([`FrameWorld::transmit_voice`],
//!   [`FrameWorld::transmit_data`]): moving packets out of terminal buffers
//!   through the configured physical layer, drawing channel errors from the
//!   *true* instantaneous SNR and updating the QoS counters.
//!
//! Protocols differ only in *which* terminals they admit to contention, *how*
//! they order the successful requests and *how many* slots they hand to each
//! — which is exactly the design space the paper describes.
//!
//! # The index-slice MAC API
//!
//! Terminal state lives in the structure-of-arrays store
//! ([`crate::columns::TerminalColumns`]); a protocol addresses it through the
//! world's *index accessors* — [`FrameWorld::members`] hands out the member
//! id slice, and per-terminal reads go through [`FrameWorld::class`],
//! [`FrameWorld::voice_backlog`], [`FrameWorld::has_backlog`] and friends.
//! The previous object getters ([`FrameWorld::terminal`],
//! [`FrameWorld::terminal_mut`]) survive one release as thin `#[deprecated]`
//! shims returning proxy handles.

use crate::columns::{ColumnsView, TerminalColumns};
use crate::config::SimConfig;
use crate::terminal::FrameTraffic;
use charisma_des::{FrameClock, Sampler, SimTime, Xoshiro256StarStar};
use charisma_metrics::RunMetrics;
use charisma_phy::{AdaptivePhy, FixedPhy, Phy};
use charisma_radio::{CsiEstimate, CsiEstimator};
use charisma_traffic::{DataBuffer, TerminalClass, TerminalId, VoiceBuffer};
use std::marker::PhantomData;

/// A borrow-like handle over the global terminal column store.
///
/// In a single-cell run this is just a reborrow of the scenario's
/// [`TerminalColumns`].  In a sharded multi-cell run every cell's
/// [`FrameWorld`] gets a table over the *same* columns from a different
/// worker thread; the table therefore carries the crate-internal
/// `ColumnsView` (per-column base pointers) instead of a `&mut`, and
/// soundness rests on the system layer's membership partition: each terminal
/// is attached to exactly one cell, and a cell's MAC only ever touches its
/// own members, so concurrent tables access disjoint column elements.  Every
/// element access is bounds-checked (release builds included), so the unsafe
/// surface is confined to the aliasing argument above.
pub struct TerminalTable<'a> {
    view: ColumnsView,
    _marker: PhantomData<&'a mut TerminalColumns>,
}

impl<'a> From<&'a mut TerminalColumns> for TerminalTable<'a> {
    fn from(columns: &'a mut TerminalColumns) -> Self {
        TerminalTable {
            view: columns.view(),
            _marker: PhantomData,
        }
    }
}

impl<'a> TerminalTable<'a> {
    /// Builds a table directly from a column view (the sharded system
    /// layer's entry point).
    ///
    /// The caller asserts the partitioned-exclusivity contract documented on
    /// [`ColumnsView`]: for the table's lifetime, no element it accesses may
    /// be accessed through any other path.  Kept crate-private so the whole
    /// aliasing argument stays inside the crate.
    pub(crate) fn from_view(view: ColumnsView) -> Self {
        TerminalTable {
            view,
            _marker: PhantomData,
        }
    }

    /// Number of terminals in the table (the whole scenario population).
    pub fn len(&self) -> usize {
        self.view.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.view.len() == 0
    }

    /// Re-borrows the table at a shorter lifetime, exactly like re-borrowing
    /// a `&mut`.  [`crate::cell::Cell::step`] uses this so the
    /// [`FrameWorld`] it assembles borrows for the duration of the frame
    /// only, not for the caller's full table lifetime.
    pub fn reborrow(&mut self) -> TerminalTable<'_> {
        TerminalTable {
            view: self.view,
            _marker: PhantomData,
        }
    }

    // Element accessors.  SAFETY (applies to each): the table's construction
    // contract licenses access to the element — either the table was built
    // from `&mut TerminalColumns` (full exclusivity) or via `from_view`
    // under the membership partition; `&mut self` on the mutating accessors
    // prevents a second live reference through *this* table.

    pub(crate) fn class(&self, i: usize) -> TerminalClass {
        unsafe { self.view.class(i) }
    }

    pub(crate) fn in_talkspurt(&self, i: usize) -> bool {
        unsafe { self.view.in_talkspurt(i) }
    }

    pub(crate) fn voice_backlog(&self, i: usize) -> usize {
        unsafe { self.view.voice_backlog(i) }
    }

    pub(crate) fn data_backlog(&self, i: usize) -> u64 {
        unsafe { self.view.data_backlog(i) }
    }

    pub(crate) fn has_backlog(&self, i: usize) -> bool {
        unsafe { self.view.has_backlog(i) }
    }

    pub(crate) fn earliest_voice_deadline(&self, i: usize) -> Option<SimTime> {
        unsafe { self.view.earliest_voice_deadline(i) }
    }

    pub(crate) fn oldest_data_arrival(&self, i: usize) -> Option<SimTime> {
        unsafe { self.view.oldest_data_arrival(i) }
    }

    pub(crate) fn true_snr_db(&mut self, i: usize, t: SimTime) -> f64 {
        unsafe { self.view.true_snr_db(i, t) }
    }

    pub(crate) fn voice_buffer_mut(&mut self, i: usize) -> &mut VoiceBuffer {
        unsafe { self.view.voice_buffer_mut(i) }
    }

    pub(crate) fn data_buffer_mut(&mut self, i: usize) -> &mut DataBuffer {
        unsafe { self.view.data_buffer_mut(i) }
    }

    pub(crate) fn contention_rng(&mut self, i: usize) -> &mut Xoshiro256StarStar {
        unsafe { self.view.contention_rng(i) }
    }

    pub(crate) fn phy_rng(&mut self, i: usize) -> &mut Xoshiro256StarStar {
        unsafe { self.view.phy_rng(i) }
    }
}

/// Reusable scratch buffers for the per-frame hot paths.
///
/// The scenario runner owns one instance for the whole run and threads it
/// into each frame's [`FrameWorld`], so the request-contention loop and the
/// transmission engine recycle the same heap blocks frame after frame instead
/// of allocating fresh ones.  The buffers carry no semantic state across
/// frames — every user clears them before use.
#[derive(Debug, Default)]
pub struct FrameScratch {
    /// Still-unacknowledged contenders during [`FrameWorld::contend`].
    contend_remaining: Vec<TerminalId>,
    /// Positions (into `contend_remaining`) transmitting in one minislot.
    contend_transmitters: Vec<usize>,
    /// Runs popped from a data buffer in [`FrameWorld::transmit_data`].
    data_runs: Vec<charisma_traffic::buffer::ServedRun>,
    /// Errored packets awaiting re-insertion in [`FrameWorld::transmit_data`].
    data_requeue: Vec<(SimTime, u32)>,
}

/// How the physical layer picks its transmission mode for a grant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkAdaptation {
    /// Fixed-rate PHY: one packet per slot, fixed coding (D-TDMA/FR, RAMA,
    /// RMAV, DRMA).
    Fixed,
    /// Adaptive PHY that tracks the instantaneous channel at transmission
    /// time, with no MAC interaction (D-TDMA/VR).
    Tracking,
    /// Adaptive PHY whose mode was announced by the base station from an
    /// earlier CSI estimate (CHARISMA); a stale estimate can over- or
    /// under-shoot the true channel.
    Announced {
        /// The CSI estimate (SNR in dB) the announcement was based on.
        snr_db: f64,
    },
}

/// Result of a voice-packet transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VoiceTx {
    /// The packet was delivered without error.
    Delivered,
    /// The packet was transmitted but corrupted by the channel.
    Errored,
    /// The allocated capacity could not fit one packet (e.g. half-rate mode
    /// with a single slot); nothing was transmitted and the packet stays
    /// queued.
    InsufficientCapacity,
    /// The terminal had no voice packet to send (the slot is wasted).
    NoPacket,
}

/// Result of a data transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DataTx {
    /// Packets delivered without error.
    pub delivered: u32,
    /// Packets corrupted by the channel (they remain queued for
    /// retransmission).
    pub errored: u32,
}

/// Read-only proxy for one terminal, returned by the deprecated
/// [`FrameWorld::terminal`] shim.  New code should use the index accessors
/// ([`FrameWorld::class`], [`FrameWorld::voice_backlog`], …) directly.
pub struct TerminalRef<'w> {
    view: ColumnsView,
    i: usize,
    _marker: PhantomData<&'w ()>,
}

impl TerminalRef<'_> {
    /// The terminal's service class.
    pub fn class(&self) -> TerminalClass {
        unsafe { self.view.class(self.i) }
    }

    /// Whether the terminal is currently in a talkspurt.
    pub fn in_talkspurt(&self) -> bool {
        unsafe { self.view.in_talkspurt(self.i) }
    }

    /// Number of voice packets waiting in the transmit buffer.
    pub fn voice_backlog(&self) -> usize {
        unsafe { self.view.voice_backlog(self.i) }
    }

    /// Number of data packets waiting in the transmit buffer.
    pub fn data_backlog(&self) -> u64 {
        unsafe { self.view.data_backlog(self.i) }
    }

    /// Whether the terminal has anything to send.
    pub fn has_backlog(&self) -> bool {
        unsafe { self.view.has_backlog(self.i) }
    }

    /// Earliest deadline among buffered voice packets.
    pub fn earliest_voice_deadline(&self) -> Option<SimTime> {
        unsafe { self.view.earliest_voice_deadline(self.i) }
    }

    /// Arrival time of the oldest buffered data packet.
    pub fn oldest_data_arrival(&self) -> Option<SimTime> {
        unsafe { self.view.oldest_data_arrival(self.i) }
    }
}

/// Mutable proxy for one terminal, returned by the deprecated
/// [`FrameWorld::terminal_mut`] shim.  New code should use the index
/// accessors ([`FrameWorld::voice_buffer_mut`], [`FrameWorld::true_snr_db`],
/// …) directly.
pub struct TerminalMut<'w> {
    view: ColumnsView,
    i: usize,
    _marker: PhantomData<&'w mut ()>,
}

impl TerminalMut<'_> {
    /// The terminal's service class.
    pub fn class(&self) -> TerminalClass {
        unsafe { self.view.class(self.i) }
    }

    /// Whether the terminal is currently in a talkspurt.
    pub fn in_talkspurt(&self) -> bool {
        unsafe { self.view.in_talkspurt(self.i) }
    }

    /// Number of voice packets waiting in the transmit buffer.
    pub fn voice_backlog(&self) -> usize {
        unsafe { self.view.voice_backlog(self.i) }
    }

    /// Number of data packets waiting in the transmit buffer.
    pub fn data_backlog(&self) -> u64 {
        unsafe { self.view.data_backlog(self.i) }
    }

    /// Whether the terminal has anything to send.
    pub fn has_backlog(&self) -> bool {
        unsafe { self.view.has_backlog(self.i) }
    }

    /// Earliest deadline among buffered voice packets.
    pub fn earliest_voice_deadline(&self) -> Option<SimTime> {
        unsafe { self.view.earliest_voice_deadline(self.i) }
    }

    /// Arrival time of the oldest buffered data packet.
    pub fn oldest_data_arrival(&self) -> Option<SimTime> {
        unsafe { self.view.oldest_data_arrival(self.i) }
    }

    /// Mutable access to the voice buffer.
    pub fn voice_buffer_mut(&mut self) -> &mut VoiceBuffer {
        unsafe { self.view.voice_buffer_mut(self.i) }
    }

    /// Mutable access to the data buffer.
    pub fn data_buffer_mut(&mut self) -> &mut DataBuffer {
        unsafe { self.view.data_buffer_mut(self.i) }
    }

    /// The terminal's true instantaneous SNR at time `t`.
    pub fn true_snr_db(&mut self, t: SimTime) -> f64 {
        unsafe { self.view.true_snr_db(self.i, t) }
    }

    /// The contention random stream (permission probability, slot choice).
    pub fn contention_rng(&mut self) -> &mut Xoshiro256StarStar {
        unsafe { self.view.contention_rng(self.i) }
    }

    /// The packet-error random stream.
    pub fn phy_rng(&mut self) -> &mut Xoshiro256StarStar {
        unsafe { self.view.phy_rng(self.i) }
    }
}

/// The mutable per-frame view handed to a protocol's `run_frame`.
pub struct FrameWorld<'a> {
    /// Index of the current frame.
    pub frame: u64,
    /// Start time of the current frame.
    pub now: SimTime,
    /// The frame clock.
    pub clock: FrameClock,
    /// The scenario configuration.
    pub config: &'a SimConfig,
    /// Whether the warm-up period is over and counters should accumulate.
    pub measuring: bool,
    /// Per-terminal traffic events at this frame boundary (indexed like
    /// the global terminal population).
    pub traffic: &'a [FrameTraffic],
    /// The terminals attached to this world's base station, in attachment
    /// order.  In a single-cell run this is every terminal; in a multi-cell
    /// run it is the serving cell's current membership, and the columns /
    /// `traffic` still span the whole system (ids are global).
    members: &'a [TerminalId],
    terminals: TerminalTable<'a>,
    metrics: &'a mut RunMetrics,
    estimator: &'a mut CsiEstimator,
    adaptive_phy: AdaptivePhy,
    fixed_phy: FixedPhy,
    bs_rng: &'a mut Xoshiro256StarStar,
    scratch: &'a mut FrameScratch,
}

impl<'a> FrameWorld<'a> {
    /// Assembles the per-frame world.  Column slot `i` must be
    /// `TerminalId(i)`; the scenario builder guarantees it.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        frame: u64,
        config: &'a SimConfig,
        measuring: bool,
        traffic: &'a [FrameTraffic],
        members: &'a [TerminalId],
        terminals: impl Into<TerminalTable<'a>>,
        metrics: &'a mut RunMetrics,
        estimator: &'a mut CsiEstimator,
        bs_rng: &'a mut Xoshiro256StarStar,
        scratch: &'a mut FrameScratch,
    ) -> Self {
        let clock = config.clock();
        let terminals = terminals.into();
        debug_assert_eq!(traffic.len(), terminals.len());
        debug_assert!(members.len() <= terminals.len());
        FrameWorld {
            frame,
            now: clock.frame_start(frame),
            clock,
            config,
            measuring,
            traffic,
            members,
            terminals,
            metrics,
            estimator,
            adaptive_phy: AdaptivePhy::new(config.adaptive_phy),
            fixed_phy: FixedPhy::new(config.fixed_phy),
            bs_rng,
            scratch,
        }
    }

    /// Number of terminals in the whole scenario (across every cell).
    pub fn num_terminals(&self) -> usize {
        self.terminals.len()
    }

    /// Immutable proxy for a terminal.
    #[deprecated(note = "use the index accessors instead: `world.class(id)`, \
                `world.voice_backlog(id)`, `world.has_backlog(id)`, …")]
    pub fn terminal(&self, id: TerminalId) -> TerminalRef<'_> {
        TerminalRef {
            view: self.terminals.view,
            i: id.index() as usize,
            _marker: PhantomData,
        }
    }

    /// Mutable proxy for a terminal.
    #[deprecated(
        note = "use the index accessors instead: `world.voice_buffer_mut(id)`, \
                `world.true_snr_db(id)`, `world.contention_rng(id)`, …"
    )]
    pub fn terminal_mut(&mut self, id: TerminalId) -> TerminalMut<'_> {
        TerminalMut {
            view: self.terminals.view,
            i: id.index() as usize,
            _marker: PhantomData,
        }
    }

    /// The ids of the terminals attached to this base station, in attachment
    /// order.  This is the population a MAC protocol serves: in a multi-cell
    /// run, terminals of other cells are invisible here.
    pub fn members(&self) -> &'a [TerminalId] {
        self.members
    }

    /// Iterates over the member ids ([`FrameWorld::members`] as an
    /// iterator).
    pub fn terminal_ids(&self) -> impl Iterator<Item = TerminalId> + '_ {
        self.members.iter().copied()
    }

    // ----- per-terminal index accessors (the MAC-facing read surface) -----

    /// The terminal's service class.
    pub fn class(&self, id: TerminalId) -> TerminalClass {
        self.terminals.class(id.index() as usize)
    }

    /// Whether the terminal is currently in a talkspurt.
    pub fn in_talkspurt(&self, id: TerminalId) -> bool {
        self.terminals.in_talkspurt(id.index() as usize)
    }

    /// Number of voice packets waiting in the terminal's transmit buffer.
    pub fn voice_backlog(&self, id: TerminalId) -> usize {
        self.terminals.voice_backlog(id.index() as usize)
    }

    /// Number of data packets waiting in the terminal's transmit buffer.
    pub fn data_backlog(&self, id: TerminalId) -> u64 {
        self.terminals.data_backlog(id.index() as usize)
    }

    /// Whether the terminal has anything to send.
    pub fn has_backlog(&self, id: TerminalId) -> bool {
        self.terminals.has_backlog(id.index() as usize)
    }

    /// Earliest deadline among the terminal's buffered voice packets.
    pub fn earliest_voice_deadline(&self, id: TerminalId) -> Option<SimTime> {
        self.terminals.earliest_voice_deadline(id.index() as usize)
    }

    /// Arrival time of the terminal's oldest buffered data packet.
    pub fn oldest_data_arrival(&self, id: TerminalId) -> Option<SimTime> {
        self.terminals.oldest_data_arrival(id.index() as usize)
    }

    /// The terminal's true instantaneous SNR at the current frame start
    /// (memoised per frame in lazy channel mode).
    pub fn true_snr_db(&mut self, id: TerminalId) -> f64 {
        let now = self.now;
        self.terminals.true_snr_db(id.index() as usize, now)
    }

    /// Mutable access to the terminal's voice buffer (transmission engine
    /// and tests).
    pub fn voice_buffer_mut(&mut self, id: TerminalId) -> &mut VoiceBuffer {
        self.terminals.voice_buffer_mut(id.index() as usize)
    }

    /// Mutable access to the terminal's data buffer (transmission engine
    /// and tests).
    pub fn data_buffer_mut(&mut self, id: TerminalId) -> &mut DataBuffer {
        self.terminals.data_buffer_mut(id.index() as usize)
    }

    /// The terminal's contention random stream.
    pub fn contention_rng(&mut self, id: TerminalId) -> &mut Xoshiro256StarStar {
        self.terminals.contention_rng(id.index() as usize)
    }

    /// The metrics accumulator (protocols may add protocol-specific samples).
    pub fn metrics_mut(&mut self) -> &mut RunMetrics {
        self.metrics
    }

    /// The base-station random stream (auction draws, tie breaking, …).
    pub fn bs_rng(&mut self) -> &mut Xoshiro256StarStar {
        self.bs_rng
    }

    /// The adaptive PHY instance configured for this scenario.
    pub fn adaptive_phy(&self) -> &AdaptivePhy {
        &self.adaptive_phy
    }

    /// The fixed PHY instance configured for this scenario.
    pub fn fixed_phy(&self) -> &FixedPhy {
        &self.fixed_phy
    }

    /// Records that the frame structure offered `n` information slots this
    /// frame (for the utilisation statistics).
    pub fn record_offered_slots(&mut self, n: u32) {
        if self.measuring {
            self.metrics.slots.offered += n as f64;
        }
    }

    /// Records `slots` slot-equivalents of airtime that were allocated to a
    /// terminal but could not carry any packet (e.g. a CSI-blind protocol
    /// allocated a slot to a terminal in a deep fade).  The paper calls these
    /// wasted slots.
    pub fn record_wasted_slots(&mut self, slots: f64) {
        if self.measuring {
            self.metrics.slots.assigned += slots;
            self.metrics.slots.wasted += slots;
        }
    }

    /// Permission probability applicable to a terminal class.
    pub fn permission_probability(&self, class: TerminalClass) -> f64 {
        match class {
            TerminalClass::Voice => self.config.contention.pv,
            TerminalClass::Data => self.config.contention.pd,
        }
    }

    /// Runs the slotted request-contention phase over `n_slots` request
    /// minislots for the given eligible terminals and returns the ids whose
    /// request was successfully received, in acknowledgement order.
    ///
    /// In each minislot every still-unacknowledged eligible terminal
    /// transmits a request with its class's permission probability; if
    /// exactly one transmits the request is received and acknowledged,
    /// otherwise all transmissions in that minislot are destroyed (no capture
    /// effect), and the losers retry in the next minislot.
    pub fn contend(&mut self, n_slots: u32, eligible: &[TerminalId]) -> Vec<TerminalId> {
        let mut winners = Vec::new();
        self.contend_into(n_slots, eligible, &mut winners);
        winners
    }

    /// Allocation-free variant of [`Self::contend`]: clears `winners` and
    /// fills it with the acknowledged terminals in acknowledgement order,
    /// reusing its capacity.  The per-minislot bookkeeping lives in the
    /// scenario-owned [`FrameScratch`], so a protocol that passes a reusable
    /// buffer here runs the whole request phase without heap allocation.
    pub fn contend_into(
        &mut self,
        n_slots: u32,
        eligible: &[TerminalId],
        winners: &mut Vec<TerminalId>,
    ) {
        winners.clear();
        if eligible.is_empty() || n_slots == 0 {
            return;
        }
        // Detach the scratch buffers so the minislot loop can borrow
        // terminals and metrics through `self`.
        let mut remaining = std::mem::take(&mut self.scratch.contend_remaining);
        let mut transmitters = std::mem::take(&mut self.scratch.contend_transmitters);
        remaining.clear();
        remaining.extend_from_slice(eligible);
        let (pv, pd) = (self.config.contention.pv, self.config.contention.pd);
        for _slot in 0..n_slots {
            if remaining.is_empty() {
                break;
            }
            transmitters.clear();
            for (pos, &id) in remaining.iter().enumerate() {
                let i = id.index() as usize;
                let p = match self.terminals.class(i) {
                    TerminalClass::Voice => pv,
                    TerminalClass::Data => pd,
                };
                if Sampler::bernoulli(self.terminals.contention_rng(i), p) {
                    transmitters.push(pos);
                }
            }
            if self.measuring {
                self.metrics.contention.attempts += transmitters.len() as u64;
            }
            match transmitters.len() {
                1 => {
                    let winner = remaining.remove(transmitters[0]);
                    winners.push(winner);
                    if self.measuring {
                        self.metrics.contention.successes += 1;
                    }
                }
                0 => {}
                n => {
                    if self.measuring {
                        self.metrics.contention.collisions += n as u64;
                    }
                }
            }
        }
        self.scratch.contend_remaining = remaining;
        self.scratch.contend_transmitters = transmitters;
    }

    /// Produces a CSI estimate for a terminal from pilot symbols observed at
    /// the current frame start (used for new requests and CSI polling).
    pub fn estimate_csi(&mut self, id: TerminalId) -> CsiEstimate {
        let now = self.now;
        let true_snr = self.terminals.true_snr_db(id.index() as usize, now);
        self.estimator.estimate(true_snr, now)
    }

    /// How long a CSI estimate stays valid before CHARISMA must refresh it.
    pub fn csi_validity(&self) -> charisma_des::SimDuration {
        self.estimator.config().validity
    }

    /// The slot capacity (packets per information slot) a grant enjoys under
    /// the given link adaptation, evaluated for terminal `id` *now*.
    pub fn capacity(&mut self, id: TerminalId, link: LinkAdaptation) -> f64 {
        match link {
            LinkAdaptation::Fixed => self.fixed_phy.packets_per_slot(0.0),
            LinkAdaptation::Tracking => {
                let now = self.now;
                let snr = self.terminals.true_snr_db(id.index() as usize, now);
                self.adaptive_phy.packets_per_slot(snr)
            }
            LinkAdaptation::Announced { snr_db } => self.adaptive_phy.packets_per_slot(snr_db),
        }
    }

    /// Per-packet error probability for a transmission by terminal `id` right
    /// now under the given link adaptation.
    fn error_probability(&mut self, id: TerminalId, link: LinkAdaptation) -> f64 {
        let now = self.now;
        let true_snr = self.terminals.true_snr_db(id.index() as usize, now);
        match link {
            LinkAdaptation::Fixed => self.fixed_phy.packet_error_probability(true_snr),
            LinkAdaptation::Tracking => self.adaptive_phy.packet_error_probability(true_snr),
            LinkAdaptation::Announced { snr_db } => self
                .adaptive_phy
                .announced_packet_error_probability(snr_db, true_snr),
        }
    }

    /// Transmits one voice packet of terminal `id` using `slots`
    /// slot-equivalents of airtime under the given link adaptation.
    ///
    /// Slot amounts are fractional: a terminal enjoying normalised throughput
    /// 5 fits its packet into one fifth of an information slot, which is how
    /// the adaptive protocols pack more voice users into the same frame.
    pub fn transmit_voice(&mut self, id: TerminalId, slots: f64, link: LinkAdaptation) -> VoiceTx {
        if slots <= 0.0 {
            return VoiceTx::InsufficientCapacity;
        }
        let capacity = self.capacity(id, link);
        if slots * capacity + 1e-9 < 1.0 {
            return VoiceTx::InsufficientCapacity;
        }
        let per = self.error_probability(id, link);
        let measuring = self.measuring;
        let i = id.index() as usize;
        if self.terminals.voice_buffer_mut(i).pop().is_none() {
            return VoiceTx::NoPacket;
        }
        let ok = Sampler::bernoulli(self.terminals.phy_rng(i), 1.0 - per);
        if measuring {
            self.metrics.slots.assigned += slots;
            if ok {
                self.metrics.voice.delivered += 1;
                self.metrics.slots.packets_carried += 1;
            } else {
                self.metrics.voice.transmission_errors += 1;
                self.metrics.slots.wasted += slots;
            }
        }
        if ok {
            VoiceTx::Delivered
        } else {
            VoiceTx::Errored
        }
    }

    /// Pops one voice packet of terminal `id` and records it as lost to a
    /// transmission error while charging `slots` slot-equivalents of wasted
    /// airtime.
    ///
    /// This models a CSI-blind allocation whose grant cannot carry the packet
    /// at the terminal's current channel state (the terminal is in outage, or
    /// its adaptive PHY fell to a sub-unit rate while the MAC granted a single
    /// slot): the airtime is spent, the packet is corrupted, and the paper
    /// counts it as a transmission error (Section 5.3.1).  Returns `false`
    /// when the terminal had no packet to lose.
    pub fn fail_voice(&mut self, id: TerminalId, slots: f64) -> bool {
        let measuring = self.measuring;
        if self
            .terminals
            .voice_buffer_mut(id.index() as usize)
            .pop()
            .is_none()
        {
            return false;
        }
        if measuring {
            self.metrics.voice.transmission_errors += 1;
            self.metrics.slots.assigned += slots;
            self.metrics.slots.wasted += slots;
        }
        true
    }

    /// Transmits up to `max_packets` data packets of terminal `id` using
    /// `slots` slot-equivalents of airtime under the given link adaptation.
    /// Corrupted packets stay at the head of the terminal's buffer
    /// (retransmission) and keep their original arrival time, so their
    /// eventual delivery delay includes the retransmission time — matching
    /// the paper's definition.
    pub fn transmit_data(
        &mut self,
        id: TerminalId,
        slots: f64,
        max_packets: u32,
        link: LinkAdaptation,
    ) -> DataTx {
        if slots <= 0.0 || max_packets == 0 {
            return DataTx::default();
        }
        let capacity = self.capacity(id, link);
        let by_capacity = (slots * capacity + 1e-9).floor() as u32;
        let budget = by_capacity.min(max_packets);
        if budget == 0 {
            return DataTx::default();
        }
        let per = self.error_probability(id, link);
        let now = self.now;
        let measuring = self.measuring;
        let i = id.index() as usize;

        // Detach the scratch buffers so the draw loop can borrow the terminal
        // columns and the metrics simultaneously.
        let mut runs = std::mem::take(&mut self.scratch.data_runs);
        let mut requeue = std::mem::take(&mut self.scratch.data_requeue);
        requeue.clear();

        self.terminals
            .data_buffer_mut(i)
            .pop_into(budget, &mut runs);
        if runs.is_empty() {
            self.scratch.data_runs = runs;
            self.scratch.data_requeue = requeue;
            return DataTx::default();
        }

        let mut result = DataTx::default();
        // Packets that error are pushed back to the front, preserving their
        // original arrival time and FIFO position.
        for run in &runs {
            for _ in 0..run.count {
                let ok = Sampler::bernoulli(self.terminals.phy_rng(i), 1.0 - per);
                if ok {
                    result.delivered += 1;
                    if measuring {
                        self.metrics
                            .data
                            .record_delivery(now.saturating_duration_since(run.arrived_at));
                        self.metrics.slots.packets_carried += 1;
                    }
                } else {
                    result.errored += 1;
                    if measuring {
                        self.metrics.data.retransmissions += 1;
                    }
                    requeue.push((run.arrived_at, 1));
                }
            }
        }
        // Re-insert errored packets at the front in their original order.
        for &(arrived, count) in requeue.iter().rev() {
            self.terminals.data_buffer_mut(i).push_front(arrived, count);
        }
        self.scratch.data_runs = runs;
        self.scratch.data_requeue = requeue;

        if measuring {
            self.metrics.slots.assigned += slots;
            if result.delivered == 0 {
                self.metrics.slots.wasted += slots;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columns::TerminalColumns;
    use crate::config::SimConfig;
    use crate::terminal::Terminal;
    use charisma_des::RngStreams;
    use charisma_radio::CsiEstimatorConfig;

    /// Builds a tiny world over `n_voice` voice and `n_data` data terminals,
    /// runs `setup_frames` traffic frames first so buffers are non-empty, and
    /// hands the pieces to the test closure.
    fn with_world<R>(
        n_voice: u32,
        n_data: u32,
        setup_frames: u64,
        f: impl FnOnce(FrameWorld<'_>) -> R,
    ) -> R {
        let mut config = SimConfig::quick_test();
        config.num_voice = n_voice;
        config.num_data = n_data;
        let streams = RngStreams::new(config.seed);
        let clock = config.clock();
        let mut columns =
            TerminalColumns::with_capacity(clock, config.channel_mode, (n_voice + n_data) as usize);
        for i in 0..n_voice + n_data {
            let class = if i < n_voice {
                TerminalClass::Voice
            } else {
                TerminalClass::Data
            };
            columns.push(Terminal::new(
                TerminalId(i),
                class,
                clock,
                config.voice_source,
                config.data_source,
                config.channel,
                config.channel_mode,
                &config.speed,
                &streams,
            ));
        }
        let mut traffic = vec![FrameTraffic::default(); columns.len()];
        for k in 0..=setup_frames {
            columns.begin_frame_all(k, &mut traffic);
        }
        let mut metrics = RunMetrics::default();
        let mut estimator = CsiEstimator::new(
            CsiEstimatorConfig::default(),
            streams.stream(charisma_des::StreamId::new(
                charisma_des::StreamId::DOMAIN_ESTIMATION,
                u32::MAX,
            )),
        );
        let mut bs_rng = streams.stream(charisma_des::StreamId::new(
            charisma_des::StreamId::DOMAIN_PROTOCOL,
            u32::MAX,
        ));
        let mut scratch = FrameScratch::default();
        let members: Vec<TerminalId> = (0..n_voice + n_data).map(TerminalId).collect();
        let world = FrameWorld::new(
            setup_frames,
            &config,
            true,
            &traffic,
            &members,
            &mut columns,
            &mut metrics,
            &mut estimator,
            &mut bs_rng,
            &mut scratch,
        );
        f(world)
    }

    #[test]
    fn contention_with_single_contender_eventually_succeeds() {
        with_world(4, 0, 0, |mut w| {
            let ids = [TerminalId(0)];
            // With pv = 0.3 and 5 slots the single contender succeeds with
            // probability 1 − 0.7⁵ ≈ 0.83; repeat frames are not possible here
            // so just check the outcome is well formed.
            let winners = w.contend(w.config.frame.request_slots, &ids);
            assert!(winners.len() <= 1);
            if !winners.is_empty() {
                assert_eq!(winners[0], TerminalId(0));
            }
        });
    }

    #[test]
    fn contention_never_acknowledges_more_than_slots_or_contenders() {
        with_world(30, 10, 0, |mut w| {
            let ids: Vec<TerminalId> = w.terminal_ids().collect();
            let winners = w.contend(3, &ids);
            assert!(winners.len() <= 3);
            // No duplicates.
            let mut sorted = winners.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), winners.len());
        });
    }

    #[test]
    fn contention_counts_attempts_and_collisions() {
        with_world(60, 0, 0, |mut w| {
            let ids: Vec<TerminalId> = w.terminal_ids().collect();
            let _ = w.contend(5, &ids);
            let c = &w.metrics_mut().contention;
            assert!(c.attempts > 0, "some attempts should be made");
            assert_eq!(
                c.attempts,
                c.collisions + c.successes + (c.attempts - c.collisions - c.successes)
            );
            // With 60 contenders at pv=0.3 nearly every slot collides.
            assert!(c.collisions > 0);
        });
    }

    #[test]
    fn transmit_voice_requires_a_buffered_packet() {
        with_world(1, 0, 0, |mut w| {
            // Frame 0: the terminal may or may not have generated a packet;
            // drain the buffer first to force the NoPacket path.
            while w.voice_buffer_mut(TerminalId(0)).pop().is_some() {}
            let r = w.transmit_voice(TerminalId(0), 1.0, LinkAdaptation::Fixed);
            assert_eq!(r, VoiceTx::NoPacket);
        });
    }

    #[test]
    fn transmit_voice_delivers_or_errors_and_updates_metrics() {
        with_world(1, 0, 0, |mut w| {
            use charisma_traffic::buffer::VoicePacket;
            let now = w.now;
            w.voice_buffer_mut(TerminalId(0)).push(VoicePacket {
                generated_at: now,
                deadline: now + charisma_des::SimDuration::from_millis(20),
            });
            let r = w.transmit_voice(TerminalId(0), 1.0, LinkAdaptation::Fixed);
            assert!(matches!(r, VoiceTx::Delivered | VoiceTx::Errored));
            let m = w.metrics_mut();
            assert_eq!(m.voice.delivered + m.voice.transmission_errors, 1);
            assert!((m.slots.assigned - 1.0).abs() < 1e-9);
        });
    }

    #[test]
    fn announced_link_with_wildly_optimistic_csi_errors_out() {
        with_world(1, 0, 0, |mut w| {
            use charisma_traffic::buffer::VoicePacket;
            let now = w.now;
            w.voice_buffer_mut(TerminalId(0)).push(VoicePacket {
                generated_at: now,
                deadline: now + charisma_des::SimDuration::from_millis(20),
            });
            // Announce a 60 dB estimate: the true channel is far below, so the
            // announced (densest) mode cannot be sustained.
            let r = w.transmit_voice(
                TerminalId(0),
                1.0,
                LinkAdaptation::Announced { snr_db: 60.0 },
            );
            // With outage_per = 0.7 the packet usually errors; both outcomes
            // are legal but the error probability used must be the outage one,
            // which we verify through statistics over many draws elsewhere.
            assert!(matches!(r, VoiceTx::Delivered | VoiceTx::Errored));
        });
    }

    #[test]
    fn insufficient_capacity_keeps_the_packet_queued() {
        with_world(1, 0, 0, |mut w| {
            use charisma_traffic::buffer::VoicePacket;
            let now = w.now;
            w.voice_buffer_mut(TerminalId(0)).push(VoicePacket {
                generated_at: now,
                deadline: now + charisma_des::SimDuration::from_millis(20),
            });
            // Announcing a deep-outage CSI yields zero capacity: nothing sent.
            let r = w.transmit_voice(
                TerminalId(0),
                1.0,
                LinkAdaptation::Announced { snr_db: -40.0 },
            );
            assert_eq!(r, VoiceTx::InsufficientCapacity);
            assert_eq!(w.voice_backlog(TerminalId(0)), 1);
        });
    }

    #[test]
    fn transmit_data_moves_packets_and_measures_delay() {
        with_world(0, 1, 0, |mut w| {
            let now = w.now;
            w.data_buffer_mut(TerminalId(0)).push_burst(now, 50);
            let r = w.transmit_data(TerminalId(0), 4.0, 10, LinkAdaptation::Fixed);
            assert_eq!(r.delivered + r.errored, 4); // 4 slots × 1 pkt/slot, cap 10
            assert_eq!(w.data_backlog(TerminalId(0)), 50 - r.delivered as u64);
            let m = w.metrics_mut();
            assert_eq!(m.data.delivered, r.delivered as u64);
            assert_eq!(m.data.retransmissions, r.errored as u64);
        });
    }

    #[test]
    fn transmit_data_respects_packet_cap() {
        with_world(0, 1, 0, |mut w| {
            let now = w.now;
            w.data_buffer_mut(TerminalId(0)).push_burst(now, 50);
            let r = w.transmit_data(TerminalId(0), 8.0, 3, LinkAdaptation::Fixed);
            assert!(r.delivered + r.errored <= 3);
        });
    }

    #[test]
    fn errored_data_packets_keep_their_arrival_time() {
        with_world(0, 1, 0, |mut w| {
            let arrival = w.now;
            w.data_buffer_mut(TerminalId(0)).push_burst(arrival, 5);
            // Force certain errors by announcing an absurd mode.
            let r = w.transmit_data(
                TerminalId(0),
                1.0,
                5,
                LinkAdaptation::Announced { snr_db: 55.0 },
            );
            if r.errored > 0 {
                assert_eq!(w.oldest_data_arrival(TerminalId(0)), Some(arrival));
            }
        });
    }

    #[test]
    fn csi_estimates_are_timestamped_with_frame_start() {
        with_world(1, 0, 4, |mut w| {
            let est = w.estimate_csi(TerminalId(0));
            assert_eq!(est.estimated_at, w.now);
            assert!(est.snr_db.is_finite());
        });
    }

    #[test]
    fn snr_dependent_quantities_share_one_channel_evaluation_per_frame() {
        // Within one frame, capacity under the tracking PHY must be perfectly
        // repeatable: every query goes through the terminal's per-frame SNR
        // cache instead of re-sampling the channel.
        with_world(1, 1, 4, |mut w| {
            let id = TerminalId(0);
            let c0 = w.capacity(id, LinkAdaptation::Tracking);
            for _ in 0..4 {
                assert_eq!(w.capacity(id, LinkAdaptation::Tracking), c0);
            }
            // The underlying SNR itself is also stable across repeated reads.
            let snr = w.true_snr_db(id);
            assert_eq!(w.true_snr_db(id), snr);
            // And a transmission (capacity + error probability) does not
            // perturb the cached value either.
            let _ = w.transmit_data(TerminalId(1), 1.0, 1, LinkAdaptation::Tracking);
            assert_eq!(w.true_snr_db(id), snr);
        });
    }

    #[test]
    fn contend_into_reuses_the_caller_buffer() {
        with_world(30, 0, 0, |mut w| {
            let ids: Vec<TerminalId> = w.terminal_ids().collect();
            let mut winners = Vec::new();
            w.contend_into(3, &ids, &mut winners);
            assert!(winners.len() <= 3);
            // Once warmed up, repeated calls must not grow the buffer: the
            // winner count is bounded by the slot count, so the capacity
            // reached after the first call is reused, never re-allocated.
            let warmed = winners.capacity();
            for _ in 0..16 {
                w.contend_into(3, &ids, &mut winners);
                assert!(winners.len() <= 3);
                assert_eq!(
                    winners.capacity(),
                    warmed,
                    "contend_into must reuse the caller's buffer"
                );
            }
        });
    }

    #[test]
    fn capacity_fixed_is_one_and_announced_tracks_estimate() {
        with_world(1, 0, 0, |mut w| {
            assert_eq!(w.capacity(TerminalId(0), LinkAdaptation::Fixed), 1.0);
            assert_eq!(
                w.capacity(TerminalId(0), LinkAdaptation::Announced { snr_db: 30.0 }),
                5.0
            );
            assert_eq!(
                w.capacity(TerminalId(0), LinkAdaptation::Announced { snr_db: -40.0 }),
                0.0
            );
        });
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_object_getters_agree_with_index_accessors() {
        // The one-release compatibility shims must observe the exact same
        // state as the index accessors they forward to.
        with_world(2, 1, 4, |mut w| {
            for id in [TerminalId(0), TerminalId(1), TerminalId(2)] {
                assert_eq!(w.terminal(id).class(), w.class(id));
                assert_eq!(w.terminal(id).in_talkspurt(), w.in_talkspurt(id));
                assert_eq!(w.terminal(id).voice_backlog(), w.voice_backlog(id));
                assert_eq!(w.terminal(id).data_backlog(), w.data_backlog(id));
                assert_eq!(w.terminal(id).has_backlog(), w.has_backlog(id));
                assert_eq!(
                    w.terminal(id).earliest_voice_deadline(),
                    w.earliest_voice_deadline(id)
                );
                assert_eq!(
                    w.terminal(id).oldest_data_arrival(),
                    w.oldest_data_arrival(id)
                );
            }
            let now = w.now;
            let via_shim = w.terminal_mut(TerminalId(0)).true_snr_db(now);
            assert_eq!(via_shim, w.true_snr_db(TerminalId(0)));
        });
    }
}
