//! The per-frame execution environment shared by all protocols.
//!
//! [`FrameWorld`] bundles everything a MAC protocol may touch during one
//! frame — the terminal population, the physical layers, the CSI estimator,
//! the metrics accumulators — and provides the two pieces of machinery every
//! protocol needs so they are implemented exactly once:
//!
//! * **request contention** ([`FrameWorld::contend`]): the slotted request
//!   phase with per-class permission probabilities, collision destruction
//!   (no capture) and per-slot acknowledgement, and
//! * **the transmission engine** ([`FrameWorld::transmit_voice`],
//!   [`FrameWorld::transmit_data`]): moving packets out of terminal buffers
//!   through the configured physical layer, drawing channel errors from the
//!   *true* instantaneous SNR and updating the QoS counters.
//!
//! Protocols differ only in *which* terminals they admit to contention, *how*
//! they order the successful requests and *how many* slots they hand to each
//! — which is exactly the design space the paper describes.

use crate::config::SimConfig;
use crate::terminal::{FrameTraffic, Terminal};
use charisma_des::{FrameClock, Sampler, SimTime, Xoshiro256StarStar};
use charisma_metrics::RunMetrics;
use charisma_phy::{AdaptivePhy, FixedPhy, Phy};
use charisma_radio::{CsiEstimate, CsiEstimator};
use charisma_traffic::{buffer::ServedRun, TerminalClass, TerminalId};
use std::marker::PhantomData;

/// A view over the global terminal population that hands out per-terminal
/// references without holding a `&mut` over the whole slice.
///
/// In a single-cell run this is just a borrowed `&mut [Terminal]`.  In a
/// sharded multi-cell run every cell's [`FrameWorld`] gets a table over the
/// *same* underlying slice from a different worker thread; that would be
/// instant undefined behaviour with `&mut [Terminal]` aliases, so the table
/// stores a raw pointer and materialises one-element references on demand.
/// Soundness rests on the system layer's membership partition: each terminal
/// is attached to exactly one cell, and a cell's MAC only ever touches its
/// own members, so concurrent tables access disjoint elements.
pub struct TerminalTable<'a> {
    ptr: *mut Terminal,
    len: usize,
    _marker: PhantomData<&'a mut [Terminal]>,
}

impl<'a> From<&'a mut [Terminal]> for TerminalTable<'a> {
    fn from(terminals: &'a mut [Terminal]) -> Self {
        TerminalTable {
            ptr: terminals.as_mut_ptr(),
            len: terminals.len(),
            _marker: PhantomData,
        }
    }
}

impl<'a> From<&'a mut Vec<Terminal>> for TerminalTable<'a> {
    fn from(terminals: &'a mut Vec<Terminal>) -> Self {
        terminals.as_mut_slice().into()
    }
}

impl<'a> TerminalTable<'a> {
    /// Builds a table from a raw pointer and length.
    ///
    /// # Safety
    ///
    /// `ptr` must point to `len` initialised `Terminal`s that outlive `'a`,
    /// and for the lifetime of the table no element it accesses may be
    /// accessed through any other path.  Concurrent tables over the same
    /// allocation are allowed only if they access disjoint elements (the
    /// system layer's cell-membership partition).
    pub unsafe fn from_raw(ptr: *mut Terminal, len: usize) -> Self {
        TerminalTable {
            ptr,
            len,
            _marker: PhantomData,
        }
    }

    /// Number of terminals in the table (the whole scenario population).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Re-borrows the table at a shorter lifetime, exactly like re-borrowing
    /// a `&mut`.  [`crate::cell::Cell::step`] uses this so the
    /// [`FrameWorld`] it assembles borrows for the duration of the frame
    /// only, not for the caller's full table lifetime.
    pub fn reborrow(&mut self) -> TerminalTable<'_> {
        TerminalTable {
            ptr: self.ptr,
            len: self.len,
            _marker: PhantomData,
        }
    }

    fn get(&self, index: usize) -> &Terminal {
        assert!(index < self.len, "terminal index {index} out of bounds");
        // SAFETY: bounds-checked above; exclusivity per the table contract.
        unsafe { &*self.ptr.add(index) }
    }

    fn get_mut(&mut self, index: usize) -> &mut Terminal {
        assert!(index < self.len, "terminal index {index} out of bounds");
        // SAFETY: bounds-checked above; `&mut self` prevents a second
        // reference through *this* table, exclusivity across tables per the
        // table contract.
        unsafe { &mut *self.ptr.add(index) }
    }
}

/// Reusable scratch buffers for the per-frame hot paths.
///
/// The scenario runner owns one instance for the whole run and threads it
/// into each frame's [`FrameWorld`], so the request-contention loop and the
/// transmission engine recycle the same heap blocks frame after frame instead
/// of allocating fresh ones.  The buffers carry no semantic state across
/// frames — every user clears them before use.
#[derive(Debug, Default)]
pub struct FrameScratch {
    /// Still-unacknowledged contenders during [`FrameWorld::contend`].
    contend_remaining: Vec<TerminalId>,
    /// Positions (into `contend_remaining`) transmitting in one minislot.
    contend_transmitters: Vec<usize>,
    /// Runs popped from a data buffer in [`FrameWorld::transmit_data`].
    data_runs: Vec<ServedRun>,
    /// Errored packets awaiting re-insertion in [`FrameWorld::transmit_data`].
    data_requeue: Vec<(SimTime, u32)>,
}

/// How the physical layer picks its transmission mode for a grant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkAdaptation {
    /// Fixed-rate PHY: one packet per slot, fixed coding (D-TDMA/FR, RAMA,
    /// RMAV, DRMA).
    Fixed,
    /// Adaptive PHY that tracks the instantaneous channel at transmission
    /// time, with no MAC interaction (D-TDMA/VR).
    Tracking,
    /// Adaptive PHY whose mode was announced by the base station from an
    /// earlier CSI estimate (CHARISMA); a stale estimate can over- or
    /// under-shoot the true channel.
    Announced {
        /// The CSI estimate (SNR in dB) the announcement was based on.
        snr_db: f64,
    },
}

/// Result of a voice-packet transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VoiceTx {
    /// The packet was delivered without error.
    Delivered,
    /// The packet was transmitted but corrupted by the channel.
    Errored,
    /// The allocated capacity could not fit one packet (e.g. half-rate mode
    /// with a single slot); nothing was transmitted and the packet stays
    /// queued.
    InsufficientCapacity,
    /// The terminal had no voice packet to send (the slot is wasted).
    NoPacket,
}

/// Result of a data transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DataTx {
    /// Packets delivered without error.
    pub delivered: u32,
    /// Packets corrupted by the channel (they remain queued for
    /// retransmission).
    pub errored: u32,
}

/// The mutable per-frame view handed to a protocol's `run_frame`.
pub struct FrameWorld<'a> {
    /// Index of the current frame.
    pub frame: u64,
    /// Start time of the current frame.
    pub now: SimTime,
    /// The frame clock.
    pub clock: FrameClock,
    /// The scenario configuration.
    pub config: &'a SimConfig,
    /// Whether the warm-up period is over and counters should accumulate.
    pub measuring: bool,
    /// Per-terminal traffic events at this frame boundary (indexed like
    /// `terminals`).
    pub traffic: &'a [FrameTraffic],
    /// The terminals attached to this world's base station, in attachment
    /// order.  In a single-cell run this is every terminal; in a multi-cell
    /// run it is the serving cell's current membership, and `terminals` /
    /// `traffic` still span the whole system (ids are global).
    members: &'a [TerminalId],
    terminals: TerminalTable<'a>,
    metrics: &'a mut RunMetrics,
    estimator: &'a mut CsiEstimator,
    adaptive_phy: AdaptivePhy,
    fixed_phy: FixedPhy,
    bs_rng: &'a mut Xoshiro256StarStar,
    scratch: &'a mut FrameScratch,
}

impl<'a> FrameWorld<'a> {
    /// Assembles the per-frame world.  `terminals[i].id().index() == i` must
    /// hold; the scenario builder guarantees it.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        frame: u64,
        config: &'a SimConfig,
        measuring: bool,
        traffic: &'a [FrameTraffic],
        members: &'a [TerminalId],
        terminals: impl Into<TerminalTable<'a>>,
        metrics: &'a mut RunMetrics,
        estimator: &'a mut CsiEstimator,
        bs_rng: &'a mut Xoshiro256StarStar,
        scratch: &'a mut FrameScratch,
    ) -> Self {
        let clock = config.clock();
        let terminals = terminals.into();
        debug_assert_eq!(traffic.len(), terminals.len());
        debug_assert!(members.len() <= terminals.len());
        FrameWorld {
            frame,
            now: clock.frame_start(frame),
            clock,
            config,
            measuring,
            traffic,
            members,
            terminals,
            metrics,
            estimator,
            adaptive_phy: AdaptivePhy::new(config.adaptive_phy),
            fixed_phy: FixedPhy::new(config.fixed_phy),
            bs_rng,
            scratch,
        }
    }

    /// Number of terminals in the whole scenario (across every cell).
    pub fn num_terminals(&self) -> usize {
        self.terminals.len()
    }

    /// Immutable access to a terminal.
    pub fn terminal(&self, id: TerminalId) -> &Terminal {
        self.terminals.get(id.index() as usize)
    }

    /// Mutable access to a terminal.
    pub fn terminal_mut(&mut self, id: TerminalId) -> &mut Terminal {
        self.terminals.get_mut(id.index() as usize)
    }

    /// Iterates over the ids of the terminals attached to this base station,
    /// in attachment order.  This is the population a MAC protocol serves:
    /// in a multi-cell run, terminals of other cells are invisible here.
    pub fn terminal_ids(&self) -> impl Iterator<Item = TerminalId> + '_ {
        self.members.iter().copied()
    }

    /// The metrics accumulator (protocols may add protocol-specific samples).
    pub fn metrics_mut(&mut self) -> &mut RunMetrics {
        self.metrics
    }

    /// The base-station random stream (auction draws, tie breaking, …).
    pub fn bs_rng(&mut self) -> &mut Xoshiro256StarStar {
        self.bs_rng
    }

    /// The adaptive PHY instance configured for this scenario.
    pub fn adaptive_phy(&self) -> &AdaptivePhy {
        &self.adaptive_phy
    }

    /// The fixed PHY instance configured for this scenario.
    pub fn fixed_phy(&self) -> &FixedPhy {
        &self.fixed_phy
    }

    /// Records that the frame structure offered `n` information slots this
    /// frame (for the utilisation statistics).
    pub fn record_offered_slots(&mut self, n: u32) {
        if self.measuring {
            self.metrics.slots.offered += n as f64;
        }
    }

    /// Records `slots` slot-equivalents of airtime that were allocated to a
    /// terminal but could not carry any packet (e.g. a CSI-blind protocol
    /// allocated a slot to a terminal in a deep fade).  The paper calls these
    /// wasted slots.
    pub fn record_wasted_slots(&mut self, slots: f64) {
        if self.measuring {
            self.metrics.slots.assigned += slots;
            self.metrics.slots.wasted += slots;
        }
    }

    /// Permission probability applicable to a terminal class.
    pub fn permission_probability(&self, class: TerminalClass) -> f64 {
        match class {
            TerminalClass::Voice => self.config.contention.pv,
            TerminalClass::Data => self.config.contention.pd,
        }
    }

    /// Runs the slotted request-contention phase over `n_slots` request
    /// minislots for the given eligible terminals and returns the ids whose
    /// request was successfully received, in acknowledgement order.
    ///
    /// In each minislot every still-unacknowledged eligible terminal
    /// transmits a request with its class's permission probability; if
    /// exactly one transmits the request is received and acknowledged,
    /// otherwise all transmissions in that minislot are destroyed (no capture
    /// effect), and the losers retry in the next minislot.
    pub fn contend(&mut self, n_slots: u32, eligible: &[TerminalId]) -> Vec<TerminalId> {
        let mut winners = Vec::new();
        self.contend_into(n_slots, eligible, &mut winners);
        winners
    }

    /// Allocation-free variant of [`Self::contend`]: clears `winners` and
    /// fills it with the acknowledged terminals in acknowledgement order,
    /// reusing its capacity.  The per-minislot bookkeeping lives in the
    /// scenario-owned [`FrameScratch`], so a protocol that passes a reusable
    /// buffer here runs the whole request phase without heap allocation.
    pub fn contend_into(
        &mut self,
        n_slots: u32,
        eligible: &[TerminalId],
        winners: &mut Vec<TerminalId>,
    ) {
        winners.clear();
        if eligible.is_empty() || n_slots == 0 {
            return;
        }
        // Detach the scratch buffers so the minislot loop can borrow
        // terminals and metrics through `self`.
        let mut remaining = std::mem::take(&mut self.scratch.contend_remaining);
        let mut transmitters = std::mem::take(&mut self.scratch.contend_transmitters);
        remaining.clear();
        remaining.extend_from_slice(eligible);
        for _slot in 0..n_slots {
            if remaining.is_empty() {
                break;
            }
            transmitters.clear();
            for (pos, &id) in remaining.iter().enumerate() {
                let class = self.terminal(id).class();
                let p = self.permission_probability(class);
                let t = self.terminal_mut(id);
                if Sampler::bernoulli(t.contention_rng(), p) {
                    transmitters.push(pos);
                }
            }
            if self.measuring {
                self.metrics.contention.attempts += transmitters.len() as u64;
            }
            match transmitters.len() {
                1 => {
                    let winner = remaining.remove(transmitters[0]);
                    winners.push(winner);
                    if self.measuring {
                        self.metrics.contention.successes += 1;
                    }
                }
                0 => {}
                n => {
                    if self.measuring {
                        self.metrics.contention.collisions += n as u64;
                    }
                }
            }
        }
        self.scratch.contend_remaining = remaining;
        self.scratch.contend_transmitters = transmitters;
    }

    /// Produces a CSI estimate for a terminal from pilot symbols observed at
    /// the current frame start (used for new requests and CSI polling).
    pub fn estimate_csi(&mut self, id: TerminalId) -> CsiEstimate {
        let now = self.now;
        let true_snr = self.terminals.get_mut(id.index() as usize).true_snr_db(now);
        self.estimator.estimate(true_snr, now)
    }

    /// How long a CSI estimate stays valid before CHARISMA must refresh it.
    pub fn csi_validity(&self) -> charisma_des::SimDuration {
        self.estimator.config().validity
    }

    /// The slot capacity (packets per information slot) a grant enjoys under
    /// the given link adaptation, evaluated for terminal `id` *now*.
    pub fn capacity(&mut self, id: TerminalId, link: LinkAdaptation) -> f64 {
        match link {
            LinkAdaptation::Fixed => self.fixed_phy.packets_per_slot(0.0),
            LinkAdaptation::Tracking => {
                let now = self.now;
                let snr = self.terminals.get_mut(id.index() as usize).true_snr_db(now);
                self.adaptive_phy.packets_per_slot(snr)
            }
            LinkAdaptation::Announced { snr_db } => self.adaptive_phy.packets_per_slot(snr_db),
        }
    }

    /// Per-packet error probability for a transmission by terminal `id` right
    /// now under the given link adaptation.
    fn error_probability(&mut self, id: TerminalId, link: LinkAdaptation) -> f64 {
        let now = self.now;
        let true_snr = self.terminals.get_mut(id.index() as usize).true_snr_db(now);
        match link {
            LinkAdaptation::Fixed => self.fixed_phy.packet_error_probability(true_snr),
            LinkAdaptation::Tracking => self.adaptive_phy.packet_error_probability(true_snr),
            LinkAdaptation::Announced { snr_db } => self
                .adaptive_phy
                .announced_packet_error_probability(snr_db, true_snr),
        }
    }

    /// Transmits one voice packet of terminal `id` using `slots`
    /// slot-equivalents of airtime under the given link adaptation.
    ///
    /// Slot amounts are fractional: a terminal enjoying normalised throughput
    /// 5 fits its packet into one fifth of an information slot, which is how
    /// the adaptive protocols pack more voice users into the same frame.
    pub fn transmit_voice(&mut self, id: TerminalId, slots: f64, link: LinkAdaptation) -> VoiceTx {
        if slots <= 0.0 {
            return VoiceTx::InsufficientCapacity;
        }
        let capacity = self.capacity(id, link);
        if slots * capacity + 1e-9 < 1.0 {
            return VoiceTx::InsufficientCapacity;
        }
        let per = self.error_probability(id, link);
        let measuring = self.measuring;
        let terminal = self.terminals.get_mut(id.index() as usize);
        let Some(_packet) = terminal.voice_buffer_mut().pop() else {
            return VoiceTx::NoPacket;
        };
        let ok = Sampler::bernoulli(terminal.phy_rng(), 1.0 - per);
        if measuring {
            self.metrics.slots.assigned += slots;
            if ok {
                self.metrics.voice.delivered += 1;
                self.metrics.slots.packets_carried += 1;
            } else {
                self.metrics.voice.transmission_errors += 1;
                self.metrics.slots.wasted += slots;
            }
        }
        if ok {
            VoiceTx::Delivered
        } else {
            VoiceTx::Errored
        }
    }

    /// Pops one voice packet of terminal `id` and records it as lost to a
    /// transmission error while charging `slots` slot-equivalents of wasted
    /// airtime.
    ///
    /// This models a CSI-blind allocation whose grant cannot carry the packet
    /// at the terminal's current channel state (the terminal is in outage, or
    /// its adaptive PHY fell to a sub-unit rate while the MAC granted a single
    /// slot): the airtime is spent, the packet is corrupted, and the paper
    /// counts it as a transmission error (Section 5.3.1).  Returns `false`
    /// when the terminal had no packet to lose.
    pub fn fail_voice(&mut self, id: TerminalId, slots: f64) -> bool {
        let measuring = self.measuring;
        let terminal = self.terminals.get_mut(id.index() as usize);
        if terminal.voice_buffer_mut().pop().is_none() {
            return false;
        }
        if measuring {
            self.metrics.voice.transmission_errors += 1;
            self.metrics.slots.assigned += slots;
            self.metrics.slots.wasted += slots;
        }
        true
    }

    /// Transmits up to `max_packets` data packets of terminal `id` using
    /// `slots` slot-equivalents of airtime under the given link adaptation.
    /// Corrupted packets stay at the head of the terminal's buffer
    /// (retransmission) and keep their original arrival time, so their
    /// eventual delivery delay includes the retransmission time — matching
    /// the paper's definition.
    pub fn transmit_data(
        &mut self,
        id: TerminalId,
        slots: f64,
        max_packets: u32,
        link: LinkAdaptation,
    ) -> DataTx {
        if slots <= 0.0 || max_packets == 0 {
            return DataTx::default();
        }
        let capacity = self.capacity(id, link);
        let by_capacity = (slots * capacity + 1e-9).floor() as u32;
        let budget = by_capacity.min(max_packets);
        if budget == 0 {
            return DataTx::default();
        }
        let per = self.error_probability(id, link);
        let now = self.now;
        let measuring = self.measuring;

        // Detach the scratch buffers so the draw loop can borrow the terminal
        // and the metrics simultaneously.
        let mut runs = std::mem::take(&mut self.scratch.data_runs);
        let mut requeue = std::mem::take(&mut self.scratch.data_requeue);
        requeue.clear();

        let terminal = self.terminals.get_mut(id.index() as usize);
        terminal.data_buffer_mut().pop_into(budget, &mut runs);
        if runs.is_empty() {
            self.scratch.data_runs = runs;
            self.scratch.data_requeue = requeue;
            return DataTx::default();
        }

        let mut result = DataTx::default();
        // Packets that error are pushed back to the front, preserving their
        // original arrival time and FIFO position.
        for run in &runs {
            for _ in 0..run.count {
                let ok = Sampler::bernoulli(terminal.phy_rng(), 1.0 - per);
                if ok {
                    result.delivered += 1;
                    if measuring {
                        self.metrics
                            .data
                            .record_delivery(now.saturating_duration_since(run.arrived_at));
                        self.metrics.slots.packets_carried += 1;
                    }
                } else {
                    result.errored += 1;
                    if measuring {
                        self.metrics.data.retransmissions += 1;
                    }
                    requeue.push((run.arrived_at, 1));
                }
            }
        }
        // Re-insert errored packets at the front in their original order.
        for &(arrived, count) in requeue.iter().rev() {
            terminal.data_buffer_mut().push_front(arrived, count);
        }
        self.scratch.data_runs = runs;
        self.scratch.data_requeue = requeue;

        if measuring {
            self.metrics.slots.assigned += slots;
            if result.delivered == 0 {
                self.metrics.slots.wasted += slots;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::terminal::Terminal;
    use charisma_des::RngStreams;
    use charisma_radio::CsiEstimatorConfig;

    /// Builds a tiny world over `n_voice` voice and `n_data` data terminals,
    /// runs `setup_frames` traffic frames first so buffers are non-empty, and
    /// hands the pieces to the test closure.
    fn with_world<R>(
        n_voice: u32,
        n_data: u32,
        setup_frames: u64,
        f: impl FnOnce(FrameWorld<'_>) -> R,
    ) -> R {
        let mut config = SimConfig::quick_test();
        config.num_voice = n_voice;
        config.num_data = n_data;
        let streams = RngStreams::new(config.seed);
        let clock = config.clock();
        let mut terminals: Vec<Terminal> = (0..n_voice + n_data)
            .map(|i| {
                let class = if i < n_voice {
                    TerminalClass::Voice
                } else {
                    TerminalClass::Data
                };
                Terminal::new(
                    TerminalId(i),
                    class,
                    clock,
                    config.voice_source,
                    config.data_source,
                    config.channel,
                    config.channel_mode,
                    &config.speed,
                    &streams,
                )
            })
            .collect();
        let mut traffic = vec![FrameTraffic::default(); terminals.len()];
        for k in 0..=setup_frames {
            for (i, t) in terminals.iter_mut().enumerate() {
                traffic[i] = t.begin_frame(k);
            }
        }
        let mut metrics = RunMetrics::default();
        let mut estimator = CsiEstimator::new(
            CsiEstimatorConfig::default(),
            streams.stream(charisma_des::StreamId::new(
                charisma_des::StreamId::DOMAIN_ESTIMATION,
                u32::MAX,
            )),
        );
        let mut bs_rng = streams.stream(charisma_des::StreamId::new(
            charisma_des::StreamId::DOMAIN_PROTOCOL,
            u32::MAX,
        ));
        let mut scratch = FrameScratch::default();
        let members: Vec<TerminalId> = (0..n_voice + n_data).map(TerminalId).collect();
        let world = FrameWorld::new(
            setup_frames,
            &config,
            true,
            &traffic,
            &members,
            &mut terminals,
            &mut metrics,
            &mut estimator,
            &mut bs_rng,
            &mut scratch,
        );
        f(world)
    }

    #[test]
    fn contention_with_single_contender_eventually_succeeds() {
        with_world(4, 0, 0, |mut w| {
            let ids = [TerminalId(0)];
            // With pv = 0.3 and 5 slots the single contender succeeds with
            // probability 1 − 0.7⁵ ≈ 0.83; repeat frames are not possible here
            // so just check the outcome is well formed.
            let winners = w.contend(w.config.frame.request_slots, &ids);
            assert!(winners.len() <= 1);
            if !winners.is_empty() {
                assert_eq!(winners[0], TerminalId(0));
            }
        });
    }

    #[test]
    fn contention_never_acknowledges_more_than_slots_or_contenders() {
        with_world(30, 10, 0, |mut w| {
            let ids: Vec<TerminalId> = w.terminal_ids().collect();
            let winners = w.contend(3, &ids);
            assert!(winners.len() <= 3);
            // No duplicates.
            let mut sorted = winners.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), winners.len());
        });
    }

    #[test]
    fn contention_counts_attempts_and_collisions() {
        with_world(60, 0, 0, |mut w| {
            let ids: Vec<TerminalId> = w.terminal_ids().collect();
            let _ = w.contend(5, &ids);
            let c = &w.metrics_mut().contention;
            assert!(c.attempts > 0, "some attempts should be made");
            assert_eq!(
                c.attempts,
                c.collisions + c.successes + (c.attempts - c.collisions - c.successes)
            );
            // With 60 contenders at pv=0.3 nearly every slot collides.
            assert!(c.collisions > 0);
        });
    }

    #[test]
    fn transmit_voice_requires_a_buffered_packet() {
        with_world(1, 0, 0, |mut w| {
            // Frame 0: the terminal may or may not have generated a packet;
            // drain the buffer first to force the NoPacket path.
            while w
                .terminal_mut(TerminalId(0))
                .voice_buffer_mut()
                .pop()
                .is_some()
            {}
            let r = w.transmit_voice(TerminalId(0), 1.0, LinkAdaptation::Fixed);
            assert_eq!(r, VoiceTx::NoPacket);
        });
    }

    #[test]
    fn transmit_voice_delivers_or_errors_and_updates_metrics() {
        with_world(1, 0, 0, |mut w| {
            use charisma_traffic::buffer::VoicePacket;
            let now = w.now;
            w.terminal_mut(TerminalId(0))
                .voice_buffer_mut()
                .push(VoicePacket {
                    generated_at: now,
                    deadline: now + charisma_des::SimDuration::from_millis(20),
                });
            let r = w.transmit_voice(TerminalId(0), 1.0, LinkAdaptation::Fixed);
            assert!(matches!(r, VoiceTx::Delivered | VoiceTx::Errored));
            let m = w.metrics_mut();
            assert_eq!(m.voice.delivered + m.voice.transmission_errors, 1);
            assert!((m.slots.assigned - 1.0).abs() < 1e-9);
        });
    }

    #[test]
    fn announced_link_with_wildly_optimistic_csi_errors_out() {
        with_world(1, 0, 0, |mut w| {
            use charisma_traffic::buffer::VoicePacket;
            let now = w.now;
            w.terminal_mut(TerminalId(0))
                .voice_buffer_mut()
                .push(VoicePacket {
                    generated_at: now,
                    deadline: now + charisma_des::SimDuration::from_millis(20),
                });
            // Announce a 60 dB estimate: the true channel is far below, so the
            // announced (densest) mode cannot be sustained.
            let r = w.transmit_voice(
                TerminalId(0),
                1.0,
                LinkAdaptation::Announced { snr_db: 60.0 },
            );
            // With outage_per = 0.7 the packet usually errors; both outcomes
            // are legal but the error probability used must be the outage one,
            // which we verify through statistics over many draws elsewhere.
            assert!(matches!(r, VoiceTx::Delivered | VoiceTx::Errored));
        });
    }

    #[test]
    fn insufficient_capacity_keeps_the_packet_queued() {
        with_world(1, 0, 0, |mut w| {
            use charisma_traffic::buffer::VoicePacket;
            let now = w.now;
            w.terminal_mut(TerminalId(0))
                .voice_buffer_mut()
                .push(VoicePacket {
                    generated_at: now,
                    deadline: now + charisma_des::SimDuration::from_millis(20),
                });
            // Announcing a deep-outage CSI yields zero capacity: nothing sent.
            let r = w.transmit_voice(
                TerminalId(0),
                1.0,
                LinkAdaptation::Announced { snr_db: -40.0 },
            );
            assert_eq!(r, VoiceTx::InsufficientCapacity);
            assert_eq!(w.terminal(TerminalId(0)).voice_backlog(), 1);
        });
    }

    #[test]
    fn transmit_data_moves_packets_and_measures_delay() {
        with_world(0, 1, 0, |mut w| {
            let now = w.now;
            w.terminal_mut(TerminalId(0))
                .data_buffer_mut()
                .push_burst(now, 50);
            let r = w.transmit_data(TerminalId(0), 4.0, 10, LinkAdaptation::Fixed);
            assert_eq!(r.delivered + r.errored, 4); // 4 slots × 1 pkt/slot, cap 10
            assert_eq!(
                w.terminal(TerminalId(0)).data_backlog(),
                50 - r.delivered as u64
            );
            let m = w.metrics_mut();
            assert_eq!(m.data.delivered, r.delivered as u64);
            assert_eq!(m.data.retransmissions, r.errored as u64);
        });
    }

    #[test]
    fn transmit_data_respects_packet_cap() {
        with_world(0, 1, 0, |mut w| {
            let now = w.now;
            w.terminal_mut(TerminalId(0))
                .data_buffer_mut()
                .push_burst(now, 50);
            let r = w.transmit_data(TerminalId(0), 8.0, 3, LinkAdaptation::Fixed);
            assert!(r.delivered + r.errored <= 3);
        });
    }

    #[test]
    fn errored_data_packets_keep_their_arrival_time() {
        with_world(0, 1, 0, |mut w| {
            let arrival = w.now;
            w.terminal_mut(TerminalId(0))
                .data_buffer_mut()
                .push_burst(arrival, 5);
            // Force certain errors by announcing an absurd mode.
            let r = w.transmit_data(
                TerminalId(0),
                1.0,
                5,
                LinkAdaptation::Announced { snr_db: 55.0 },
            );
            if r.errored > 0 {
                assert_eq!(
                    w.terminal(TerminalId(0)).oldest_data_arrival(),
                    Some(arrival)
                );
            }
        });
    }

    #[test]
    fn csi_estimates_are_timestamped_with_frame_start() {
        with_world(1, 0, 4, |mut w| {
            let est = w.estimate_csi(TerminalId(0));
            assert_eq!(est.estimated_at, w.now);
            assert!(est.snr_db.is_finite());
        });
    }

    #[test]
    fn snr_dependent_quantities_share_one_channel_evaluation_per_frame() {
        // Within one frame, capacity under the tracking PHY must be perfectly
        // repeatable: every query goes through the terminal's per-frame SNR
        // cache instead of re-sampling the channel.
        with_world(1, 1, 4, |mut w| {
            let id = TerminalId(0);
            let c0 = w.capacity(id, LinkAdaptation::Tracking);
            for _ in 0..4 {
                assert_eq!(w.capacity(id, LinkAdaptation::Tracking), c0);
            }
            // The underlying SNR itself is also stable across repeated reads.
            let now = w.now;
            let snr = w.terminal_mut(id).true_snr_db(now);
            assert_eq!(w.terminal_mut(id).true_snr_db(now), snr);
            // And a transmission (capacity + error probability) does not
            // perturb the cached value either.
            let _ = w.transmit_data(TerminalId(1), 1.0, 1, LinkAdaptation::Tracking);
            assert_eq!(w.terminal_mut(id).true_snr_db(now), snr);
        });
    }

    #[test]
    fn contend_into_reuses_the_caller_buffer() {
        with_world(30, 0, 0, |mut w| {
            let ids: Vec<TerminalId> = w.terminal_ids().collect();
            let mut winners = Vec::new();
            w.contend_into(3, &ids, &mut winners);
            assert!(winners.len() <= 3);
            // Once warmed up, repeated calls must not grow the buffer: the
            // winner count is bounded by the slot count, so the capacity
            // reached after the first call is reused, never re-allocated.
            let warmed = winners.capacity();
            for _ in 0..16 {
                w.contend_into(3, &ids, &mut winners);
                assert!(winners.len() <= 3);
                assert_eq!(
                    winners.capacity(),
                    warmed,
                    "contend_into must reuse the caller's buffer"
                );
            }
        });
    }

    #[test]
    fn capacity_fixed_is_one_and_announced_tracks_estimate() {
        with_world(1, 0, 0, |mut w| {
            assert_eq!(w.capacity(TerminalId(0), LinkAdaptation::Fixed), 1.0);
            assert_eq!(
                w.capacity(TerminalId(0), LinkAdaptation::Announced { snr_db: 30.0 }),
                5.0
            );
            assert_eq!(
                w.capacity(TerminalId(0), LinkAdaptation::Announced { snr_db: -40.0 }),
                0.0
            );
        });
    }
}
