//! The multi-cell system layer: spatial mobility, path-loss SNR and handoff.
//!
//! The paper evaluates its protocols inside one cell; [`SystemWorld`]
//! generalises the platform to N cells on a hex or corridor layout
//! ([`Layout`]).  Each cell is an independent [`Cell`] — its own MAC
//! instance, CSI estimator, base-station stream, scratch buffers and metrics
//! — stepped **round-robin within one run**, so a multi-cell run is still a
//! single sequential unit of work for the sweep executor and stays
//! byte-deterministic for any (seed, cell count, sweep thread count).
//!
//! Per frame the world:
//!
//! 1. advances every terminal's traffic sources (exactly the single-cell
//!    boundary code, with counters attributed to the serving cell),
//! 2. advances every terminal's random-waypoint motion, re-points its mean
//!    SNR from the distance to its serving base station
//!    ([`PathLossConfig`]), and attempts a handoff when a different base
//!    station has become closer (with hysteresis) — admitting, queueing or
//!    refusing it per [`crate::config::HandoffConfig`],
//! 3. steps each cell's MAC over its current membership.
//!
//! Terminal ids are global (`cell · per_cell + local`), so a terminal keeps
//! its traffic, channel and contention streams across handoffs: migrating
//! changes *who serves it*, never *who it is*.  The old cell's MAC purges
//! its per-terminal state through [`UplinkMac::forget_terminal`].
//!
//! With `cells = 1` and a flat path-loss profile the system run reproduces
//! the single-cell scenario's metrics exactly (terminal motion draws from
//! its own dedicated RNG domain, so it never perturbs the other streams);
//! the equivalence is pinned by a test below.

use crate::cell::Cell;
use crate::config::{HandoffAdmission, Layout, SimConfig, SystemConfig};
use crate::protocols::{ProtocolKind, UplinkMac};
use crate::scenario::RunReport;
use crate::terminal::{FrameTraffic, Terminal};
use charisma_des::{RngStreams, StreamId, Xoshiro256StarStar};
use charisma_metrics::{CellCounters, HandoffStats, RunMetrics};
use charisma_radio::{Bounds, PathLossConfig, Position, RandomWaypoint};
use charisma_traffic::{TerminalClass, TerminalId};
use std::collections::VecDeque;

/// The cell centers of a layout, in cell-index order.
///
/// Hex layouts fill a spiral of rings around the center cell (cell 0 at the
/// origin, cells 1–6 the first ring, 7–18 the second, …); line layouts march
/// along the x axis.  Adjacent centers sit `√3 · radius` apart in both.
pub fn cell_centers(layout: &Layout, cells: u32) -> Vec<Position> {
    let spacing = 3f64.sqrt() * layout.cell_radius_m();
    match layout {
        Layout::Line { .. } => (0..cells)
            .map(|i| Position::new(i as f64 * spacing, 0.0))
            .collect(),
        Layout::Hex { .. } => {
            // Axial hex coordinates walked ring by ring (the classic spiral).
            let dirs: [(i64, i64); 6] = [(1, 0), (1, -1), (0, -1), (-1, 0), (-1, 1), (0, 1)];
            let mut axial: Vec<(i64, i64)> = vec![(0, 0)];
            let mut ring: i64 = 1;
            while (axial.len() as u32) < cells {
                let (mut q, mut r) = (-ring, ring); // dirs[4] scaled by `ring`
                for d in dirs {
                    for _ in 0..ring {
                        if (axial.len() as u32) < cells {
                            axial.push((q, r));
                        }
                        q += d.0;
                        r += d.1;
                    }
                }
                ring += 1;
            }
            axial
                .into_iter()
                .map(|(q, r)| {
                    Position::new(
                        spacing * (q as f64 + r as f64 / 2.0),
                        spacing * (3f64.sqrt() / 2.0) * r as f64,
                    )
                })
                .collect()
        }
    }
}

/// The motion bounds of a layout: the bounding box of the cell centers,
/// expanded by one cell radius on every side.
pub fn layout_bounds(centers: &[Position], cell_radius_m: f64) -> Bounds {
    let mut min = Position::new(f64::INFINITY, f64::INFINITY);
    let mut max = Position::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for c in centers {
        min.x_m = min.x_m.min(c.x_m);
        min.y_m = min.y_m.min(c.y_m);
        max.x_m = max.x_m.max(c.x_m);
        max.y_m = max.y_m.max(c.y_m);
    }
    Bounds::new(
        Position::new(min.x_m - cell_radius_m, min.y_m - cell_radius_m),
        Position::new(max.x_m + cell_radius_m, max.y_m + cell_radius_m),
    )
}

/// Per-terminal roaming state.
#[derive(Debug)]
struct RoamState {
    /// Index of the serving cell.
    serving: u32,
    /// Random-waypoint motion.
    motion: RandomWaypoint,
    /// The terminal's mobility stream (waypoint targets, shadowing draws).
    rng: Xoshiro256StarStar,
    /// Site-shadowing offset (dB) of the current (terminal, cell) link.
    shadow_db: f64,
    /// No handoff attempts before this frame (drop-on-full retry damping).
    retry_at: u64,
    /// The cell whose admission queue the terminal currently waits in.
    queued_for: Option<u32>,
    /// Whether the queued attempt was recorded in the measured counters
    /// (false for attempts queued during warm-up), so a later admission is
    /// counted exactly when its attempt was.
    attempt_measured: bool,
}

/// A multi-cell run, ready to execute (see the [module docs](self)).
pub struct SystemWorld {
    config: SimConfig,
    system: SystemConfig,
    protocol: ProtocolKind,
    terminals: Vec<Terminal>,
    traffic: Vec<FrameTraffic>,
    macs: Vec<Box<dyn UplinkMac>>,
    cells: Vec<Cell>,
    centers: Vec<Position>,
    bounds: Bounds,
    roam: Vec<RoamState>,
    /// Per-cell handoff admission queues (the `Queue` policy).
    queues: Vec<VecDeque<TerminalId>>,
    handoff: HandoffStats,
    handoff_in: Vec<u64>,
    handoff_out: Vec<u64>,
}

impl SystemWorld {
    /// Builds the system: `cells · (num_voice + num_data)` terminals with
    /// global ids, scattered uniformly over their starting cells, one MAC
    /// instance per cell.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid or has no
    /// [`SimConfig::system`] section.
    pub fn new(config: SimConfig, protocol: ProtocolKind) -> Self {
        config.validate();
        let system = config
            .system
            .expect("SystemWorld needs a SimConfig with a system section");
        let streams = RngStreams::new(config.seed);
        let clock = config.clock();
        let per_cell = config.num_voice + config.num_data;
        let centers = cell_centers(&system.layout, system.cells);
        let bounds = layout_bounds(&centers, system.layout.cell_radius_m());

        let mut terminals = Vec::with_capacity((system.cells * per_cell) as usize);
        let mut roam = Vec::with_capacity(terminals.capacity());
        let mut cells = Vec::with_capacity(system.cells as usize);
        let mut macs = Vec::with_capacity(system.cells as usize);
        for c in 0..system.cells {
            let mut members = Vec::with_capacity(per_cell as usize);
            for local in 0..per_cell {
                let idx = c * per_cell + local;
                let class = if local < config.num_voice {
                    TerminalClass::Voice
                } else {
                    TerminalClass::Data
                };
                let mut terminal = Terminal::new(
                    TerminalId(idx),
                    class,
                    clock,
                    config.voice_source,
                    config.data_source,
                    config.channel,
                    config.channel_mode,
                    &config.speed,
                    &streams,
                );
                if let Some(ramp) = &config.ramp {
                    if class == TerminalClass::Voice && local >= ramp.initial_voice {
                        terminal.set_active_from_frame(ramp.activation_frame);
                    }
                }
                let mut rng = streams.stream(StreamId::new(StreamId::DOMAIN_MOBILITY, idx));
                // Start uniformly inside the serving cell's disc.
                let radius = system.layout.cell_radius_m() * rng.next_f64().sqrt();
                let angle = std::f64::consts::TAU * rng.next_f64();
                let start = Position::new(
                    centers[c as usize].x_m + radius * angle.cos(),
                    centers[c as usize].y_m + radius * angle.sin(),
                );
                let motion =
                    RandomWaypoint::new(start, terminal.mobility().speed_kmh, &bounds, &mut rng);
                let shadow_db = system.path_loss.draw_site_shadow_db(&mut rng);
                let distance = motion.position().distance_m(centers[c as usize]);
                terminal.set_mean_snr_db(system.path_loss.mean_snr_db(distance) + shadow_db);
                terminals.push(terminal);
                roam.push(RoamState {
                    serving: c,
                    motion,
                    rng,
                    shadow_db,
                    retry_at: 0,
                    queued_for: None,
                    attempt_measured: false,
                });
                members.push(TerminalId(idx));
            }
            cells.push(Cell::new(&config, &streams, c, members));
            macs.push(protocol.build(&config));
        }

        let traffic = vec![FrameTraffic::default(); terminals.len()];
        let n_cells = system.cells as usize;
        SystemWorld {
            config,
            system,
            protocol,
            terminals,
            traffic,
            macs,
            cells,
            centers,
            bounds,
            roam,
            queues: vec![VecDeque::new(); n_cells],
            handoff: HandoffStats::default(),
            handoff_in: vec![0; n_cells],
            handoff_out: vec![0; n_cells],
        }
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of terminals attached to each cell right now (for inspection
    /// and the conservation tests).
    pub fn attached_per_cell(&self) -> Vec<usize> {
        self.cells.iter().map(Cell::member_count).collect()
    }

    /// Every terminal id currently attached somewhere, sorted (for the
    /// conservation tests).
    pub fn attached_ids_sorted(&self) -> Vec<TerminalId> {
        let mut ids: Vec<TerminalId> = self
            .cells
            .iter()
            .flat_map(|c| c.members().iter().copied())
            .collect();
        ids.sort();
        ids
    }

    /// Whether `cell` can admit one more terminal.
    fn has_room(&self, cell: u32) -> bool {
        let cap = self.system.handoff.cell_capacity;
        cap == 0 || (self.cells[cell as usize].member_count() as u32) < cap
    }

    /// Migrates terminal `i` from its serving cell to `target`: the old MAC
    /// forgets it, its buffered voice packets are lost to the hard-handoff
    /// link interruption, it draws a fresh site-shadowing offset for the new
    /// link, and its mean SNR is re-pointed at the new base station
    /// immediately (the new cell's MAC must never serve it through the old
    /// cell's path loss).
    ///
    /// `count_flow` gates the success/flow counters: it is the `measuring`
    /// flag of the frame that *recorded the attempt*, so
    /// attempts ≥ successes and inflow = outflow = successes hold exactly,
    /// even for attempts queued across the warm-up boundary.
    fn migrate(&mut self, i: usize, target: u32, count_flow: bool, measuring_drops: bool) {
        let id = TerminalId(i as u32);
        let old = self.roam[i].serving;
        debug_assert_ne!(old, target);
        self.cells[old as usize].detach(id);
        self.macs[old as usize].forget_terminal(id);
        let dropped = self.terminals[i].drop_buffered_voice() as u64;
        if measuring_drops {
            self.cells[old as usize].metrics_mut().voice.dropped_handoff += dropped;
        }
        if count_flow {
            self.handoff.successes += 1;
            self.handoff_out[old as usize] += 1;
            self.handoff_in[target as usize] += 1;
        }
        self.cells[target as usize].attach(id);
        {
            let roam = &mut self.roam[i];
            roam.serving = target;
            roam.queued_for = None;
            roam.shadow_db = self.system.path_loss.draw_site_shadow_db(&mut roam.rng);
        }
        let d = self.roam[i]
            .motion
            .position()
            .distance_m(self.centers[target as usize]);
        self.terminals[i]
            .set_mean_snr_db(self.system.path_loss.mean_snr_db(d) + self.roam[i].shadow_db);
    }

    /// Admits queued terminals into every cell that has room, oldest first.
    fn drain_admission_queues(&mut self, measuring_drops: bool) {
        for c in 0..self.cells.len() as u32 {
            while self.has_room(c) {
                let Some(id) = self.queues[c as usize].pop_front() else {
                    break;
                };
                let i = id.index() as usize;
                if self.roam[i].queued_for != Some(c) {
                    continue; // stale entry: the terminal roamed elsewhere
                }
                // The admission resolves the attempt recorded at enqueue
                // time; count it exactly when that attempt was counted.
                let counted = self.roam[i].attempt_measured;
                self.migrate(i, c, counted, measuring_drops);
            }
        }
    }

    /// One terminal's mobility step: motion, mean-SNR update, and (when a
    /// different base station has become closer by the hysteresis margin) a
    /// handoff attempt.
    fn roam_terminal(
        &mut self,
        i: usize,
        frame: u64,
        dt_secs: f64,
        measuring: bool,
        measuring_drops: bool,
    ) {
        let id = TerminalId(i as u32);
        {
            let roam = &mut self.roam[i];
            roam.motion.advance(dt_secs, &self.bounds, &mut roam.rng);
        }
        let pos = self.roam[i].motion.position();
        let serving = self.roam[i].serving;
        let d_serving = pos.distance_m(self.centers[serving as usize]);
        self.terminals[i]
            .set_mean_snr_db(self.system.path_loss.mean_snr_db(d_serving) + self.roam[i].shadow_db);

        // Nearest base station (Voronoi cell of the current position).
        let (nearest, d_nearest) = self
            .centers
            .iter()
            .enumerate()
            .map(|(c, &center)| (c as u32, pos.distance_m(center)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("a system has at least one cell");

        // Leaving a queue: the terminal roamed back into its serving cell's
        // Voronoi region (or towards a third cell) before being admitted.
        if let Some(waiting) = self.roam[i].queued_for {
            if nearest == serving || nearest != waiting {
                self.queues[waiting as usize].retain(|&t| t != id);
                self.roam[i].queued_for = None;
            }
        }

        if nearest == serving
            || d_serving - d_nearest <= self.system.handoff.hysteresis_m
            || frame < self.roam[i].retry_at
            || self.roam[i].queued_for == Some(nearest)
        {
            return;
        }

        if measuring {
            self.handoff.attempts += 1;
        }
        if self.has_room(nearest) {
            self.migrate(i, nearest, measuring, measuring_drops);
            return;
        }
        match self.system.handoff.admission {
            HandoffAdmission::Queue => {
                self.queues[nearest as usize].push_back(id);
                self.roam[i].queued_for = Some(nearest);
                self.roam[i].attempt_measured = measuring;
                if measuring {
                    self.handoff.queued += 1;
                }
            }
            HandoffAdmission::DropOnFull => {
                // The interrupted call of classical telephony: the target is
                // full, the packets in flight are lost, and the terminal
                // limps along on its old (distant) link until a retry.
                let dropped = self.terminals[i].drop_buffered_voice() as u64;
                if measuring_drops {
                    self.cells[serving as usize]
                        .metrics_mut()
                        .voice
                        .dropped_handoff += dropped;
                }
                if measuring {
                    self.handoff.failures += 1;
                }
                self.roam[i].retry_at = frame + self.system.handoff.retry_frames;
            }
        }
    }

    /// Executes the run and produces the system-level report: every cell's
    /// counters merged, plus the handoff statistics and per-cell breakdown.
    pub fn run(&mut self) -> RunReport {
        let total = self.config.total_frames();
        let drop_grace = self
            .config
            .clock()
            .frames_per(self.config.voice_source.deadline);
        let dt_secs = self.config.frame.frame_duration.as_secs_f64();

        for frame in 0..total {
            let measuring = frame >= self.config.warmup_frames;
            let measuring_drops = frame >= self.config.warmup_frames + drop_grace;

            // 1. Traffic and channel boundaries, attributed to serving cells.
            for i in 0..self.terminals.len() {
                let tr = self.terminals[i].begin_frame(frame);
                self.traffic[i] = tr;
                if measuring {
                    let metrics = self.cells[self.roam[i].serving as usize].metrics_mut();
                    if tr.voice_packet_generated {
                        metrics.voice.generated += 1;
                    }
                    if measuring_drops {
                        metrics.voice.dropped_deadline += tr.voice_packets_dropped as u64;
                    }
                    metrics.data.arrived += tr.data_packets_arrived as u64;
                }
            }

            // 2. Mobility, path loss and handoff.
            self.drain_admission_queues(measuring_drops);
            for i in 0..self.terminals.len() {
                self.roam_terminal(i, frame, dt_secs, measuring, measuring_drops);
            }

            // 3. Step every cell's MAC round-robin.
            for (cell, mac) in self.cells.iter_mut().zip(self.macs.iter_mut()) {
                cell.step(
                    frame,
                    &self.config,
                    measuring,
                    &self.traffic,
                    &mut self.terminals,
                    mac.as_mut(),
                );
            }
        }

        debug_assert_eq!(
            self.attached_ids_sorted().len(),
            self.terminals.len(),
            "handoff must conserve the terminal population"
        );

        let mut metrics = RunMetrics::default();
        for cell in &self.cells {
            metrics.merge(cell.metrics());
        }
        // Merging summed the per-cell frame counters; the system measured
        // `measured_frames` wall-clock frames, which is what the per-frame
        // throughput metrics normalise by.
        metrics.frames = self.config.measured_frames;
        metrics.handoff = self.handoff;
        metrics.per_cell = self
            .cells
            .iter()
            .enumerate()
            .map(|(c, cell)| CellCounters {
                cell: c as u32,
                voice: cell.metrics().voice,
                data: cell.metrics().data.clone(),
                slots: cell.metrics().slots,
                handoff_in: self.handoff_in[c],
                handoff_out: self.handoff_out[c],
            })
            .collect();

        RunReport {
            protocol: self.protocol,
            request_queue: self.config.request_queue,
            num_voice: self.config.num_voice,
            num_data: self.config.num_data,
            seed: self.config.seed,
            metrics,
        }
    }
}

/// The default path-loss profile reproduces the single-cell mean SNR when
/// flattened; re-exported here so tests and examples can build equivalence
/// configurations without reaching into the radio crate.
pub fn flat_path_loss(config: &SimConfig) -> PathLossConfig {
    PathLossConfig::flat(config.channel.mean_snr_db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HandoffAdmission, Layout, SystemConfig};
    use crate::scenario::Scenario;

    fn small_config() -> SimConfig {
        let mut cfg = SimConfig::quick_test();
        cfg.num_voice = 8;
        cfg.num_data = 2;
        cfg.warmup_frames = 200;
        cfg.measured_frames = 2_000;
        cfg
    }

    fn roaming_system(cells: u32) -> SystemConfig {
        let mut system = SystemConfig::new(cells);
        // Small, fast cells so a 5 s run sees plenty of boundary crossings.
        system.layout = Layout::Hex {
            cell_radius_m: 100.0,
        };
        system.handoff.hysteresis_m = 5.0;
        system
    }

    #[test]
    fn hex_centers_form_the_classic_seven_cell_cluster() {
        let layout = Layout::Hex {
            cell_radius_m: 100.0,
        };
        let centers = cell_centers(&layout, 7);
        assert_eq!(centers.len(), 7);
        assert_eq!(centers[0], Position::ORIGIN);
        let spacing = 3f64.sqrt() * 100.0;
        for c in &centers[1..] {
            let d = c.distance_m(Position::ORIGIN);
            assert!((d - spacing).abs() < 1e-9, "ring-1 distance {d}");
        }
        // All centers distinct.
        for (i, a) in centers.iter().enumerate() {
            for b in &centers[..i] {
                assert!(a.distance_m(*b) > spacing * 0.99);
            }
        }
        // A second ring lands farther out.
        let more = cell_centers(&layout, 19);
        assert_eq!(more.len(), 19);
        assert!(more[7..]
            .iter()
            .all(|c| c.distance_m(Position::ORIGIN) > spacing * 1.5));
    }

    #[test]
    fn line_centers_march_along_x() {
        let layout = Layout::Line {
            cell_radius_m: 200.0,
        };
        let centers = cell_centers(&layout, 3);
        let spacing = 3f64.sqrt() * 200.0;
        assert_eq!(centers.len(), 3);
        for (i, c) in centers.iter().enumerate() {
            assert_eq!(c.y_m, 0.0);
            assert!((c.x_m - i as f64 * spacing).abs() < 1e-9);
        }
        let b = layout_bounds(&centers, 200.0);
        assert!(b.contains(Position::new(-150.0, 150.0)));
        assert!(!b.contains(Position::new(-250.0, 0.0)));
    }

    #[test]
    fn single_cell_system_with_flat_path_loss_matches_the_legacy_run() {
        // The cells=1 equivalence: the system machinery on one cell with a
        // flat mean SNR reproduces the single-cell scenario's metrics
        // exactly (motion draws live in their own RNG domain).
        let mut cfg = small_config();
        let legacy = Scenario::new(cfg.clone()).run(ProtocolKind::Charisma);
        let mut system = SystemConfig::new(1);
        system.path_loss = flat_path_loss(&cfg);
        cfg.system = Some(system);
        let multi = Scenario::new(cfg).run(ProtocolKind::Charisma);
        assert_eq!(multi.metrics.voice, legacy.metrics.voice);
        assert_eq!(multi.metrics.data, legacy.metrics.data);
        assert_eq!(multi.metrics.contention, legacy.metrics.contention);
        assert_eq!(multi.metrics.slots, legacy.metrics.slots);
        assert_eq!(multi.metrics.frames, legacy.metrics.frames);
        assert_eq!(multi.metrics.handoff, HandoffStats::default());
        assert_eq!(multi.metrics.per_cell.len(), 1);
    }

    #[test]
    fn multicell_runs_are_deterministic() {
        let mut cfg = small_config();
        cfg.system = Some(roaming_system(3));
        let a = Scenario::new(cfg.clone()).run(ProtocolKind::DTdmaVr);
        let b = Scenario::new(cfg).run(ProtocolKind::DTdmaVr);
        assert_eq!(a, b);
    }

    #[test]
    fn handoff_conserves_the_terminal_population() {
        let mut cfg = small_config();
        cfg.system = Some(roaming_system(4));
        let mut world = SystemWorld::new(cfg.clone(), ProtocolKind::Charisma);
        let report = world.run();
        // No terminal lost or duplicated.
        let total = 4 * (cfg.num_voice + cfg.num_data) as usize;
        let ids = world.attached_ids_sorted();
        assert_eq!(ids.len(), total, "population size changed");
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index() as usize, i, "terminal set changed");
        }
        // Terminals actually moved between cells…
        assert!(
            report.metrics.handoff.successes > 0,
            "no handoffs in a 4-cell roaming run: {:?}",
            report.metrics.handoff
        );
        // …and the per-cell flow counters balance the successes.
        let inflow: u64 = report.metrics.per_cell.iter().map(|c| c.handoff_in).sum();
        let outflow: u64 = report.metrics.per_cell.iter().map(|c| c.handoff_out).sum();
        assert_eq!(inflow, outflow);
        assert_eq!(inflow, report.metrics.handoff.successes);
        // Voice accounting stays coherent: every cell's counters sum to the
        // system counters.
        let voice_sum: u64 = report
            .metrics
            .per_cell
            .iter()
            .map(|c| c.voice.generated)
            .sum();
        assert_eq!(voice_sum, report.metrics.voice.generated);
    }

    #[test]
    fn drop_on_full_blocks_and_loses_voice_while_queue_waits() {
        let mut cfg = small_config();
        cfg.measured_frames = 4_000;
        let mut system = roaming_system(3);
        system.layout = Layout::Line {
            cell_radius_m: 80.0,
        };
        // Tight capacity: exactly the initial population, so every crossing
        // into a full cell must be refused or queued.
        system.handoff.cell_capacity = cfg.num_voice + cfg.num_data;
        system.handoff.admission = HandoffAdmission::DropOnFull;
        cfg.system = Some(system);
        let dropped = Scenario::new(cfg.clone()).run(ProtocolKind::DTdmaFr);
        assert!(
            dropped.metrics.handoff.attempts > 0,
            "expected attempts: {:?}",
            dropped.metrics.handoff
        );
        assert!(
            dropped.metrics.handoff.failures > 0,
            "tight capacity must refuse some handoffs: {:?}",
            dropped.metrics.handoff
        );
        assert_eq!(dropped.metrics.handoff.queued, 0);

        let mut queued_cfg = cfg.clone();
        let mut queued_system = cfg.system.unwrap();
        queued_system.handoff.admission = HandoffAdmission::Queue;
        queued_cfg.system = Some(queued_system);
        let queued = Scenario::new(queued_cfg).run(ProtocolKind::DTdmaFr);
        assert!(
            queued.metrics.handoff.queued > 0,
            "queue policy must park some terminals: {:?}",
            queued.metrics.handoff
        );
        assert_eq!(queued.metrics.handoff.failures, 0);
    }

    #[test]
    fn distant_terminals_see_worse_mean_snr() {
        // Path loss must actually reach the channel: a 2-cell system where
        // everything else is equal shows lower mean SNR than the flat
        // single-cell model, because terminals are no longer all at the
        // (clamped) reference distance.
        let mut cfg = small_config();
        cfg.num_voice = 20;
        cfg.system = Some(SystemConfig::new(2));
        let multi = Scenario::new(cfg.clone()).run(ProtocolKind::DTdmaVr);
        cfg.system = None;
        let flat = Scenario::new(cfg).run(ProtocolKind::DTdmaVr);
        // Not a strict dominance claim — just that the runs genuinely
        // diverge and both stay sane.
        assert_ne!(multi.metrics.voice, flat.metrics.voice);
        assert!(multi.voice_loss_rate() <= 1.0);
    }
}
