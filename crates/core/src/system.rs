//! The multi-cell system layer: spatial mobility, path-loss SNR and handoff.
//!
//! The paper evaluates its protocols inside one cell; [`SystemWorld`]
//! generalises the platform to N cells on a hex or corridor layout
//! ([`Layout`]).  Each cell is an independent [`Cell`] — its own MAC
//! instance, CSI estimator, base-station stream (derived from the run seed
//! and the cell id, see [`charisma_des::StreamId::cell_entity`]), scratch
//! buffers and metrics.
//!
//! # The sharded wavefront
//!
//! Every frame advances through four phases.  Two are *serial* (they touch
//! cross-cell state) and two are *parallel over cells* (they touch only one
//! cell's members and its own accumulators), which is what lets city-scale
//! layouts step their cells on worker threads inside one sweep point:
//!
//! 1. **Queue drain** (serial): cells with room admit terminals parked in
//!    their handoff admission queues, oldest first.
//! 2. **Roam** (parallel per cell): each member's traffic sources advance
//!    (counters attributed to the serving cell), its random-waypoint motion
//!    steps, its mean SNR is re-pointed from the distance to its serving
//!    base station ([`PathLossConfig`]), and — when a different base station
//!    has become closer by the hysteresis margin — a handoff attempt is
//!    recorded in the cell's **mailbox**.  Nothing cross-cell is touched.
//! 3. **Merge** (serial): the mailboxes are applied in cell-id order —
//!    queue departures first-come, attempts admitted, queued or refused per
//!    [`crate::config::HandoffConfig`] — and the per-cell streaming
//!    statistics (occupancy, admission-queue length) are folded.
//! 4. **MAC step** (parallel per cell): each cell's MAC runs one uplink
//!    frame over its current membership.
//!
//! Both execution paths — the single-threaded round-robin loop and the
//! sharded loop with [`SystemConfig::threads`] workers — run exactly these
//! phases.  The parallel phases are order-independent across cells (every
//! random draw comes from a per-terminal or per-cell stream, every counter
//! lands in the acting cell's own accumulator) and the serial phases apply
//! cross-cell effects in deterministic cell-id order, so a run's report is
//! **byte-identical at any thread count**; the determinism suite pins this.
//!
//! Terminal ids are global (`cell · per_cell + local`), so a terminal keeps
//! its traffic, channel and contention streams across handoffs: migrating
//! changes *who serves it*, never *who it is*.  The old cell's MAC purges
//! its per-terminal state through [`UplinkMac::forget_terminal`].
//!
//! With `cells = 1` and a flat path-loss profile the system run reproduces
//! the single-cell scenario's metrics exactly (terminal motion draws from
//! its own dedicated RNG domain, so it never perturbs the other streams);
//! the equivalence is pinned by a test below.

use crate::cell::Cell;
use crate::columns::{ColumnsView, TerminalColumns};
use crate::config::{HandoffAdmission, Layout, SimConfig, SystemConfig};
use crate::protocols::{ProtocolKind, UplinkMac};
use crate::scenario::RunReport;
use crate::terminal::{FrameTraffic, Terminal};
use crate::world::TerminalTable;
use charisma_des::{RngStreams, StreamId, Xoshiro256StarStar};
use charisma_metrics::{CellCounters, HandoffStats, RunMetrics, RunningStat};
use charisma_radio::{Bounds, PathLossConfig, Position, RandomWaypoint};
use charisma_traffic::{TerminalClass, TerminalId};
use std::collections::VecDeque;
use std::sync::Barrier;

/// The cell centers of a layout, in cell-index order.
///
/// Hex layouts fill a spiral of rings around the center cell (cell 0 at the
/// origin, cells 1–6 the first ring, 7–18 the second, …); line layouts march
/// along the x axis.  Adjacent centers sit `√3 · radius` apart in both.
pub fn cell_centers(layout: &Layout, cells: u32) -> Vec<Position> {
    let spacing = 3f64.sqrt() * layout.cell_radius_m();
    match layout {
        Layout::Line { .. } => (0..cells)
            .map(|i| Position::new(i as f64 * spacing, 0.0))
            .collect(),
        Layout::Hex { .. } => {
            // Axial hex coordinates walked ring by ring (the classic spiral).
            let dirs: [(i64, i64); 6] = [(1, 0), (1, -1), (0, -1), (-1, 0), (-1, 1), (0, 1)];
            let mut axial: Vec<(i64, i64)> = vec![(0, 0)];
            let mut ring: i64 = 1;
            while (axial.len() as u32) < cells {
                let (mut q, mut r) = (-ring, ring); // dirs[4] scaled by `ring`
                for d in dirs {
                    for _ in 0..ring {
                        if (axial.len() as u32) < cells {
                            axial.push((q, r));
                        }
                        q += d.0;
                        r += d.1;
                    }
                }
                ring += 1;
            }
            axial
                .into_iter()
                .map(|(q, r)| {
                    Position::new(
                        spacing * (q as f64 + r as f64 / 2.0),
                        spacing * (3f64.sqrt() / 2.0) * r as f64,
                    )
                })
                .collect()
        }
    }
}

/// Number of cells in a hex city of `rings` complete rings around the center
/// cell: `1 + 3·rings·(rings + 1)` (0 rings → 1 cell, 1 → 7, 2 → 19, …,
/// 6 → 127).  Pass the result as the cell count of a [`Layout::Hex`] system
/// to get a fully filled hexagonal city grid — the shape the `city_scale`
/// campaign uses for its 100+-cell runs.
pub const fn hex_cells_for_rings(rings: u32) -> u32 {
    1 + 3 * rings * (rings + 1)
}

/// The motion bounds of a layout: the bounding box of the cell centers,
/// expanded by one cell radius on every side.  An empty center list yields
/// the single-cell box around the origin (rather than an unusable infinite
/// box).
pub fn layout_bounds(centers: &[Position], cell_radius_m: f64) -> Bounds {
    if centers.is_empty() {
        return Bounds::new(
            Position::new(-cell_radius_m, -cell_radius_m),
            Position::new(cell_radius_m, cell_radius_m),
        );
    }
    let mut min = Position::new(f64::INFINITY, f64::INFINITY);
    let mut max = Position::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for c in centers {
        min.x_m = min.x_m.min(c.x_m);
        min.y_m = min.y_m.min(c.y_m);
        max.x_m = max.x_m.max(c.x_m);
        max.y_m = max.y_m.max(c.y_m);
    }
    Bounds::new(
        Position::new(min.x_m - cell_radius_m, min.y_m - cell_radius_m),
        Position::new(max.x_m + cell_radius_m, max.y_m + cell_radius_m),
    )
}

/// Per-terminal roaming state.
#[derive(Debug)]
struct RoamState {
    /// Index of the serving cell.
    serving: u32,
    /// Random-waypoint motion.
    motion: RandomWaypoint,
    /// The terminal's mobility stream (waypoint targets, shadowing draws).
    rng: Xoshiro256StarStar,
    /// Site-shadowing offset (dB) of the current (terminal, cell) link.
    shadow_db: f64,
    /// No handoff attempts before this frame (drop-on-full retry damping).
    retry_at: u64,
    /// The cell whose admission queue the terminal currently waits in.
    queued_for: Option<u32>,
    /// Whether the queued attempt was recorded in the measured counters
    /// (false for attempts queued during warm-up), so a later admission is
    /// counted exactly when its attempt was.
    attempt_measured: bool,
}

/// A cross-cell effect recorded during the parallel roam phase and applied
/// in the serial merge (see the [module docs](self)).
#[derive(Debug, Clone, Copy)]
enum RoamEvent {
    /// The terminal roamed out of the region it was queued for; remove it
    /// from `waiting`'s admission queue.
    LeaveQueue {
        /// The departing terminal.
        id: TerminalId,
        /// The cell whose queue it was parked in.
        waiting: u32,
    },
    /// A handoff attempt towards `target`, to be admitted, queued or
    /// refused by the merge.
    Attempt {
        /// The attempting terminal.
        id: TerminalId,
        /// The cell that has become nearest.
        target: u32,
        /// Whether the attempt falls inside the measured interval (gates
        /// every counter this attempt ever touches, including a queued
        /// admission resolved frames later).
        measured: bool,
    },
}

/// One cell's per-frame mailbox: the cross-cell effects its members
/// produced during the parallel roam phase, in member order.
#[derive(Debug, Default)]
struct CellMailbox {
    events: Vec<RoamEvent>,
}

/// A multi-cell run, ready to execute (see the [module docs](self)).
pub struct SystemWorld {
    config: SimConfig,
    system: SystemConfig,
    protocol: ProtocolKind,
    terminals: TerminalColumns,
    traffic: Vec<FrameTraffic>,
    macs: Vec<Box<dyn UplinkMac>>,
    cells: Vec<Cell>,
    centers: Vec<Position>,
    bounds: Bounds,
    roam: Vec<RoamState>,
    /// Per-cell handoff mailboxes, reused frame after frame.
    mailboxes: Vec<CellMailbox>,
    /// Per-cell handoff admission queues (the `Queue` policy).
    queues: Vec<VecDeque<TerminalId>>,
    handoff: HandoffStats,
    handoff_in: Vec<u64>,
    handoff_out: Vec<u64>,
    /// Streaming per-cell occupancy, folded once per measured frame.
    occupancy: Vec<RunningStat>,
    /// Streaming per-cell admission-queue length, folded once per measured
    /// frame.
    queue_len: Vec<RunningStat>,
}

impl SystemWorld {
    /// Builds the system: `cells · (num_voice + num_data)` terminals with
    /// global ids, scattered uniformly over their starting cells, one MAC
    /// instance per cell.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid or has no
    /// [`SimConfig::system`] section.
    pub fn new(config: SimConfig, protocol: ProtocolKind) -> Self {
        config.validate();
        let system = config
            .system
            .expect("SystemWorld needs a SimConfig with a system section");
        let streams = RngStreams::new(config.seed);
        let clock = config.clock();
        let per_cell = config.num_voice + config.num_data;
        let centers = cell_centers(&system.layout, system.cells);
        let bounds = layout_bounds(&centers, system.layout.cell_radius_m());

        // The DOMAIN_PROTOCOL entity space is split between terminals (upper
        // half, mirrored indices) and cells (counting down from u32::MAX);
        // the sub-ranges stay disjoint while population + cells < 2^31 (see
        // the stream-derivation table in ARCHITECTURE.md).
        debug_assert!(
            system.cells as u64 * per_cell as u64 + system.cells as u64 <= 0x8000_0000,
            "terminal population + cell count must stay below 2^31 to keep \
             DOMAIN_PROTOCOL speed streams and cell streams disjoint"
        );
        let mut terminals = TerminalColumns::with_capacity(
            clock,
            config.channel_mode,
            (system.cells * per_cell) as usize,
        );
        let mut roam = Vec::with_capacity((system.cells * per_cell) as usize);
        let mut cells = Vec::with_capacity(system.cells as usize);
        let mut macs = Vec::with_capacity(system.cells as usize);
        for c in 0..system.cells {
            let mut members = Vec::with_capacity(per_cell as usize);
            for local in 0..per_cell {
                let idx = c * per_cell + local;
                let class = if local < config.num_voice {
                    TerminalClass::Voice
                } else {
                    TerminalClass::Data
                };
                let mut terminal = Terminal::new(
                    TerminalId(idx),
                    class,
                    clock,
                    config.voice_source,
                    config.data_source,
                    config.channel,
                    config.channel_mode,
                    &config.speed,
                    &streams,
                );
                if let Some(ramp) = &config.ramp {
                    if class == TerminalClass::Voice && local >= ramp.initial_voice {
                        terminal.set_active_from_frame(ramp.activation_frame);
                    }
                }
                let mut rng = streams.stream(StreamId::new(StreamId::DOMAIN_MOBILITY, idx));
                // Start uniformly inside the serving cell's disc.
                let radius = system.layout.cell_radius_m() * rng.next_f64().sqrt();
                let angle = std::f64::consts::TAU * rng.next_f64();
                let start = Position::new(
                    centers[c as usize].x_m + radius * angle.cos(),
                    centers[c as usize].y_m + radius * angle.sin(),
                );
                let motion =
                    RandomWaypoint::new(start, terminal.mobility().speed_kmh, &bounds, &mut rng);
                let shadow_db = system.path_loss.draw_site_shadow_db(&mut rng);
                let distance = motion.position().distance_m(centers[c as usize]);
                terminal.set_mean_snr_db(system.path_loss.mean_snr_db(distance) + shadow_db);
                // Global ids ascend across the cell loop, matching the
                // columnar store's push-in-index-order contract.
                terminals.push(terminal);
                roam.push(RoamState {
                    serving: c,
                    motion,
                    rng,
                    shadow_db,
                    retry_at: 0,
                    queued_for: None,
                    attempt_measured: false,
                });
                members.push(TerminalId(idx));
            }
            cells.push(Cell::new(&config, &streams, c, members));
            macs.push(protocol.build(&config));
        }

        let traffic = vec![FrameTraffic::default(); terminals.len()];
        let n_cells = system.cells as usize;
        SystemWorld {
            config,
            system,
            protocol,
            terminals,
            traffic,
            macs,
            cells,
            centers,
            bounds,
            roam,
            mailboxes: (0..n_cells).map(|_| CellMailbox::default()).collect(),
            queues: vec![VecDeque::new(); n_cells],
            handoff: HandoffStats::default(),
            handoff_in: vec![0; n_cells],
            handoff_out: vec![0; n_cells],
            occupancy: vec![RunningStat::new(); n_cells],
            queue_len: vec![RunningStat::new(); n_cells],
        }
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of terminals attached to each cell right now (for inspection
    /// and the conservation tests).
    pub fn attached_per_cell(&self) -> Vec<usize> {
        self.cells.iter().map(Cell::member_count).collect()
    }

    /// Every terminal id currently attached somewhere, sorted (for the
    /// conservation tests).
    pub fn attached_ids_sorted(&self) -> Vec<TerminalId> {
        let mut ids: Vec<TerminalId> = self
            .cells
            .iter()
            .flat_map(|c| c.members().iter().copied())
            .collect();
        ids.sort();
        ids
    }

    /// Executes the run and produces the system-level report: every cell's
    /// counters merged, plus the handoff statistics and per-cell breakdown.
    ///
    /// With [`SystemConfig::threads`] ≤ 1 the frame phases run round-robin
    /// on the calling thread; otherwise cells are dealt to that many worker
    /// threads.  Both paths execute identical phase code in an identical
    /// order of effect, so the report — and every CSV rendered from it — is
    /// byte-identical regardless of the thread count.
    pub fn run(&mut self) -> RunReport {
        let total = self.config.total_frames();
        let warmup = self.config.warmup_frames;
        let drop_grace = self
            .config
            .clock()
            .frames_per(self.config.voice_source.deadline);
        let n_cells = self.cells.len();
        let threads = (self.system.threads.max(1) as usize).min(n_cells);

        {
            let n_terminals = self.terminals.len();
            let grid = ShardGrid {
                cells: self.cells.as_mut_ptr(),
                macs: self.macs.as_mut_ptr(),
                roam: self.roam.as_mut_ptr(),
                columns: self.terminals.view(),
                traffic: self.traffic.as_mut_ptr(),
                mailboxes: self.mailboxes.as_mut_ptr(),
                n_cells,
                n_terminals,
            };
            let ctx = FrameCtx {
                config: &self.config,
                system: &self.system,
                centers: &self.centers,
                bounds: &self.bounds,
                dt_secs: self.config.frame.frame_duration.as_secs_f64(),
            };
            let mut serial = SerialState {
                queues: &mut self.queues,
                handoff: &mut self.handoff,
                handoff_in: &mut self.handoff_in,
                handoff_out: &mut self.handoff_out,
                occupancy: &mut self.occupancy,
                queue_len: &mut self.queue_len,
            };

            if threads <= 1 {
                for frame in 0..total {
                    let measuring = frame >= warmup;
                    let measuring_drops = frame >= warmup + drop_grace;
                    // SAFETY: a single thread executes every phase, so each
                    // one has exclusive access to the whole grid.
                    unsafe {
                        drain_admission_queues(&grid, &mut serial, &ctx, measuring_drops);
                        for c in 0..n_cells {
                            roam_phase(&grid, &ctx, c, frame, measuring, measuring_drops);
                        }
                        merge_mailboxes(
                            &grid,
                            &mut serial,
                            &ctx,
                            frame,
                            measuring,
                            measuring_drops,
                        );
                        for c in 0..n_cells {
                            mac_phase(&grid, &ctx, c, frame, measuring);
                        }
                    }
                }
            } else {
                run_sharded(&grid, &mut serial, &ctx, threads, total, warmup, drop_grace);
            }
        }

        debug_assert_eq!(
            self.attached_ids_sorted().len(),
            self.terminals.len(),
            "handoff must conserve the terminal population"
        );

        let mut metrics = RunMetrics::default();
        for cell in &self.cells {
            metrics.merge(cell.metrics());
        }
        // Merging summed the per-cell frame counters; the system measured
        // `measured_frames` wall-clock frames, which is what the per-frame
        // throughput metrics normalise by.
        metrics.frames = self.config.measured_frames;
        metrics.handoff = self.handoff;
        metrics.per_cell = self
            .cells
            .iter()
            .enumerate()
            .map(|(c, cell)| CellCounters {
                cell: c as u32,
                voice: cell.metrics().voice,
                data: cell.metrics().data.clone(),
                slots: cell.metrics().slots,
                handoff_in: self.handoff_in[c],
                handoff_out: self.handoff_out[c],
                occupancy: self.occupancy[c],
                admission_queue: self.queue_len[c],
            })
            .collect();

        RunReport {
            protocol: self.protocol,
            request_queue: self.config.request_queue,
            num_voice: self.config.num_voice,
            num_data: self.config.num_data,
            seed: self.config.seed,
            metrics,
        }
    }
}

/// Immutable per-run inputs shared by every frame phase.
struct FrameCtx<'a> {
    config: &'a SimConfig,
    system: &'a SystemConfig,
    centers: &'a [Position],
    bounds: &'a Bounds,
    dt_secs: f64,
}

/// The cross-cell state only the serial phases (queue drain, merge) touch.
/// Worker threads never see it, so it needs no synchronisation at all.
struct SerialState<'a> {
    queues: &'a mut [VecDeque<TerminalId>],
    handoff: &'a mut HandoffStats,
    handoff_in: &'a mut [u64],
    handoff_out: &'a mut [u64],
    occupancy: &'a mut [RunningStat],
    queue_len: &'a mut [RunningStat],
}

/// Raw per-element view over the shard state, shared by every thread of a
/// run.
///
/// Holding plain `&mut` slices here would make the two parallel phases
/// instant undefined behaviour (each worker needs mutable access into the
/// same vectors), so the grid stores base pointers — and, for the terminal
/// population, the bounds-checked column view [`ColumnsView`] over the
/// structure-of-arrays store — and materialises per-element references on
/// demand.  Soundness rests on two invariants, both enforced by the frame
/// structure:
///
/// * **spatial**: during a parallel phase, worker `w` only touches cells
///   `c ≡ w (mod threads)` and their members, and the cell membership is a
///   partition of the terminals — disjoint elements, no overlap;
/// * **temporal**: the serial phases run strictly between barriers while
///   every worker is parked, so they have the whole grid to themselves.
struct ShardGrid {
    cells: *mut Cell,
    macs: *mut Box<dyn UplinkMac>,
    roam: *mut RoamState,
    /// Bounds-checked per-column view over the global terminal store; its
    /// own safety contract is exactly the partition discipline above.
    columns: ColumnsView,
    traffic: *mut FrameTraffic,
    mailboxes: *mut CellMailbox,
    n_cells: usize,
    n_terminals: usize,
}

// SAFETY: the grid is a bundle of pointers into state owned by the
// `SystemWorld` that outlives the scoped worker threads; every pointee type
// is `Send` (asserted below, with the terminal column elements asserted by
// `ColumnsView`'s own const block), and access discipline is documented on
// the struct.
unsafe impl Send for ShardGrid {}
unsafe impl Sync for ShardGrid {}

// Everything the worker threads reach through the grid must be `Send`
// (`Box<dyn UplinkMac>` is, because the trait has a `Send` supertrait).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Cell>();
    assert_send::<Box<dyn UplinkMac>>();
    assert_send::<RoamState>();
    assert_send::<ColumnsView>();
    assert_send::<FrameTraffic>();
    assert_send::<CellMailbox>();
};

// Returning `&mut` from `&self` is the point of the grid: exclusivity is
// guaranteed by the phase discipline (see the struct docs), not by the
// borrow checker.
#[allow(clippy::mut_from_ref)]
impl ShardGrid {
    /// # Safety
    ///
    /// The caller must hold exclusive access to cell `c` under the grid's
    /// access discipline and must not overlap this reference with another
    /// one to the same cell.
    unsafe fn cell(&self, c: usize) -> &mut Cell {
        debug_assert!(c < self.n_cells);
        &mut *self.cells.add(c)
    }

    /// # Safety
    ///
    /// As [`ShardGrid::cell`], for cell `c`'s MAC instance.
    unsafe fn mac(&self, c: usize) -> &mut Box<dyn UplinkMac> {
        debug_assert!(c < self.n_cells);
        &mut *self.macs.add(c)
    }

    /// # Safety
    ///
    /// As [`ShardGrid::cell`], for cell `c`'s mailbox.
    unsafe fn mailbox(&self, c: usize) -> &mut CellMailbox {
        debug_assert!(c < self.n_cells);
        &mut *self.mailboxes.add(c)
    }

    /// # Safety
    ///
    /// The caller must hold exclusive access to terminal `i`'s roam state
    /// (`i` must belong to a cell the caller owns during a parallel phase).
    unsafe fn roam(&self, i: usize) -> &mut RoamState {
        debug_assert!(i < self.n_terminals);
        &mut *self.roam.add(i)
    }

    /// # Safety
    ///
    /// As [`ShardGrid::roam`], for the terminal's traffic slot.
    unsafe fn traffic_mut(&self, i: usize) -> &mut FrameTraffic {
        debug_assert!(i < self.n_terminals);
        &mut *self.traffic.add(i)
    }

    /// # Safety
    ///
    /// Only valid while no thread writes any traffic slot (the MAC phase:
    /// traffic was fully written in the roam phase and is read-only until
    /// the next frame).
    unsafe fn traffic_slice(&self) -> &[FrameTraffic] {
        std::slice::from_raw_parts(self.traffic, self.n_terminals)
    }
}

/// Whether `cell` can admit one more terminal.
///
/// # Safety
///
/// Serial phases only (reads membership of an arbitrary cell).
unsafe fn has_room(grid: &ShardGrid, ctx: &FrameCtx<'_>, cell: u32) -> bool {
    let cap = ctx.system.handoff.cell_capacity;
    cap == 0 || (grid.cell(cell as usize).member_count() as u32) < cap
}

/// Migrates terminal `i` from its serving cell to `target`: the old MAC
/// forgets it, its buffered voice packets are lost to the hard-handoff link
/// interruption, it draws a fresh site-shadowing offset for the new link,
/// and its mean SNR is re-pointed at the new base station immediately (the
/// new cell's MAC must never serve it through the old cell's path loss).
///
/// `count_flow` gates the success/flow counters: it is the `measuring` flag
/// of the frame that *recorded the attempt*, so attempts ≥ successes and
/// inflow = outflow = successes hold exactly, even for attempts queued
/// across the warm-up boundary.
///
/// # Safety
///
/// Serial phases only (touches two cells and the shared counters).
unsafe fn migrate(
    grid: &ShardGrid,
    serial: &mut SerialState<'_>,
    ctx: &FrameCtx<'_>,
    i: usize,
    target: u32,
    count_flow: bool,
    measuring_drops: bool,
) {
    let id = TerminalId(i as u32);
    let old = grid.roam(i).serving;
    debug_assert_ne!(old, target);
    grid.cell(old as usize).detach(id);
    grid.mac(old as usize).forget_terminal(id);
    let dropped = grid.columns.drop_buffered_voice(i) as u64;
    if measuring_drops {
        grid.cell(old as usize).metrics_mut().voice.dropped_handoff += dropped;
    }
    if count_flow {
        serial.handoff.successes += 1;
        serial.handoff_out[old as usize] += 1;
        serial.handoff_in[target as usize] += 1;
    }
    grid.cell(target as usize).attach(id);
    let roam = grid.roam(i);
    roam.serving = target;
    roam.queued_for = None;
    roam.shadow_db = ctx.system.path_loss.draw_site_shadow_db(&mut roam.rng);
    let d = roam
        .motion
        .position()
        .distance_m(ctx.centers[target as usize]);
    let snr_db = ctx.system.path_loss.mean_snr_db(d) + roam.shadow_db;
    grid.columns.set_mean_snr_db(i, snr_db);
}

/// Phase 1: admits queued terminals into every cell that has room, oldest
/// first, in cell-id order.
///
/// # Safety
///
/// Serial phases only.
unsafe fn drain_admission_queues(
    grid: &ShardGrid,
    serial: &mut SerialState<'_>,
    ctx: &FrameCtx<'_>,
    measuring_drops: bool,
) {
    for c in 0..grid.n_cells as u32 {
        while has_room(grid, ctx, c) {
            let Some(id) = serial.queues[c as usize].pop_front() else {
                break;
            };
            let i = id.index() as usize;
            if grid.roam(i).queued_for != Some(c) {
                continue; // stale entry: the terminal roamed elsewhere
            }
            // The admission resolves the attempt recorded at enqueue time;
            // count it exactly when that attempt was counted.
            let counted = grid.roam(i).attempt_measured;
            migrate(grid, serial, ctx, i, c, counted, measuring_drops);
        }
    }
}

/// Phase 2 for one cell: traffic boundaries (counters attributed to this
/// cell), mobility, path-loss SNR re-pointing, and handoff decisions
/// recorded into this cell's mailbox.  Touches only this cell's state and
/// its members' per-terminal state, so distinct cells may run concurrently.
///
/// # Safety
///
/// The caller must own cell `c` for the duration of the parallel phase (no
/// other thread may access cell `c` or its members), and no serial phase
/// may run concurrently.
unsafe fn roam_phase(
    grid: &ShardGrid,
    ctx: &FrameCtx<'_>,
    c: usize,
    frame: u64,
    measuring: bool,
    measuring_drops: bool,
) {
    let cell = grid.cell(c);
    let mailbox = grid.mailbox(c);
    mailbox.events.clear();
    // Membership is frozen during this phase (migrations happen in the
    // serial merge), so indexed iteration is stable.
    for k in 0..cell.member_count() {
        let id = cell.members()[k];
        let i = id.index() as usize;

        // Traffic and channel boundary, attributed to the serving cell.
        let tr = grid.columns.begin_frame(i, frame);
        *grid.traffic_mut(i) = tr;
        if measuring {
            let metrics = cell.metrics_mut();
            if tr.voice_packet_generated {
                metrics.voice.generated += 1;
            }
            if measuring_drops {
                metrics.voice.dropped_deadline += tr.voice_packets_dropped as u64;
            }
            metrics.data.arrived += tr.data_packets_arrived as u64;
        }

        // Mobility and path loss.
        let roam = grid.roam(i);
        debug_assert_eq!(roam.serving, c as u32);
        roam.motion.advance(ctx.dt_secs, ctx.bounds, &mut roam.rng);
        let pos = roam.motion.position();
        let d_serving = pos.distance_m(ctx.centers[c]);
        let snr_db = ctx.system.path_loss.mean_snr_db(d_serving) + roam.shadow_db;
        grid.columns.set_mean_snr_db(i, snr_db);

        // Nearest base station (Voronoi cell of the current position).
        let (nearest, d_nearest) = ctx
            .centers
            .iter()
            .enumerate()
            .map(|(cc, &center)| (cc as u32, pos.distance_m(center)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("a system has at least one cell");

        // Leaving a queue: the terminal roamed back into its serving cell's
        // Voronoi region (or towards a third cell) before being admitted.
        // The local flag flips now; the shared queue entry is removed by
        // the merge.
        if let Some(waiting) = roam.queued_for {
            if nearest == c as u32 || nearest != waiting {
                roam.queued_for = None;
                mailbox.events.push(RoamEvent::LeaveQueue { id, waiting });
            }
        }

        if nearest == c as u32
            || d_serving - d_nearest <= ctx.system.handoff.hysteresis_m
            || frame < roam.retry_at
            || roam.queued_for == Some(nearest)
        {
            continue;
        }
        mailbox.events.push(RoamEvent::Attempt {
            id,
            target: nearest,
            measured: measuring,
        });
    }
}

/// Phase 3: applies every mailbox in cell-id order (events in member order
/// within a cell), then folds the per-frame streaming statistics.  The
/// apply order is a pure function of the membership state at the start of
/// the frame, so it does not depend on which worker produced which mailbox
/// when — the heart of the byte-determinism argument.
///
/// # Safety
///
/// Serial phases only.
unsafe fn merge_mailboxes(
    grid: &ShardGrid,
    serial: &mut SerialState<'_>,
    ctx: &FrameCtx<'_>,
    frame: u64,
    measuring: bool,
    measuring_drops: bool,
) {
    for c in 0..grid.n_cells {
        // Detach the event buffer so applying events can re-enter the grid.
        let mut events = std::mem::take(&mut grid.mailbox(c).events);
        for event in &events {
            match *event {
                RoamEvent::LeaveQueue { id, waiting } => {
                    serial.queues[waiting as usize].retain(|&t| t != id);
                }
                RoamEvent::Attempt {
                    id,
                    target,
                    measured,
                } => {
                    let i = id.index() as usize;
                    if measured {
                        serial.handoff.attempts += 1;
                    }
                    if has_room(grid, ctx, target) {
                        migrate(grid, serial, ctx, i, target, measured, measuring_drops);
                        continue;
                    }
                    match ctx.system.handoff.admission {
                        HandoffAdmission::Queue => {
                            serial.queues[target as usize].push_back(id);
                            let roam = grid.roam(i);
                            roam.queued_for = Some(target);
                            roam.attempt_measured = measured;
                            if measured {
                                serial.handoff.queued += 1;
                            }
                        }
                        HandoffAdmission::DropOnFull => {
                            // The interrupted call of classical telephony:
                            // the target is full, the packets in flight are
                            // lost, and the terminal limps along on its old
                            // (distant) link until a retry.
                            let dropped = grid.columns.drop_buffered_voice(i) as u64;
                            let serving = grid.roam(i).serving;
                            if measuring_drops {
                                grid.cell(serving as usize)
                                    .metrics_mut()
                                    .voice
                                    .dropped_handoff += dropped;
                            }
                            if measured {
                                serial.handoff.failures += 1;
                            }
                            grid.roam(i).retry_at = frame + ctx.system.handoff.retry_frames;
                        }
                    }
                }
            }
        }
        // Return the buffer (cleared) so its capacity is reused next frame.
        events.clear();
        grid.mailbox(c).events = events;
    }

    // Fold the streaming per-cell statistics at the post-merge membership —
    // O(cells) per frame, never an O(terminals) end-of-run scan.
    if measuring {
        for c in 0..grid.n_cells {
            serial.occupancy[c].push(grid.cell(c).member_count() as f64);
            serial.queue_len[c].push(serial.queues[c].len() as f64);
        }
    }
}

/// Phase 4 for one cell: one MAC uplink frame over the cell's membership.
///
/// # Safety
///
/// As [`roam_phase`]: the caller must own cell `c`, and the MAC may touch
/// the global terminal columns / `traffic` table only at its member indices
/// (which [`FrameWorld`](crate::world::FrameWorld) accessors guarantee —
/// protocols only ever reach terminals through member ids).  The table
/// inherits the column view's bounds checks, so a protocol bug that escapes
/// its membership indexes out loudly instead of racing.
unsafe fn mac_phase(grid: &ShardGrid, ctx: &FrameCtx<'_>, c: usize, frame: u64, measuring: bool) {
    let cell = grid.cell(c);
    let mac = grid.mac(c);
    let table = TerminalTable::from_view(grid.columns);
    cell.step(
        frame,
        ctx.config,
        measuring,
        grid.traffic_slice(),
        table,
        mac.as_mut(),
    );
}

/// The sharded frame loop: `threads` workers own cell subsets (dealt
/// round-robin by id) and execute the parallel phases; the coordinating
/// thread executes the serial phases in the windows between barriers.
///
/// Four barrier waits bound each frame:
///
/// ```text
/// coordinator:  drain ──┐            ┌── merge ──┐           ┌── (next frame)
///                       ▼            │           ▼           │
/// barrier:           [w1]───[w2]─────┘        [w3]───[w4]────┘
///                       ▲            ▲           ▲           ▲
/// workers:              └── roam ────┘           └── MACs ───┘
/// ```
///
/// Every thread derives the frame flags from its own loop counter, so the
/// only shared mutable state is the grid itself under the documented phase
/// discipline.
fn run_sharded(
    grid: &ShardGrid,
    serial: &mut SerialState<'_>,
    ctx: &FrameCtx<'_>,
    threads: usize,
    total: u64,
    warmup: u64,
    drop_grace: u64,
) {
    let barrier = Barrier::new(threads + 1);
    std::thread::scope(|scope| {
        for w in 0..threads {
            let barrier = &barrier;
            scope.spawn(move || {
                for frame in 0..total {
                    let measuring = frame >= warmup;
                    let measuring_drops = frame >= warmup + drop_grace;
                    barrier.wait(); // queue drain done
                    for c in (w..grid.n_cells).step_by(threads) {
                        // SAFETY: worker `w` exclusively owns every cell
                        // `c ≡ w (mod threads)`; memberships are disjoint.
                        unsafe { roam_phase(grid, ctx, c, frame, measuring, measuring_drops) };
                    }
                    barrier.wait(); // roam done everywhere
                    barrier.wait(); // merge done
                    for c in (w..grid.n_cells).step_by(threads) {
                        // SAFETY: as above; the merge finished re-shuffling
                        // memberships before the barrier released us.
                        unsafe { mac_phase(grid, ctx, c, frame, measuring) };
                    }
                    barrier.wait(); // frame complete
                }
            });
        }
        for frame in 0..total {
            let measuring = frame >= warmup;
            let measuring_drops = frame >= warmup + drop_grace;
            // SAFETY: every worker is parked on a barrier while the serial
            // phases run, so they have exclusive access to the grid.
            unsafe { drain_admission_queues(grid, serial, ctx, measuring_drops) };
            barrier.wait(); // release the workers into the roam phase
            barrier.wait(); // wait for every mailbox
            unsafe { merge_mailboxes(grid, serial, ctx, frame, measuring, measuring_drops) };
            barrier.wait(); // release the workers into the MAC phase
            barrier.wait(); // frame complete
        }
    });
}

/// The default path-loss profile reproduces the single-cell mean SNR when
/// flattened; re-exported here so tests and examples can build equivalence
/// configurations without reaching into the radio crate.
pub fn flat_path_loss(config: &SimConfig) -> PathLossConfig {
    PathLossConfig::flat(config.channel.mean_snr_db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HandoffAdmission, Layout, SystemConfig};
    use crate::scenario::Scenario;

    fn small_config() -> SimConfig {
        let mut cfg = SimConfig::quick_test();
        cfg.num_voice = 8;
        cfg.num_data = 2;
        cfg.warmup_frames = 200;
        cfg.measured_frames = 2_000;
        cfg
    }

    fn roaming_system(cells: u32) -> SystemConfig {
        let mut system = SystemConfig::new(cells);
        // Small, fast cells so a 5 s run sees plenty of boundary crossings.
        system.layout = Layout::Hex {
            cell_radius_m: 100.0,
        };
        system.handoff.hysteresis_m = 5.0;
        system
    }

    #[test]
    fn hex_centers_form_the_classic_seven_cell_cluster() {
        let layout = Layout::Hex {
            cell_radius_m: 100.0,
        };
        let centers = cell_centers(&layout, 7);
        assert_eq!(centers.len(), 7);
        assert_eq!(centers[0], Position::ORIGIN);
        let spacing = 3f64.sqrt() * 100.0;
        for c in &centers[1..] {
            let d = c.distance_m(Position::ORIGIN);
            assert!((d - spacing).abs() < 1e-9, "ring-1 distance {d}");
        }
        // All centers distinct.
        for (i, a) in centers.iter().enumerate() {
            for b in &centers[..i] {
                assert!(a.distance_m(*b) > spacing * 0.99);
            }
        }
        // A second ring lands farther out.
        let more = cell_centers(&layout, 19);
        assert_eq!(more.len(), 19);
        assert!(more[7..]
            .iter()
            .all(|c| c.distance_m(Position::ORIGIN) > spacing * 1.5));
    }

    #[test]
    fn hex_city_ring_counts_fill_complete_rings() {
        assert_eq!(hex_cells_for_rings(0), 1);
        assert_eq!(hex_cells_for_rings(1), 7);
        assert_eq!(hex_cells_for_rings(2), 19);
        assert_eq!(hex_cells_for_rings(6), 127);
        // A city grid of complete rings has every center within `rings`
        // hex steps of the origin: the outermost ring sits at exactly
        // `rings · spacing` along the axial directions.
        let layout = Layout::Hex {
            cell_radius_m: 100.0,
        };
        let cells = hex_cells_for_rings(6);
        let centers = cell_centers(&layout, cells);
        assert_eq!(centers.len(), 127);
        let spacing = 3f64.sqrt() * 100.0;
        let max_d = centers
            .iter()
            .map(|c| c.distance_m(Position::ORIGIN))
            .fold(0.0f64, f64::max);
        assert!(
            max_d <= 6.0 * spacing + 1e-9,
            "outermost center at {max_d}, expected ≤ {}",
            6.0 * spacing
        );
    }

    #[test]
    fn line_centers_march_along_x() {
        let layout = Layout::Line {
            cell_radius_m: 200.0,
        };
        let centers = cell_centers(&layout, 3);
        let spacing = 3f64.sqrt() * 200.0;
        assert_eq!(centers.len(), 3);
        for (i, c) in centers.iter().enumerate() {
            assert_eq!(c.y_m, 0.0);
            assert!((c.x_m - i as f64 * spacing).abs() < 1e-9);
        }
        let b = layout_bounds(&centers, 200.0);
        assert!(b.contains(Position::new(-150.0, 150.0)));
        assert!(!b.contains(Position::new(-250.0, 0.0)));
    }

    #[test]
    fn empty_center_list_yields_finite_bounds() {
        // The degenerate input used to produce an inverted infinite box;
        // now it falls back to a single-cell box around the origin.
        let b = layout_bounds(&[], 150.0);
        assert!(b.contains(Position::ORIGIN));
        assert!(b.contains(Position::new(149.0, -149.0)));
        assert!(!b.contains(Position::new(151.0, 0.0)));
    }

    #[test]
    fn single_cell_system_with_flat_path_loss_matches_the_legacy_run() {
        // The cells=1 equivalence: the system machinery on one cell with a
        // flat mean SNR reproduces the single-cell scenario's metrics
        // exactly (motion draws live in their own RNG domain).
        let mut cfg = small_config();
        let legacy = Scenario::new(cfg.clone()).run(ProtocolKind::Charisma);
        let mut system = SystemConfig::new(1);
        system.path_loss = flat_path_loss(&cfg);
        cfg.system = Some(system);
        let multi = Scenario::new(cfg).run(ProtocolKind::Charisma);
        assert_eq!(multi.metrics.voice, legacy.metrics.voice);
        assert_eq!(multi.metrics.data, legacy.metrics.data);
        assert_eq!(multi.metrics.contention, legacy.metrics.contention);
        assert_eq!(multi.metrics.slots, legacy.metrics.slots);
        assert_eq!(multi.metrics.frames, legacy.metrics.frames);
        assert_eq!(multi.metrics.handoff, HandoffStats::default());
        assert_eq!(multi.metrics.per_cell.len(), 1);
    }

    #[test]
    fn multicell_runs_are_deterministic() {
        let mut cfg = small_config();
        cfg.system = Some(roaming_system(3));
        let a = Scenario::new(cfg.clone()).run(ProtocolKind::DTdmaVr);
        let b = Scenario::new(cfg).run(ProtocolKind::DTdmaVr);
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_run_matches_round_robin_exactly() {
        // The tentpole property at the unit level: the full RunReport —
        // every counter, every per-cell Welford statistic — is identical
        // between the round-robin path and the sharded path at several
        // thread counts, including a count that does not divide the cells.
        let mut cfg = small_config();
        cfg.system = Some(roaming_system(7));
        let reference = Scenario::new(cfg.clone()).run(ProtocolKind::Charisma);
        for threads in [1u32, 2, 3, 4] {
            let mut sharded_cfg = cfg.clone();
            let mut system = sharded_cfg.system.unwrap();
            system.threads = threads;
            sharded_cfg.system = Some(system);
            let sharded = Scenario::new(sharded_cfg).run(ProtocolKind::Charisma);
            assert_eq!(
                sharded, reference,
                "threads={threads}: sharded report diverged from round-robin"
            );
            assert_eq!(
                format!("{sharded:?}"),
                format!("{reference:?}"),
                "threads={threads}: serialised reports differ"
            );
        }
        // The runs genuinely exercised the handoff machinery.
        assert!(reference.metrics.handoff.successes > 0);
    }

    #[test]
    fn streaming_occupancy_stats_cover_every_measured_frame() {
        let mut cfg = small_config();
        cfg.system = Some(roaming_system(4));
        let report = Scenario::new(cfg.clone()).run(ProtocolKind::DTdmaFr);
        assert_eq!(report.metrics.per_cell.len(), 4);
        let mut population = 0.0;
        for cell in &report.metrics.per_cell {
            assert_eq!(
                cell.occupancy.count(),
                cfg.measured_frames,
                "one occupancy sample per measured frame"
            );
            assert_eq!(cell.admission_queue.count(), cfg.measured_frames);
            population += cell.occupancy.mean();
        }
        // Terminals are conserved, so the mean occupancies sum to the
        // population regardless of how they migrated.
        let total = (4 * (cfg.num_voice + cfg.num_data)) as f64;
        assert!(
            (population - total).abs() < 1e-6,
            "mean occupancies sum to {population}, expected {total}"
        );
    }

    #[test]
    fn handoff_conserves_the_terminal_population() {
        let mut cfg = small_config();
        cfg.system = Some(roaming_system(4));
        let mut world = SystemWorld::new(cfg.clone(), ProtocolKind::Charisma);
        let report = world.run();
        // No terminal lost or duplicated.
        let total = 4 * (cfg.num_voice + cfg.num_data) as usize;
        let ids = world.attached_ids_sorted();
        assert_eq!(ids.len(), total, "population size changed");
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index() as usize, i, "terminal set changed");
        }
        // Terminals actually moved between cells…
        assert!(
            report.metrics.handoff.successes > 0,
            "no handoffs in a 4-cell roaming run: {:?}",
            report.metrics.handoff
        );
        // …and the per-cell flow counters balance the successes.
        let inflow: u64 = report.metrics.per_cell.iter().map(|c| c.handoff_in).sum();
        let outflow: u64 = report.metrics.per_cell.iter().map(|c| c.handoff_out).sum();
        assert_eq!(inflow, outflow);
        assert_eq!(inflow, report.metrics.handoff.successes);
        // Voice accounting stays coherent: every cell's counters sum to the
        // system counters.
        let voice_sum: u64 = report
            .metrics
            .per_cell
            .iter()
            .map(|c| c.voice.generated)
            .sum();
        assert_eq!(voice_sum, report.metrics.voice.generated);
    }

    #[test]
    fn drop_on_full_blocks_and_loses_voice_while_queue_waits() {
        let mut cfg = small_config();
        cfg.measured_frames = 4_000;
        let mut system = roaming_system(3);
        system.layout = Layout::Line {
            cell_radius_m: 80.0,
        };
        // Tight capacity: exactly the initial population, so every crossing
        // into a full cell must be refused or queued.
        system.handoff.cell_capacity = cfg.num_voice + cfg.num_data;
        system.handoff.admission = HandoffAdmission::DropOnFull;
        cfg.system = Some(system);
        let dropped = Scenario::new(cfg.clone()).run(ProtocolKind::DTdmaFr);
        assert!(
            dropped.metrics.handoff.attempts > 0,
            "expected attempts: {:?}",
            dropped.metrics.handoff
        );
        assert!(
            dropped.metrics.handoff.failures > 0,
            "tight capacity must refuse some handoffs: {:?}",
            dropped.metrics.handoff
        );
        assert_eq!(dropped.metrics.handoff.queued, 0);

        let mut queued_cfg = cfg.clone();
        let mut queued_system = cfg.system.unwrap();
        queued_system.handoff.admission = HandoffAdmission::Queue;
        queued_cfg.system = Some(queued_system);
        let queued = Scenario::new(queued_cfg).run(ProtocolKind::DTdmaFr);
        assert!(
            queued.metrics.handoff.queued > 0,
            "queue policy must park some terminals: {:?}",
            queued.metrics.handoff
        );
        assert_eq!(queued.metrics.handoff.failures, 0);
    }

    #[test]
    fn distant_terminals_see_worse_mean_snr() {
        // Path loss must actually reach the channel: a 2-cell system where
        // everything else is equal shows lower mean SNR than the flat
        // single-cell model, because terminals are no longer all at the
        // (clamped) reference distance.
        let mut cfg = small_config();
        cfg.num_voice = 20;
        cfg.system = Some(SystemConfig::new(2));
        let multi = Scenario::new(cfg.clone()).run(ProtocolKind::DTdmaVr);
        cfg.system = None;
        let flat = Scenario::new(cfg).run(ProtocolKind::DTdmaVr);
        // Not a strict dominance claim — just that the runs genuinely
        // diverge and both stay sane.
        assert_ne!(multi.metrics.voice, flat.metrics.voice);
        assert!(multi.voice_loss_rate() <= 1.0);
    }
}
