//! A minimal, dependency-free JSON value with a strict parser and a
//! deterministic writer.
//!
//! The build environment is fully offline (the `serde` dependency resolves to
//! a no-op shim, see `shims/README.md`), yet the scenario-campaign layer
//! needs real serialisation: scenario specs round-trip through JSON, and the
//! `campaign` binary records every run in `results/MANIFEST.json`.  This
//! module provides exactly that surface — nothing more:
//!
//! * [`Json`] — the standard JSON data model.  Integers are kept separate
//!   from floats ([`Json::Int`] holds a `u64`) so seeds survive a round trip
//!   exactly instead of being squeezed through an `f64`.
//! * [`Json::parse`] — a strict recursive-descent parser with positioned
//!   error messages.  No extensions: no comments, no trailing commas, no
//!   `NaN`.
//! * [`Display`](std::fmt::Display) — a deterministic pretty-printer
//!   (2-space indent, object keys in insertion order), so the same value
//!   always serialises to the same bytes — the property the determinism
//!   suite checks for campaign artifacts.
//!
//! When a real `serde` + `serde_json` can be vendored, spec serialisation can
//! move onto the derives this crate already declares; this module would then
//! shrink to the manifest writer.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (sufficient for counts, frames and seeds; the
    /// campaign layer never needs negative integers).
    Int(u64),
    /// Any other number, including negative and fractional values.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object as ordered key/value pairs.  Insertion order is preserved so
    /// serialisation is deterministic.
    Object(Vec<(String, Json)>),
}

/// A parse error with the byte offset at which it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input at which parsing failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON document"));
        }
        Ok(value)
    }

    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64` (accepts both number representations).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// A short name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// Serialises the value on a single line with no whitespace, for
    /// line-oriented (JSONL) files such as the campaign checkpoints and the
    /// benchmark history ledger.  Parses back to the identical value, same
    /// as the pretty [`Display`](std::fmt::Display) form.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        use fmt::Write as _;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => {
                // Same float policy as the pretty printer: integral floats
                // keep a ".0" so they re-parse as Num, not Int.
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    let _ = write!(out, "{x:.1}");
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => {
                let _ = write!(out, "{}", EscapedStr(s));
            }
            Json::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}", EscapedStr(k));
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Num(x) => {
                // `{}` on f64 prints the shortest representation that parses
                // back exactly; integral floats gain a ".0" so they re-parse
                // as Num, keeping Int/Num stable across round trips.
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Array(items) => {
                if items.is_empty() {
                    return f.write_str("[]");
                }
                // Arrays of scalars stay on one line; nested structures wrap.
                let scalar = items
                    .iter()
                    .all(|v| !matches!(v, Json::Array(_) | Json::Object(_)));
                if scalar {
                    f.write_str("[")?;
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        v.write_indented(f, indent)?;
                    }
                    f.write_str("]")
                } else {
                    writeln!(f, "[")?;
                    for (i, v) in items.iter().enumerate() {
                        f.write_str(&pad_in)?;
                        v.write_indented(f, indent + 1)?;
                        if i + 1 < items.len() {
                            f.write_str(",")?;
                        }
                        writeln!(f)?;
                    }
                    write!(f, "{pad}]")
                }
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    return f.write_str("{}");
                }
                writeln!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    f.write_str(&pad_in)?;
                    write_escaped(f, k)?;
                    f.write_str(": ")?;
                    v.write_indented(f, indent + 1)?;
                    if i + 1 < pairs.len() {
                        f.write_str(",")?;
                    }
                    writeln!(f)?;
                }
                write!(f, "{pad}}}")
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_indented(f, 0)
    }
}

/// Displays a string in its JSON-escaped, quoted form (used by the compact
/// writer, which appends to a `String` rather than a `Formatter`).
struct EscapedStr<'a>(&'a str);

impl fmt::Display for EscapedStr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_escaped(f, self.0)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate object key \"{key}\"")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        c => {
                            return Err(self.err(format!("invalid escape '\\{}'", c as char)));
                        }
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (the input is a &str, so
                    // the byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let c = s.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // Surrogate pairs encode characters outside the BMP.
        if (0xD800..=0xDBFF).contains(&first) {
            if !self.bytes[self.pos..].starts_with(b"\\u") {
                return Err(self.err("unpaired high surrogate"));
            }
            self.pos += 2;
            let second = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&second) {
                return Err(self.err("invalid low surrogate"));
            }
            let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xDC00..=0xDFFF).contains(&first) {
            Err(self.err("unpaired low surrogate"))
        } else {
            char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    /// Parses a number with the exact RFC 8259 grammar: no leading zeros, a
    /// digit required on both sides of the decimal point and after the
    /// exponent marker (Rust's more lenient `f64` parser must not widen what
    /// the module's "strict parser" contract accepts).
    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.err("numbers must not have leading zeros"));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected a digit after the decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if !fractional && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number \"{text}\"")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-3.5").unwrap(), Json::Num(-3.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(
            Json::parse("\"hi\\n\\u00e9\"").unwrap(),
            Json::Str("hi\né".into())
        );
    }

    #[test]
    fn large_seeds_round_trip_exactly() {
        let seed = 0xDEAD_BEEF_5EED_CAFEu64;
        let v = Json::Int(seed);
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_u64(), Some(seed));
    }

    #[test]
    fn objects_preserve_order_and_reject_duplicates() {
        let v = Json::parse("{\"b\": 1, \"a\": 2}").unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["b", "a"]);
        assert!(Json::parse("{\"a\": 1, \"a\": 2}").is_err());
    }

    #[test]
    fn display_parse_round_trip_is_identity() {
        let text = "{\"name\": \"fig11\", \"grid\": [1, 2, 3], \"nested\": {\"x\": 0.5, \
                    \"flag\": false, \"none\": null}, \"items\": [{\"k\": \"v\"}]}";
        let v = Json::parse(text).unwrap();
        let printed = v.to_string();
        let reparsed = Json::parse(&printed).unwrap();
        assert_eq!(v, reparsed);
        // Deterministic output: printing again yields the same bytes.
        assert_eq!(printed, reparsed.to_string());
    }

    #[test]
    fn integral_floats_stay_floats_across_round_trips() {
        let v = Json::Num(50.0);
        let printed = v.to_string();
        assert_eq!(printed, "50.0");
        assert_eq!(Json::parse(&printed).unwrap(), v);
    }

    #[test]
    fn number_grammar_is_rfc_8259_strict() {
        for bad in ["007", "-01", "1.", ".5", "1e", "1e+", "2.e3", "-", "+1"] {
            assert!(
                Json::parse(bad).is_err(),
                "accepted non-JSON number {bad:?}"
            );
        }
        assert_eq!(Json::parse("0").unwrap(), Json::Int(0));
        assert_eq!(Json::parse("0.5").unwrap(), Json::Num(0.5));
        assert_eq!(Json::parse("-0").unwrap(), Json::Num(-0.0));
        assert_eq!(Json::parse("10e2").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn compact_form_parses_back_to_the_same_value() {
        let text = "{\"name\": \"fig11\", \"grid\": [1, 2, 3], \"nested\": {\"x\": 0.5, \
                    \"flag\": false, \"none\": null}, \"items\": [{\"k\": \"v\"}], \
                    \"esc\": \"a\\\"b\\nc\"}";
        let v = Json::parse(text).unwrap();
        let compact = v.to_compact_string();
        assert!(!compact.contains('\n'), "compact form must be single-line");
        assert!(!compact.contains(": "), "compact form has no padding");
        assert_eq!(Json::parse(&compact).unwrap(), v);
        // Float policy matches the pretty printer.
        assert_eq!(Json::Num(50.0).to_compact_string(), "50.0");
        assert_eq!(Json::Int(50).to_compact_string(), "50");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "[1,]",
            "\"\\q\"",
            "\"\x01\"",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn errors_carry_positions() {
        let e = Json::parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn accessors_match_types() {
        let v =
            Json::parse("{\"n\": 3, \"f\": 2.5, \"s\": \"x\", \"b\": true, \"a\": []}").unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(2.5));
        assert_eq!(v.get("f").and_then(Json::as_u64), None);
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("a").and_then(Json::as_array), Some(&[][..]));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.type_name(), "object");
    }
}
