//! Structure-of-arrays storage for protocol-independent terminal state.
//!
//! [`TerminalColumns`] owns the per-terminal state of a whole population as
//! parallel columns — one contiguous array per field — instead of a
//! `Vec<Terminal>` of ~300-byte structs.  The per-frame sweep (source
//! stepping, deadline expiry, fading advance, SNR sampling) then runs as
//! tight loops over the columns it actually touches, which is what lets the
//! frame loop batch well at 10k+ terminals per cell.
//!
//! # Column layout
//!
//! Terminals are pushed in index order, so column slot `i` is terminal
//! `TerminalId(i)` everywhere in the store.  The columns are:
//!
//! | column              | element                      | written by                 |
//! |---------------------|------------------------------|----------------------------|
//! | `class`             | `TerminalClass`              | construction only          |
//! | `active_from_frame` | `u64`                        | construction only          |
//! | `in_talkspurt`      | `bool`                       | `begin_frame`              |
//! | `traffic_boundary`  | `u64`                        | `begin_frame`              |
//! | `voice_source`      | `Option<VoiceSource>`        | `begin_frame`              |
//! | `voice_buffer`      | `VoiceBuffer`                | `begin_frame`, MAC serving |
//! | `data_source`       | `Option<DataSource>`         | `begin_frame`              |
//! | `data_buffer`       | `DataBuffer`                 | `begin_frame`, MAC serving |
//! | `mean_snr_db`       | `f64`                        | mobility / path-loss       |
//! | `short`             | `ShortTermFading`            | channel advance            |
//! | `long`              | `LongTermShadowing`          | channel advance            |
//! | `chan_rng`          | `Xoshiro256StarStar`         | channel advance            |
//! | `chan_now`          | `SimTime`                    | channel advance            |
//! | `snr_cache`         | `Option<(SimTime, f64)>`     | SNR sampling               |
//! | `contention_rng`    | `Xoshiro256StarStar`         | contention draws           |
//! | `phy_rng`           | `Xoshiro256StarStar`         | packet-error draws         |
//!
//! # Determinism
//!
//! The columnar refactor changes *layout*, not *draws*: every random stream
//! is still private to one (domain, terminal) pair, every per-terminal
//! operation performs exactly the draws and floating-point operations the
//! object-per-terminal code performed, and batched loops visit terminals in
//! ascending index order — the documented draw order.  The golden-bytes
//! suite in `tests/determinism.rs` pins pre-refactor report bytes against
//! this implementation.
//!
//! # Shared access
//!
//! `ColumnsView` is the crate-internal raw handle: a bundle of column base
//! pointers that the sharded system layer copies into its per-cell workers.
//! Exclusivity is by *cell membership partition* — every terminal index
//! belongs to exactly one cell per frame, and a worker only touches the
//! indices of the cells it owns — which is the same soundness contract the
//! previous `Vec<Terminal>`-based grid used, now concentrated in one type.

use charisma_des::{FrameClock, SimTime, Xoshiro256StarStar};
use charisma_radio::{ChannelMode, LongTermShadowing, ShortTermFading};
use charisma_traffic::{
    buffer::VoicePacket, DataBuffer, DataSource, TerminalClass, VoiceBuffer, VoiceSource,
};

use crate::terminal::{FrameTraffic, Terminal};

/// Population-wide sums of one frame boundary's traffic events, accumulated
/// by [`TerminalColumns::begin_frame_all`] alongside the per-terminal
/// [`FrameTraffic`] reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficTotals {
    /// Voice packets generated at this boundary.
    pub voice_generated: u64,
    /// Voice packets dropped at this boundary (deadline expiry).
    pub voice_dropped: u64,
    /// Data packets that arrived at this boundary.
    pub data_arrived: u64,
}

/// Structure-of-arrays store of every terminal's protocol-independent state.
///
/// Built by pushing [`Terminal`] construction records in index order; from
/// then on all per-frame behaviour (traffic advance, channel stepping, SNR
/// sampling, buffer service) is expressed over column indices.
#[derive(Debug)]
pub struct TerminalColumns {
    clock: FrameClock,
    channel_mode: ChannelMode,
    class: Vec<TerminalClass>,
    active_from_frame: Vec<u64>,
    in_talkspurt: Vec<bool>,
    /// First frame index at which `begin_frame` must do any work for the
    /// terminal: the earlier of the next source event (clamped to the
    /// activation frame while dormant) and the first frame boundary at or
    /// past the earliest buffered voice deadline.  Frames strictly before it
    /// are total no-ops — no source step, no expiry, no report — which is
    /// what lets the per-frame sweep skip idle terminals without touching
    /// their buffers.  MAC service between sweeps only removes packets, so
    /// the deadline component can only move later and the stored bound stays
    /// conservative.
    traffic_boundary: Vec<u64>,
    voice_source: Vec<Option<VoiceSource>>,
    voice_buffer: Vec<VoiceBuffer>,
    data_source: Vec<Option<DataSource>>,
    data_buffer: Vec<DataBuffer>,
    mean_snr_db: Vec<f64>,
    short: Vec<ShortTermFading>,
    long: Vec<LongTermShadowing>,
    chan_rng: Vec<Xoshiro256StarStar>,
    chan_now: Vec<SimTime>,
    snr_cache: Vec<Option<(SimTime, f64)>>,
    contention_rng: Vec<Xoshiro256StarStar>,
    phy_rng: Vec<Xoshiro256StarStar>,
}

impl TerminalColumns {
    /// Creates an empty store for a population driven by `clock` whose
    /// channels advance in `channel_mode`.
    pub fn new(clock: FrameClock, channel_mode: ChannelMode) -> Self {
        Self::with_capacity(clock, channel_mode, 0)
    }

    /// Like [`TerminalColumns::new`] with pre-allocated column capacity.
    pub fn with_capacity(clock: FrameClock, channel_mode: ChannelMode, capacity: usize) -> Self {
        TerminalColumns {
            clock,
            channel_mode,
            class: Vec::with_capacity(capacity),
            active_from_frame: Vec::with_capacity(capacity),
            in_talkspurt: Vec::with_capacity(capacity),
            traffic_boundary: Vec::with_capacity(capacity),
            voice_source: Vec::with_capacity(capacity),
            voice_buffer: Vec::with_capacity(capacity),
            data_source: Vec::with_capacity(capacity),
            data_buffer: Vec::with_capacity(capacity),
            mean_snr_db: Vec::with_capacity(capacity),
            short: Vec::with_capacity(capacity),
            long: Vec::with_capacity(capacity),
            chan_rng: Vec::with_capacity(capacity),
            chan_now: Vec::with_capacity(capacity),
            snr_cache: Vec::with_capacity(capacity),
            contention_rng: Vec::with_capacity(capacity),
            phy_rng: Vec::with_capacity(capacity),
        }
    }

    /// Decomposes `terminal` into the columns.  Terminals must be pushed in
    /// ascending index order so slot `i` is `TerminalId(i)`.
    pub fn push(&mut self, terminal: Terminal) {
        let parts = terminal.into_parts();
        debug_assert_eq!(
            parts.id.index() as usize,
            self.class.len(),
            "terminals must be pushed in index order"
        );
        debug_assert_eq!(parts.clock, self.clock, "terminal clock mismatch");
        debug_assert_eq!(
            parts.channel_mode, self.channel_mode,
            "terminal channel mode mismatch"
        );
        self.class.push(parts.class);
        self.active_from_frame.push(parts.active_from_frame);
        self.in_talkspurt.push(parts.in_talkspurt);
        self.traffic_boundary.push(Self::boundary_for(
            &parts.voice_source,
            &parts.data_source,
            &parts.voice_buffer,
            parts.active_from_frame,
            0,
            self.clock.frame_duration().as_micros(),
        ));
        self.voice_source.push(parts.voice_source);
        self.voice_buffer.push(parts.voice_buffer);
        self.data_source.push(parts.data_source);
        self.data_buffer.push(parts.data_buffer);
        self.mean_snr_db.push(parts.channel.config.mean_snr_db);
        self.short.push(parts.channel.short);
        self.long.push(parts.channel.long);
        self.chan_rng.push(parts.channel.rng);
        self.chan_now.push(parts.channel.now);
        self.snr_cache.push(None);
        self.contention_rng.push(parts.contention_rng);
        self.phy_rng.push(parts.phy_rng);
    }

    /// First frame at which `begin_frame` must do any work for a terminal in
    /// this state: the earlier of the two sources' next events — clamped to
    /// the activation frame while the next frame to visit (`frame_index`) is
    /// at or before it, so the activation boundary itself is never skipped
    /// and `in_talkspurt` / buffer state update there exactly as in the
    /// every-frame path — and the first frame boundary at or past the
    /// earliest buffered voice deadline (the first frame whose expiry check
    /// could drop a packet; a packet with deadline `d` is dropped at the
    /// first frame start `k·T ≥ d`, i.e. `k = ⌈d / T⌉`).
    fn boundary_for(
        voice: &Option<VoiceSource>,
        data: &Option<DataSource>,
        voice_buffer: &VoiceBuffer,
        active_from_frame: u64,
        frame_index: u64,
        frame_us: u64,
    ) -> u64 {
        let mut b = voice
            .as_ref()
            .map_or(u64::MAX, |s| s.next_event_frame())
            .min(data.as_ref().map_or(u64::MAX, |s| s.next_event_frame()));
        if frame_index <= active_from_frame {
            b = b.min(active_from_frame);
        }
        // Every buffered deadline survived the expiry check of the frame just
        // processed, so its drop frame is at least `frame_index` — when `b` is
        // already down there the min cannot lower it, and the division (and
        // the buffer read) is skipped.  A terminal mid-talkspurt generates a
        // packet next frame, so the hot path never pays for this bound.
        if b > frame_index {
            if let Some(d) = voice_buffer.earliest_deadline() {
                b = b.min(d.as_micros().div_ceil(frame_us));
            }
        }
        b
    }

    /// Number of terminals in the store.
    pub fn len(&self) -> usize {
        self.class.len()
    }

    /// Whether the store holds no terminals.
    pub fn is_empty(&self) -> bool {
        self.class.is_empty()
    }

    /// The frame clock the population is driven by.
    pub fn clock(&self) -> FrameClock {
        self.clock
    }

    /// How the channels advance along the frame grid.
    pub fn channel_mode(&self) -> ChannelMode {
        self.channel_mode
    }

    /// The raw column view used by the frame engine and the sharded system
    /// layer.  Column base pointers stay valid for as long as no terminal is
    /// pushed (the vectors never reallocate otherwise).
    pub(crate) fn view(&mut self) -> ColumnsView {
        ColumnsView {
            len: self.class.len(),
            clock: self.clock,
            channel_mode: self.channel_mode,
            class: self.class.as_mut_ptr(),
            active_from_frame: self.active_from_frame.as_mut_ptr(),
            in_talkspurt: self.in_talkspurt.as_mut_ptr(),
            traffic_boundary: self.traffic_boundary.as_mut_ptr(),
            voice_source: self.voice_source.as_mut_ptr(),
            voice_buffer: self.voice_buffer.as_mut_ptr(),
            data_source: self.data_source.as_mut_ptr(),
            data_buffer: self.data_buffer.as_mut_ptr(),
            mean_snr_db: self.mean_snr_db.as_mut_ptr(),
            short: self.short.as_mut_ptr(),
            long: self.long.as_mut_ptr(),
            chan_rng: self.chan_rng.as_mut_ptr(),
            chan_now: self.chan_now.as_mut_ptr(),
            snr_cache: self.snr_cache.as_mut_ptr(),
            contention_rng: self.contention_rng.as_mut_ptr(),
            phy_rng: self.phy_rng.as_mut_ptr(),
        }
    }

    // ----- safe single-owner wrappers over the view operations -----
    //
    // Holding `&mut self` is exclusive access to every column, so the raw
    // view operations are trivially sound here.

    /// Advances terminal `i`'s traffic across the boundary that starts
    /// `frame_index` and reports what happened (see [`FrameTraffic`]).
    pub fn begin_frame(&mut self, i: usize, frame_index: u64) -> FrameTraffic {
        unsafe { self.view().begin_frame(i, frame_index) }
    }

    /// Runs [`TerminalColumns::begin_frame`] for every terminal in ascending
    /// index order — the documented draw order — writing each terminal's
    /// report into `traffic` and returning the population-wide totals (so
    /// single-cell scenario loops don't need a second accumulation pass).
    pub fn begin_frame_all(
        &mut self,
        frame_index: u64,
        traffic: &mut [FrameTraffic],
    ) -> TrafficTotals {
        assert_eq!(traffic.len(), self.len(), "traffic slice length mismatch");
        let now = self.clock.frame_start(frame_index);
        if self.channel_mode == ChannelMode::Eager {
            // Same draws as the interleaved per-terminal path: the channel
            // streams are per-terminal, so hoisting the channel sweep out of
            // the traffic loop is loop fission across independent streams and
            // changes no draw.
            let view = self.view();
            for i in 0..view.len() {
                unsafe {
                    view.advance_channel_eager(i, now);
                    *view.snr_cache.add(i) = None;
                }
            }
        }
        // Safe zipped-slice sweep (exclusive `&mut self` — no raw view
        // needed); mirrors `ColumnsView::begin_frame_at` terminal for
        // terminal, with bounds checks elided by the zips.  Frames strictly
        // before a terminal's `traffic_boundary` are total no-ops: the source
        // calls would be no-ops (no state change, no draw), the expiry check
        // could drop nothing (the boundary covers the earliest buffered
        // deadline), dormancy has no edge, and `in_talkspurt` cannot change —
        // so the skip is behaviour-for-behaviour identical to the full path
        // without touching the terminal's buffers at all.
        let frame_us = self.clock.frame_duration().as_micros();
        let mut totals = TrafficTotals::default();
        // One sequential clear up front turns the common no-event slot writes
        // into a single memset; the sweep then touches a slot only when the
        // terminal actually had an event (identical slice contents).
        traffic.fill(FrameTraffic::default());
        for (((((slot, vbuf), boundary), srcs), dbuf), (talk, active_from)) in traffic
            .iter_mut()
            .zip(self.voice_buffer.iter_mut())
            .zip(self.traffic_boundary.iter_mut())
            .zip(
                self.voice_source
                    .iter_mut()
                    .zip(self.data_source.iter_mut()),
            )
            .zip(self.data_buffer.iter_mut())
            .zip(
                self.in_talkspurt
                    .iter_mut()
                    .zip(self.active_from_frame.iter()),
            )
        {
            if frame_index < *boundary {
                continue;
            }
            let (vsrc, dsrc) = srcs;
            // Deadline enforcement happens before new packets arrive so a
            // packet generated at this boundary can never be dropped at the
            // same boundary.
            let mut out = FrameTraffic {
                voice_packets_dropped: vbuf.drop_expired(now) as u32,
                ..FrameTraffic::default()
            };
            if let Some(src) = vsrc.as_mut() {
                let activity = src.on_frame_start(frame_index);
                *talk = src.is_talking();
                out.talkspurt_started = activity.talkspurt_started;
                out.talkspurt_ended = activity.talkspurt_ended;
                if activity.packet_generated {
                    let deadline = src.deadline_for(frame_index);
                    vbuf.push(VoicePacket {
                        generated_at: now,
                        deadline,
                    });
                    out.voice_packet_generated = true;
                }
            }
            if let Some(src) = dsrc.as_mut() {
                let arrived = src.on_frame_start(frame_index);
                if arrived > 0 {
                    dbuf.push_burst(now, arrived);
                    out.data_packets_arrived = arrived;
                }
            }
            if frame_index < *active_from {
                vbuf.clear();
                dbuf.clear();
                *talk = false;
                out = FrameTraffic::default();
            }
            *boundary =
                Self::boundary_for(vsrc, dsrc, vbuf, *active_from, frame_index + 1, frame_us);
            totals.voice_generated += out.voice_packet_generated as u64;
            totals.voice_dropped += out.voice_packets_dropped as u64;
            totals.data_arrived += out.data_packets_arrived as u64;
            *slot = out;
        }
        totals
    }

    /// Terminal `i`'s true instantaneous SNR at time `t` (advances the
    /// fading processes as needed; memoised per instant in lazy mode).
    pub fn true_snr_db(&mut self, i: usize, t: SimTime) -> f64 {
        unsafe { self.view().true_snr_db(i, t) }
    }

    /// The terminal's service class.
    pub fn class(&self, i: usize) -> TerminalClass {
        self.class[i]
    }

    /// Whether the terminal is currently in a talkspurt.
    pub fn in_talkspurt(&self, i: usize) -> bool {
        self.in_talkspurt[i]
    }

    /// Whether the terminal participates in the given frame.
    pub fn is_active_at(&self, i: usize, frame_index: u64) -> bool {
        frame_index >= self.active_from_frame[i]
    }

    /// Number of voice packets waiting in the transmit buffer.
    pub fn voice_backlog(&self, i: usize) -> usize {
        self.voice_buffer[i].len()
    }

    /// Number of data packets waiting in the transmit buffer.
    pub fn data_backlog(&self, i: usize) -> u64 {
        self.data_buffer[i].len()
    }

    /// Whether the terminal has anything to send.
    pub fn has_backlog(&self, i: usize) -> bool {
        !self.voice_buffer[i].is_empty() || !self.data_buffer[i].is_empty()
    }

    /// Earliest deadline among buffered voice packets.
    pub fn earliest_voice_deadline(&self, i: usize) -> Option<SimTime> {
        self.voice_buffer[i].earliest_deadline()
    }

    /// Arrival time of the oldest buffered data packet.
    pub fn oldest_data_arrival(&self, i: usize) -> Option<SimTime> {
        self.data_buffer[i].head_arrival()
    }

    /// Mutable access to the voice buffer (transmission engine, tests).
    pub fn voice_buffer_mut(&mut self, i: usize) -> &mut VoiceBuffer {
        &mut self.voice_buffer[i]
    }

    /// Mutable access to the data buffer (transmission engine, tests).
    pub fn data_buffer_mut(&mut self, i: usize) -> &mut DataBuffer {
        &mut self.data_buffer[i]
    }

    /// The contention random stream (permission probability, slot choice).
    pub fn contention_rng(&mut self, i: usize) -> &mut Xoshiro256StarStar {
        &mut self.contention_rng[i]
    }

    /// The packet-error random stream.
    pub fn phy_rng(&mut self, i: usize) -> &mut Xoshiro256StarStar {
        &mut self.phy_rng[i]
    }

    /// Re-points terminal `i`'s mean SNR (dB); the multi-cell system layer
    /// updates it every frame from path loss + site shadowing.
    pub fn set_mean_snr_db(&mut self, i: usize, mean_snr_db: f64) {
        assert!(mean_snr_db.is_finite(), "mean SNR must be finite");
        self.mean_snr_db[i] = mean_snr_db;
    }

    /// Drops every buffered voice packet (hard-handoff link interruption or
    /// refused admission) and returns how many were lost.
    pub fn drop_buffered_voice(&mut self, i: usize) -> u32 {
        let n = self.voice_buffer[i].len() as u32;
        self.voice_buffer[i].clear();
        n
    }
}

/// Raw handle over the columns of a [`TerminalColumns`] store: one base
/// pointer per column plus the shared clock/channel-mode scalars.
///
/// # Soundness contract
///
/// A `ColumnsView` is a *claim of partitioned exclusivity*, exactly like the
/// sharded grid that copies it into worker threads: whoever holds a copy may
/// only touch element `i` if it has exclusive access to terminal `i` for the
/// duration of the call.  The system layer guarantees this through the cell
/// membership partition (every terminal belongs to exactly one cell per
/// frame; a worker only steps the cells it owns); the single-threaded paths
/// guarantee it by deriving the view from `&mut TerminalColumns`.  All
/// element operations bounds-check `i` (a plain `assert!`, kept in release
/// builds) so an out-of-partition index can corrupt determinism but never
/// memory-safety via out-of-bounds access.
///
/// Pointers stay valid while the originating store is alive and no terminal
/// is pushed; the store is fully populated before any view is taken.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ColumnsView {
    len: usize,
    clock: FrameClock,
    channel_mode: ChannelMode,
    class: *mut TerminalClass,
    active_from_frame: *mut u64,
    in_talkspurt: *mut bool,
    traffic_boundary: *mut u64,
    voice_source: *mut Option<VoiceSource>,
    voice_buffer: *mut VoiceBuffer,
    data_source: *mut Option<DataSource>,
    data_buffer: *mut DataBuffer,
    mean_snr_db: *mut f64,
    short: *mut ShortTermFading,
    long: *mut LongTermShadowing,
    chan_rng: *mut Xoshiro256StarStar,
    chan_now: *mut SimTime,
    snr_cache: *mut Option<(SimTime, f64)>,
    contention_rng: *mut Xoshiro256StarStar,
    phy_rng: *mut Xoshiro256StarStar,
}

// SAFETY: sending or sharing the view across threads is sound under the
// partitioned-exclusivity contract above; every element type is itself Send
// (asserted below), and the view performs no interior mutation beyond what
// the caller's partition licenses.
unsafe impl Send for ColumnsView {}
unsafe impl Sync for ColumnsView {}

// Compile-time proof that every column element is safe to hand to another
// thread (backs the unsafe Send/Sync impls above).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<TerminalClass>();
    assert_send::<u64>();
    assert_send::<bool>();
    assert_send::<Option<VoiceSource>>();
    assert_send::<VoiceBuffer>();
    assert_send::<Option<DataSource>>();
    assert_send::<DataBuffer>();
    assert_send::<f64>();
    assert_send::<ShortTermFading>();
    assert_send::<LongTermShadowing>();
    assert_send::<Xoshiro256StarStar>();
    assert_send::<SimTime>();
    assert_send::<Option<(SimTime, f64)>>();
    assert_send::<FrameClock>();
};

impl ColumnsView {
    /// Number of terminals behind the view.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn check(&self, i: usize) {
        assert!(
            i < self.len,
            "terminal index {i} out of bounds ({})",
            self.len
        );
    }

    /// Advances terminal `i`'s traffic across the boundary that starts
    /// `frame_index`, updating the buffers, and reports what happened.
    /// Deadline-expired voice packets are dropped here (and reported),
    /// exactly once per frame.
    ///
    /// # Safety
    /// Caller must have exclusive access to terminal `i` (see the type-level
    /// soundness contract).
    pub(crate) unsafe fn begin_frame(&self, i: usize, frame_index: u64) -> FrameTraffic {
        let now = self.clock.frame_start(frame_index);
        self.begin_frame_at(i, frame_index, now)
    }

    /// [`Self::begin_frame`] with the frame-start instant precomputed, so the
    /// all-terminals sweep evaluates the clock once per frame rather than once
    /// per terminal.
    ///
    /// # Safety
    /// Exclusive access to terminal `i`; `now` must equal
    /// `self.clock.frame_start(frame_index)`.
    #[inline]
    unsafe fn begin_frame_at(&self, i: usize, frame_index: u64, now: SimTime) -> FrameTraffic {
        self.check(i);
        // Lazy mode leaves the channel untouched here: it is advanced (with a
        // coalesced dt) the first time this frame's SNR is sampled, so idle
        // terminals skip channel work entirely.
        if self.channel_mode == ChannelMode::Eager {
            self.advance_channel_eager(i, now);
            *self.snr_cache.add(i) = None;
        }

        // Frames strictly before the traffic boundary are total no-ops: the
        // source calls would be no-ops (no state change, no draw), the expiry
        // check could drop nothing (the boundary covers the earliest buffered
        // deadline), dormancy has no edge there, and `in_talkspurt` cannot
        // change — skipping them is behaviour-for-behaviour identical.
        if frame_index < *self.traffic_boundary.add(i) {
            return FrameTraffic::default();
        }

        let voice_buffer = &mut *self.voice_buffer.add(i);
        let mut out = FrameTraffic {
            // Deadline enforcement happens before new packets arrive so a packet
            // generated at this boundary can never be dropped at the same boundary.
            voice_packets_dropped: voice_buffer.drop_expired(now) as u32,
            ..FrameTraffic::default()
        };

        if let Some(src) = (*self.voice_source.add(i)).as_mut() {
            let activity = src.on_frame_start(frame_index);
            *self.in_talkspurt.add(i) = src.is_talking();
            out.talkspurt_started = activity.talkspurt_started;
            out.talkspurt_ended = activity.talkspurt_ended;
            if activity.packet_generated {
                let deadline = src.deadline_for(frame_index);
                voice_buffer.push(VoicePacket {
                    generated_at: now,
                    deadline,
                });
                out.voice_packet_generated = true;
            }
        }

        if let Some(src) = (*self.data_source.add(i)).as_mut() {
            let arrived = src.on_frame_start(frame_index);
            if arrived > 0 {
                (*self.data_buffer.add(i)).push_burst(now, arrived);
                out.data_packets_arrived = arrived;
            }
        }

        // A dormant terminal (activated mid-run by a load ramp) advances its
        // sources exactly like an active one so the per-terminal RNG streams
        // stay aligned, but its traffic is discarded: nothing is buffered,
        // nothing is reported, and it never looks like a contender.  From the
        // activation frame onward it behaves draw-for-draw like an
        // always-active twin — a terminal woken mid-talkspurt buffers that
        // talkspurt's remaining packets (and contends for them) immediately.
        let active_from = *self.active_from_frame.add(i);
        if frame_index < active_from {
            voice_buffer.clear();
            (*self.data_buffer.add(i)).clear();
            *self.in_talkspurt.add(i) = false;
            out = FrameTraffic::default();
        }

        *self.traffic_boundary.add(i) = TerminalColumns::boundary_for(
            &*self.voice_source.add(i),
            &*self.data_source.add(i),
            voice_buffer,
            active_from,
            frame_index + 1,
            self.clock.frame_duration().as_micros(),
        );

        out
    }

    /// Advances terminal `i`'s channel to `t` in one coalesced AR(1) step per
    /// process (short first, then long — the documented draw order), reusing
    /// memoised step coefficients.  Panics if `t` is in the past.
    ///
    /// # Safety
    /// Exclusive access to terminal `i`.
    unsafe fn advance_channel(&self, i: usize, t: SimTime) {
        let now = &mut *self.chan_now.add(i);
        assert!(
            t >= *now,
            "channel cannot be advanced backwards (now {}, asked {t})",
            *now
        );
        let dt = t.duration_since(*now);
        if dt.is_zero() {
            return;
        }
        let rng = &mut *self.chan_rng.add(i);
        (*self.short.add(i)).step(dt, rng);
        (*self.long.add(i)).step(dt, rng);
        *now = t;
    }

    /// Eager-mode channel advance: same draws, coefficients recomputed every
    /// call (the pre-optimisation baseline the benchmark measures against).
    ///
    /// # Safety
    /// Exclusive access to terminal `i`.
    unsafe fn advance_channel_eager(&self, i: usize, t: SimTime) {
        let now = &mut *self.chan_now.add(i);
        assert!(
            t >= *now,
            "channel cannot be advanced backwards (now {}, asked {t})",
            *now
        );
        let dt = t.duration_since(*now);
        if dt.is_zero() {
            return;
        }
        let rng = &mut *self.chan_rng.add(i);
        (*self.short.add(i)).step_uncached(dt, rng);
        (*self.long.add(i)).step_uncached(dt, rng);
        *now = t;
    }

    /// The SNR implied by terminal `i`'s current fading state: the mean SNR
    /// plus the combined gain in dB, with deep fades clamped at -240 dB so
    /// downstream arithmetic stays well defined.  (Same operations, in the
    /// same order, as the pre-SoA `CombinedChannel::snr_db`.)
    ///
    /// # Safety
    /// Shared access to terminal `i` suffices (no mutation).
    unsafe fn snr_db(&self, i: usize) -> f64 {
        let g = (*self.long.add(i)).local_mean_linear() * (*self.short.add(i)).envelope();
        let gain_db = if g <= 1e-12 { -240.0 } else { 20.0 * g.log10() };
        *self.mean_snr_db.add(i) + gain_db
    }

    /// Terminal `i`'s true instantaneous SNR at time `t`.
    ///
    /// In [`ChannelMode::Lazy`] (the default) the value is memoised per
    /// instant, so capacity, the error-probability draw and CSI polling all
    /// share one channel evaluation per terminal per frame, and the channel
    /// itself is advanced in one coalesced step covering every frame the
    /// terminal sat idle.  In [`ChannelMode::Eager`] the SNR is recomputed on
    /// every call, reproducing the pre-optimisation cost.
    ///
    /// # Safety
    /// Exclusive access to terminal `i`.
    pub(crate) unsafe fn true_snr_db(&self, i: usize, t: SimTime) -> f64 {
        self.check(i);
        match self.channel_mode {
            ChannelMode::Lazy => {
                let cache = &mut *self.snr_cache.add(i);
                if let Some((at, snr)) = *cache {
                    if at == t {
                        return snr;
                    }
                }
                self.advance_channel(i, t);
                let snr = self.snr_db(i);
                *cache = Some((t, snr));
                snr
            }
            ChannelMode::Eager => {
                self.advance_channel(i, t);
                self.snr_db(i)
            }
        }
    }

    /// The terminal's service class.
    ///
    /// # Safety
    /// Shared access to terminal `i` (the class column is immutable after
    /// construction).
    pub(crate) unsafe fn class(&self, i: usize) -> TerminalClass {
        self.check(i);
        *self.class.add(i)
    }

    /// Whether the terminal is currently in a talkspurt.
    ///
    /// # Safety
    /// Shared access to terminal `i`.
    pub(crate) unsafe fn in_talkspurt(&self, i: usize) -> bool {
        self.check(i);
        *self.in_talkspurt.add(i)
    }

    /// Number of voice packets waiting in the transmit buffer.
    ///
    /// # Safety
    /// Shared access to terminal `i`.
    pub(crate) unsafe fn voice_backlog(&self, i: usize) -> usize {
        self.check(i);
        (*self.voice_buffer.add(i)).len()
    }

    /// Number of data packets waiting in the transmit buffer.
    ///
    /// # Safety
    /// Shared access to terminal `i`.
    pub(crate) unsafe fn data_backlog(&self, i: usize) -> u64 {
        self.check(i);
        (*self.data_buffer.add(i)).len()
    }

    /// Whether the terminal has anything to send.
    ///
    /// # Safety
    /// Shared access to terminal `i`.
    pub(crate) unsafe fn has_backlog(&self, i: usize) -> bool {
        self.check(i);
        !(*self.voice_buffer.add(i)).is_empty() || !(*self.data_buffer.add(i)).is_empty()
    }

    /// Earliest deadline among buffered voice packets.
    ///
    /// # Safety
    /// Shared access to terminal `i`.
    pub(crate) unsafe fn earliest_voice_deadline(&self, i: usize) -> Option<SimTime> {
        self.check(i);
        (*self.voice_buffer.add(i)).earliest_deadline()
    }

    /// Arrival time of the oldest buffered data packet.
    ///
    /// # Safety
    /// Shared access to terminal `i`.
    pub(crate) unsafe fn oldest_data_arrival(&self, i: usize) -> Option<SimTime> {
        self.check(i);
        (*self.data_buffer.add(i)).head_arrival()
    }

    /// Mutable access to the voice buffer.
    ///
    /// # Safety
    /// Exclusive access to terminal `i`.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn voice_buffer_mut(&self, i: usize) -> &mut VoiceBuffer {
        self.check(i);
        &mut *self.voice_buffer.add(i)
    }

    /// Mutable access to the data buffer.
    ///
    /// # Safety
    /// Exclusive access to terminal `i`.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn data_buffer_mut(&self, i: usize) -> &mut DataBuffer {
        self.check(i);
        &mut *self.data_buffer.add(i)
    }

    /// The contention random stream (permission probability, slot choice).
    ///
    /// # Safety
    /// Exclusive access to terminal `i`.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn contention_rng(&self, i: usize) -> &mut Xoshiro256StarStar {
        self.check(i);
        &mut *self.contention_rng.add(i)
    }

    /// The packet-error random stream.
    ///
    /// # Safety
    /// Exclusive access to terminal `i`.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn phy_rng(&self, i: usize) -> &mut Xoshiro256StarStar {
        self.check(i);
        &mut *self.phy_rng.add(i)
    }

    /// Re-points terminal `i`'s mean SNR (dB).
    ///
    /// # Safety
    /// Exclusive access to terminal `i`.
    pub(crate) unsafe fn set_mean_snr_db(&self, i: usize, mean_snr_db: f64) {
        self.check(i);
        assert!(mean_snr_db.is_finite(), "mean SNR must be finite");
        *self.mean_snr_db.add(i) = mean_snr_db;
    }

    /// Drops every buffered voice packet of terminal `i` and returns how
    /// many were lost (hard-handoff link interruption / refused admission).
    ///
    /// # Safety
    /// Exclusive access to terminal `i`.
    pub(crate) unsafe fn drop_buffered_voice(&self, i: usize) -> u32 {
        self.check(i);
        let buffer = &mut *self.voice_buffer.add(i);
        let n = buffer.len() as u32;
        buffer.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charisma_des::{RngStreams, SimDuration};
    use charisma_radio::{ChannelConfig, SpeedProfile};
    use charisma_traffic::{DataSourceConfig, TerminalId, VoiceSourceConfig};

    fn terminal(i: u32, class: TerminalClass, seed: u64, mode: ChannelMode) -> Terminal {
        let streams = RngStreams::new(seed);
        Terminal::new(
            TerminalId(i),
            class,
            FrameClock::paper_default(),
            VoiceSourceConfig::default(),
            DataSourceConfig::default(),
            ChannelConfig::default(),
            mode,
            &SpeedProfile::Fixed(50.0),
            &streams,
        )
    }

    fn make_mode(class: TerminalClass, seed: u64, mode: ChannelMode) -> TerminalColumns {
        let mut cols = TerminalColumns::new(FrameClock::paper_default(), mode);
        cols.push(terminal(0, class, seed, mode));
        cols
    }

    fn make(class: TerminalClass, seed: u64) -> TerminalColumns {
        make_mode(class, seed, ChannelMode::Lazy)
    }

    #[test]
    fn voice_terminal_generates_and_drops_packets() {
        let mut t = make(TerminalClass::Voice, 1);
        let mut generated = 0u64;
        let mut dropped = 0u64;
        for k in 0..80_000u64 {
            let tr = t.begin_frame(0, k);
            generated += tr.voice_packet_generated as u64;
            dropped += tr.voice_packets_dropped as u64;
            assert_eq!(
                tr.data_packets_arrived, 0,
                "voice terminal must not produce data"
            );
        }
        assert!(
            generated > 1_000,
            "expected many voice packets, got {generated}"
        );
        // Nothing is ever transmitted in this test, so every packet must
        // eventually be dropped at its deadline (modulo those still queued).
        assert!(
            dropped >= generated - 2,
            "generated {generated}, dropped {dropped}"
        );
        assert!(t.voice_backlog(0) <= 2);
    }

    #[test]
    fn data_terminal_accumulates_backlog() {
        let mut t = make(TerminalClass::Data, 2);
        let mut arrived = 0u64;
        for k in 0..40_000u64 {
            let tr = t.begin_frame(0, k);
            arrived += tr.data_packets_arrived as u64;
            assert!(!tr.voice_packet_generated);
        }
        assert!(arrived > 1_000, "expected data arrivals, got {arrived}");
        assert_eq!(
            t.data_backlog(0),
            arrived,
            "nothing was served, backlog must equal arrivals"
        );
        assert!(t.has_backlog(0));
    }

    #[test]
    fn channel_is_queryable_at_frame_times() {
        let mut t = make(TerminalClass::Voice, 3);
        t.begin_frame(0, 0);
        let s0 = t.true_snr_db(0, SimTime::ZERO);
        let s1 = t.true_snr_db(0, SimTime::ZERO + SimDuration::from_micros(2_500));
        assert!(s0.is_finite() && s1.is_finite());
    }

    #[test]
    fn talkspurt_flag_tracks_source() {
        let mut t = make(TerminalClass::Voice, 4);
        let mut toggles = 0;
        let mut last = t.in_talkspurt(0);
        for k in 0..200_000u64 {
            t.begin_frame(0, k);
            if t.in_talkspurt(0) != last {
                toggles += 1;
                last = t.in_talkspurt(0);
            }
        }
        assert!(
            toggles > 50,
            "talkspurt state should toggle many times, saw {toggles}"
        );
    }

    #[test]
    fn identical_seeds_produce_identical_terminals() {
        let mut a = make(TerminalClass::Voice, 9);
        let mut b = make(TerminalClass::Voice, 9);
        for k in 0..5_000u64 {
            assert_eq!(a.begin_frame(0, k), b.begin_frame(0, k));
        }
        let t = SimTime::from_micros(5_000 * 2_500);
        assert_eq!(a.true_snr_db(0, t), b.true_snr_db(0, t));
    }

    #[test]
    fn snr_is_cached_within_an_instant_and_refreshed_across_frames() {
        let mut t = make(TerminalClass::Voice, 11);
        t.begin_frame(0, 0);
        let at = SimTime::ZERO;
        let first = t.true_snr_db(0, at);
        // Repeated queries at the same instant must return the exact same
        // value without touching the channel RNG.
        for _ in 0..5 {
            assert_eq!(t.true_snr_db(0, at), first);
        }
        // A later frame re-samples the channel.
        t.begin_frame(0, 1);
        let later = t.true_snr_db(0, SimTime::from_micros(2_500));
        assert_ne!(later, first, "a new frame must refresh the cached SNR");
        assert_eq!(t.true_snr_db(0, SimTime::from_micros(2_500)), later);
    }

    #[test]
    fn eager_and_lazy_terminals_see_statistically_similar_channels() {
        // The two modes draw different sample paths (documented one-time
        // trajectory change) but must agree on the channel statistics.
        let mean_snr = |mode: ChannelMode| -> f64 {
            let mut t = make_mode(TerminalClass::Voice, 12, mode);
            let mut acc = 0.0;
            let n = 40_000u64;
            for k in 0..n {
                t.begin_frame(0, k);
                // Sample only every 10th frame: in lazy mode the intervening
                // frames are coalesced into one AR(1) step.
                if k % 10 == 0 {
                    acc += t.true_snr_db(0, SimTime::from_micros(k * 2_500));
                }
            }
            acc / (n / 10) as f64
        };
        let eager = mean_snr(ChannelMode::Eager);
        let lazy = mean_snr(ChannelMode::Lazy);
        assert!(
            (eager - lazy).abs() < 1.0,
            "eager mean SNR {eager} dB vs lazy {lazy} dB"
        );
    }

    #[test]
    fn dormant_terminal_reports_nothing_then_wakes_up() {
        let mut ramped = terminal(0, TerminalClass::Voice, 21, ChannelMode::Lazy);
        ramped.set_active_from_frame(4_000);
        let mut t = TerminalColumns::new(FrameClock::paper_default(), ChannelMode::Lazy);
        t.push(ramped);
        for k in 0..4_000u64 {
            assert!(!t.is_active_at(0, k));
            let tr = t.begin_frame(0, k);
            assert_eq!(tr, FrameTraffic::default(), "dormant frame {k} had traffic");
            assert!(!t.in_talkspurt(0));
            assert!(!t.has_backlog(0));
        }
        let mut generated = 0u64;
        for k in 4_000..80_000u64 {
            assert!(t.is_active_at(0, k));
            generated += t.begin_frame(0, k).voice_packet_generated as u64;
        }
        assert!(generated > 1_000, "woken terminal generated {generated}");
    }

    #[test]
    fn dormant_prefix_does_not_change_the_post_activation_sample_path() {
        // The whole point of advancing sources while dormant: after the
        // activation frame the terminal behaves draw-for-draw like an
        // always-active twin.
        let mut active = make(TerminalClass::Voice, 22);
        let mut deferred = terminal(0, TerminalClass::Voice, 22, ChannelMode::Lazy);
        deferred.set_active_from_frame(2_000);
        let mut ramped = TerminalColumns::new(FrameClock::paper_default(), ChannelMode::Lazy);
        ramped.push(deferred);
        for k in 0..2_000u64 {
            let _ = active.begin_frame(0, k);
            let _ = ramped.begin_frame(0, k);
        }
        // Drain the always-active twin's backlog so the buffers agree.
        while active.voice_buffer_mut(0).pop().is_some() {}
        for k in 2_000..10_000u64 {
            assert_eq!(
                active.begin_frame(0, k),
                ramped.begin_frame(0, k),
                "frame {k}"
            );
        }
    }

    #[test]
    fn different_terminal_ids_get_different_traffic() {
        let mut cols = TerminalColumns::new(FrameClock::paper_default(), ChannelMode::Lazy);
        let streams = RngStreams::new(7);
        for i in 0..2u32 {
            cols.push(Terminal::new(
                TerminalId(i),
                TerminalClass::Voice,
                FrameClock::paper_default(),
                VoiceSourceConfig::default(),
                DataSourceConfig::default(),
                ChannelConfig::default(),
                ChannelMode::Lazy,
                &SpeedProfile::Fixed(50.0),
                &streams,
            ));
        }
        let mut differing = 0;
        for k in 0..10_000u64 {
            if cols.begin_frame(0, k) != cols.begin_frame(1, k) {
                differing += 1;
            }
        }
        assert!(
            differing > 100,
            "two terminals should have distinct traffic, {differing} frames differed"
        );
    }

    #[test]
    fn columnar_begin_frame_all_matches_per_terminal_calls() {
        let streams = RngStreams::new(33);
        let mk = |cols: &mut TerminalColumns, i: u32, class: TerminalClass| {
            cols.push(Terminal::new(
                TerminalId(i),
                class,
                FrameClock::paper_default(),
                VoiceSourceConfig::default(),
                DataSourceConfig::default(),
                ChannelConfig::default(),
                ChannelMode::Lazy,
                &SpeedProfile::Fixed(50.0),
                &streams,
            ));
        };
        let mut a = TerminalColumns::new(FrameClock::paper_default(), ChannelMode::Lazy);
        let mut b = TerminalColumns::new(FrameClock::paper_default(), ChannelMode::Lazy);
        for i in 0..6u32 {
            let class = if i % 2 == 0 {
                TerminalClass::Voice
            } else {
                TerminalClass::Data
            };
            mk(&mut a, i, class);
            mk(&mut b, i, class);
        }
        let mut batched = vec![FrameTraffic::default(); 6];
        for k in 0..3_000u64 {
            a.begin_frame_all(k, &mut batched);
            for (i, slot) in batched.iter().enumerate() {
                assert_eq!(*slot, b.begin_frame(i, k), "frame {k} terminal {i}");
            }
        }
    }
}
