//! Campaigns: named collections of [`ScenarioSpec`]s that expand into one
//! flat list of sweep points and execute on the deterministic parallel sweep
//! workers ([`run_sweep_replicated`]).
//!
//! A campaign is the unit the benchmark registry runs: `fig11` is a campaign
//! of one spec (all six protocols x three data populations x two queue
//! variants x the voice-user grid), the CSI ablation is a campaign of three
//! specs, and so on.  The result — a [`CampaignRun`] — renders to a single
//! uniform CSV schema ([`CampaignRun::CSV_HEADER`]) whose bytes are a pure
//! function of (campaign, frame budget, replication policy): byte-identical
//! across repeats and across sweep thread counts, which
//! `tests/determinism.rs` pins.  Under a replication policy every sweep
//! point runs several independent replications on seed streams derived from
//! the point seed, and the CSV metric columns become means with 95 %
//! Student-t confidence half-widths.

use crate::json::Json;
use crate::spec::{CampaignPoint, FrameBudget, ScenarioSpec, SpecError};
use crate::sweep::{
    run_sweep_replicated, run_sweep_replicated_observed, ReplicatedResult, ReplicationPolicy,
};
use crate::RunReport;
use charisma_metrics::{capacity_at_threshold, RepsAccumulator};
use serde::{Deserialize, Serialize};

use crate::protocols::ProtocolKind;

/// A named list of scenario specs executed as one unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// Campaign name (the registry entry name, e.g. `fig11`).
    pub name: String,
    /// The specs, expanded in order.
    pub specs: Vec<ScenarioSpec>,
}

impl Campaign {
    /// An empty campaign.
    pub fn new(name: impl Into<String>) -> Self {
        Campaign {
            name: name.into(),
            specs: Vec::new(),
        }
    }

    /// Adds a spec (builder style).
    pub fn with_spec(mut self, spec: ScenarioSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Validates the campaign and every spec in it.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty() {
            return Err(SpecError("campaign name must not be empty".into()));
        }
        if self.specs.is_empty() {
            return Err(SpecError(format!(
                "campaign \"{}\" has no scenario specs",
                self.name
            )));
        }
        for (i, spec) in self.specs.iter().enumerate() {
            if self.specs[..i].iter().any(|s| s.name == spec.name) {
                return Err(SpecError(format!(
                    "campaign \"{}\" has two specs named \"{}\"",
                    self.name, spec.name
                )));
            }
            spec.validate()?;
        }
        Ok(())
    }

    /// Expands every spec into executable points, in spec order.
    pub fn expand(&self, budget: FrameBudget) -> Result<Vec<CampaignPoint>, SpecError> {
        self.validate()?;
        let mut points = Vec::new();
        for spec in &self.specs {
            points.extend(spec.expand(budget)?);
        }
        Ok(points)
    }

    /// Runs the campaign with one replication per point on up to `threads`
    /// sweep workers (0: one per core) — the historical single-replication
    /// behaviour, still used by fast tests.
    pub fn run(&self, budget: FrameBudget, threads: usize) -> Result<CampaignRun, SpecError> {
        self.run_replicated(budget, ReplicationPolicy::SINGLE, threads)
    }

    /// Runs the campaign with `default_reps` replications per point (specs
    /// may override it via their `replications` field) on up to `threads`
    /// sweep workers (0: one per core).  Rows come back in expansion order,
    /// and — because every point's replications run sequentially inside the
    /// worker that owns the point — the rendered CSV bytes are identical
    /// across repeats and across thread counts.
    pub fn run_replicated(
        &self,
        budget: FrameBudget,
        default_reps: ReplicationPolicy,
        threads: usize,
    ) -> Result<CampaignRun, SpecError> {
        default_reps.validate().map_err(SpecError)?;
        let expanded = self.expand(budget)?;
        let mut metas = Vec::with_capacity(expanded.len());
        let mut points = Vec::with_capacity(expanded.len());
        for p in expanded {
            metas.push((p.scenario, p.speed_kmh));
            points.push((p.point, p.reps.unwrap_or(default_reps)));
        }
        let results = run_sweep_replicated(points, threads);
        let rows = metas
            .into_iter()
            .zip(results)
            .map(|((scenario, speed_kmh), r)| CampaignRow {
                scenario,
                protocol: r.protocol,
                request_queue: r.report.request_queue,
                num_voice: r.report.num_voice,
                num_data: r.report.num_data,
                speed_kmh,
                load: r.load,
                report: r.report,
                stats: r.stats,
            })
            .collect();
        Ok(CampaignRun {
            campaign: self.name.clone(),
            rows,
        })
    }

    /// [`Campaign::run_replicated`] with a resume seam and a completion
    /// observer — the engine behind durable (checkpointed) campaign runs.
    ///
    /// `precomputed` must hold one slot per expanded point (in expansion
    /// order); `Some` slots are spliced in verbatim instead of being
    /// re-simulated, and `observer` sees every newly computed point (see
    /// [`run_sweep_replicated_observed`]).  Rows come back in expansion
    /// order; a `None` row is a point that never ran because the observer
    /// requested an abort.  When every slot is `None` and the observer always
    /// returns `true`, the assembled rows are exactly those of
    /// [`Campaign::run_replicated`].
    pub fn run_replicated_observed(
        &self,
        budget: FrameBudget,
        default_reps: ReplicationPolicy,
        threads: usize,
        precomputed: Vec<Option<ReplicatedResult>>,
        observer: &(dyn Fn(usize, &ReplicatedResult) -> bool + Sync),
    ) -> Result<Vec<Option<CampaignRow>>, SpecError> {
        default_reps.validate().map_err(SpecError)?;
        let expanded = self.expand(budget)?;
        if expanded.len() != precomputed.len() {
            return Err(SpecError(format!(
                "campaign \"{}\" expands to {} points but {} precomputed slots were supplied",
                self.name,
                expanded.len(),
                precomputed.len()
            )));
        }
        let mut metas = Vec::with_capacity(expanded.len());
        let mut points = Vec::with_capacity(expanded.len());
        for p in expanded {
            metas.push((p.scenario, p.speed_kmh));
            points.push((p.point, p.reps.unwrap_or(default_reps)));
        }
        let results = run_sweep_replicated_observed(points, threads, precomputed, observer);
        Ok(metas
            .into_iter()
            .zip(results)
            .map(|((scenario, speed_kmh), r)| {
                r.map(|r| CampaignRow {
                    scenario,
                    protocol: r.protocol,
                    request_queue: r.report.request_queue,
                    num_voice: r.report.num_voice,
                    num_data: r.report.num_data,
                    speed_kmh,
                    load: r.load,
                    report: r.report,
                    stats: r.stats,
                })
            })
            .collect())
    }

    /// The distinct master seeds the campaign's points will use (for the run
    /// manifest).
    pub fn seeds(&self) -> Vec<u64> {
        let mut seeds: Vec<u64> = Vec::new();
        for spec in &self.specs {
            let s = spec.effective_seed();
            if !seeds.contains(&s) {
                seeds.push(s);
            }
        }
        seeds
    }

    /// Serialises the campaign (name + specs) to JSON.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".into(), Json::Str(self.name.clone())),
            (
                "scenarios".into(),
                Json::Array(self.specs.iter().map(|s| s.to_json()).collect()),
            ),
        ])
    }

    /// The JSON text form of the campaign (deterministic bytes).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Decodes a campaign from JSON, rejecting unknown keys and validating
    /// the result.
    pub fn from_json(value: &Json) -> Result<Self, SpecError> {
        let pairs = value.as_object().ok_or_else(|| {
            SpecError(format!(
                "campaign must be an object, got {}",
                value.type_name()
            ))
        })?;
        let mut name: Option<String> = None;
        let mut specs = Vec::new();
        for (key, v) in pairs {
            match key.as_str() {
                "name" => {
                    name = Some(
                        v.as_str()
                            .ok_or_else(|| SpecError("campaign \"name\" must be a string".into()))?
                            .to_string(),
                    );
                }
                "scenarios" => {
                    let items = v.as_array().ok_or_else(|| {
                        SpecError("campaign \"scenarios\" must be an array".into())
                    })?;
                    specs = items
                        .iter()
                        .map(ScenarioSpec::from_json)
                        .collect::<Result<Vec<_>, _>>()?;
                }
                unknown => {
                    return Err(SpecError(format!("unknown key \"{unknown}\" in campaign")));
                }
            }
        }
        let campaign = Campaign {
            name: name.ok_or_else(|| SpecError("campaign is missing \"name\"".into()))?,
            specs,
        };
        campaign.validate()?;
        Ok(campaign)
    }

    /// Decodes a campaign from JSON text (see [`Campaign::from_json`]).
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        let value = Json::parse(text).map_err(|e| SpecError(e.to_string()))?;
        Self::from_json(&value)
    }
}

/// One executed campaign point with its coordinates and full report.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Name of the spec the row came from.
    pub scenario: String,
    /// The protocol simulated.
    pub protocol: ProtocolKind,
    /// Whether the base-station request queue was enabled.
    pub request_queue: bool,
    /// Number of voice terminals.
    pub num_voice: u32,
    /// Number of data terminals.
    pub num_data: u32,
    /// Mean terminal speed of the point.
    pub speed_kmh: f64,
    /// The independent variable of the point.
    pub load: f64,
    /// Replication 0's full run report (seeded with the point seed itself).
    pub report: RunReport,
    /// Across-replication statistics of the headline metrics.
    pub stats: RepsAccumulator,
}

impl CampaignRow {
    /// Number of replications behind this row.
    pub fn reps(&self) -> u64 {
        self.stats.reps()
    }

    /// Mean voice packet loss rate across replications.
    pub fn voice_loss_mean(&self) -> f64 {
        self.stats.voice_loss().mean()
    }

    /// Mean data throughput (packets per frame) across replications.
    pub fn data_throughput_mean(&self) -> f64 {
        self.stats.data_throughput().mean()
    }

    /// Mean data throughput per data terminal per frame across replications.
    pub fn data_throughput_per_user_mean(&self) -> f64 {
        if self.num_data == 0 {
            0.0
        } else {
            self.data_throughput_mean() / self.num_data as f64
        }
    }

    /// Mean data access delay (seconds) across replications.
    pub fn data_delay_mean(&self) -> f64 {
        self.stats.data_delay().mean()
    }
}

/// The executed campaign: rows in expansion order.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRun {
    /// Name of the campaign that produced the rows.
    pub campaign: String,
    /// One row per executed sweep point, in expansion order.
    pub rows: Vec<CampaignRow>,
}

impl CampaignRun {
    /// The uniform CSV schema every sweep campaign renders to.  Metric
    /// columns are means across the point's replications, each followed by
    /// the half-width of its 95 % Student-t confidence interval (0 when the
    /// point ran a single replication).
    pub const CSV_HEADER: &'static str = "scenario,protocol,request_queue,num_voice,num_data,\
                                          speed_kmh,load,reps,\
                                          voice_loss_rate,voice_loss_ci95,\
                                          data_throughput_per_frame,data_throughput_ci95,\
                                          data_delay_s,data_delay_ci95";

    /// The CSV data rows (no header), deterministically formatted.
    pub fn csv_rows(&self) -> Vec<String> {
        self.rows
            .iter()
            .map(|r| {
                format!(
                    "{},{},{},{},{},{:.2},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
                    r.scenario,
                    r.protocol.label(),
                    r.request_queue,
                    r.num_voice,
                    r.num_data,
                    r.speed_kmh,
                    r.load,
                    r.reps(),
                    r.voice_loss_mean(),
                    r.stats.voice_loss().ci95_half_width(),
                    r.data_throughput_mean(),
                    r.stats.data_throughput().ci95_half_width(),
                    r.data_delay_mean(),
                    r.stats.data_delay().ci95_half_width(),
                )
            })
            .collect()
    }

    /// The complete CSV document (header + rows + trailing newline).  The
    /// bytes are a pure function of (campaign, frame budget) — see the module
    /// docs.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::CSV_HEADER);
        out.push('\n');
        for row in self.csv_rows() {
            out.push_str(&row);
            out.push('\n');
        }
        out
    }

    /// The rows of one curve — a fixed (scenario, protocol, queue) series —
    /// as `(load, f(report))` pairs in load order, ready for
    /// [`capacity_at_threshold`].
    pub fn curve<F: Fn(&CampaignRow) -> f64>(
        &self,
        scenario: &str,
        protocol: ProtocolKind,
        request_queue: bool,
        num_other: Option<(u32, bool)>,
        metric: F,
    ) -> Vec<(f64, f64)> {
        let mut pts: Vec<(f64, f64)> = self
            .rows
            .iter()
            .filter(|r| {
                r.scenario == scenario && r.protocol == protocol && r.request_queue == request_queue
            })
            .filter(|r| match num_other {
                // (count, true): fix the data population; (count, false): voice.
                Some((n, true)) => r.num_data == n,
                Some((n, false)) => r.num_voice == n,
                None => true,
            })
            .map(|r| (r.load, metric(r)))
            .collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        pts
    }

    /// Capacity (largest load meeting `threshold`) along one curve; see
    /// [`capacity_at_threshold`].
    pub fn capacity(
        &self,
        scenario: &str,
        protocol: ProtocolKind,
        request_queue: bool,
        num_other: Option<(u32, bool)>,
        metric: impl Fn(&CampaignRow) -> f64,
        threshold: f64,
    ) -> Option<f64> {
        let curve = self.curve(scenario, protocol, request_queue, num_other, metric);
        if curve.is_empty() {
            return None;
        }
        capacity_at_threshold(&curve, threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Axis, QueueToggle};

    fn tiny_budget() -> FrameBudget {
        FrameBudget {
            warmup: 100,
            measured: 800,
        }
    }

    fn tiny_campaign() -> Campaign {
        let mut spec = ScenarioSpec::new("tiny");
        spec.protocols = vec![ProtocolKind::Charisma, ProtocolKind::DTdmaFr];
        spec.axis = Axis::VoiceUsers;
        spec.voice_users = vec![5, 10];
        spec.data_users = vec![0, 2];
        spec.request_queue = QueueToggle::Both;
        Campaign::new("tiny-campaign").with_spec(spec)
    }

    #[test]
    fn run_produces_rows_in_expansion_order() {
        let campaign = tiny_campaign();
        let expanded = campaign.expand(tiny_budget()).unwrap();
        let run = campaign.run(tiny_budget(), 2).unwrap();
        assert_eq!(run.rows.len(), expanded.len());
        for (row, point) in run.rows.iter().zip(&expanded) {
            assert_eq!(row.scenario, point.scenario);
            assert_eq!(row.protocol, point.point.protocol);
            assert_eq!(row.load, point.point.load);
            assert_eq!(row.num_voice, point.point.config.num_voice);
            assert_eq!(row.report.protocol, point.point.protocol);
        }
    }

    #[test]
    fn csv_bytes_are_identical_across_thread_counts() {
        let campaign = tiny_campaign();
        let serial = campaign.run(tiny_budget(), 1).unwrap().to_csv();
        let parallel = campaign.run(tiny_budget(), 4).unwrap().to_csv();
        assert_eq!(serial, parallel);
        assert!(serial.starts_with(CampaignRun::CSV_HEADER));
    }

    #[test]
    fn replicated_run_accumulates_and_stays_deterministic() {
        let campaign = tiny_campaign();
        let policy = ReplicationPolicy::fixed(3);
        let a = campaign.run_replicated(tiny_budget(), policy, 1).unwrap();
        let b = campaign.run_replicated(tiny_budget(), policy, 3).unwrap();
        assert_eq!(a, b, "replicated campaign must not depend on threads");
        assert!(a.rows.iter().all(|r| r.reps() == 3));
        // CSV carries the reps column and both CI columns.
        let csv = a.to_csv();
        assert!(csv.starts_with(CampaignRun::CSV_HEADER));
        assert!(CampaignRun::CSV_HEADER.contains("reps,voice_loss_rate,voice_loss_ci95"));
        for line in csv.lines().skip(1) {
            assert_eq!(
                line.split(',').count(),
                CampaignRun::CSV_HEADER.split(',').count(),
                "row width must match the header: {line}"
            );
            assert_eq!(line.split(',').nth(7), Some("3"), "reps column: {line}");
        }
        // A single-replication run is the degenerate case: same report,
        // zero-width intervals.
        let single = campaign.run(tiny_budget(), 1).unwrap();
        for (r3, r1) in a.rows.iter().zip(&single.rows) {
            assert_eq!(r3.report, r1.report, "replication 0 is the legacy run");
            assert_eq!(r1.reps(), 1);
            assert_eq!(r1.stats.voice_loss().ci95_half_width(), 0.0);
        }
        // An invalid default policy is rejected up front.
        assert!(campaign
            .run_replicated(tiny_budget(), ReplicationPolicy::fixed(0), 1)
            .is_err());
    }

    #[test]
    fn observed_run_with_blank_slots_matches_run_replicated() {
        let campaign = tiny_campaign();
        let policy = ReplicationPolicy::fixed(2);
        let full = campaign.run_replicated(tiny_budget(), policy, 1).unwrap();
        let blank = (0..full.rows.len()).map(|_| None).collect();
        let rows = campaign
            .run_replicated_observed(tiny_budget(), policy, 2, blank, &|_, _| true)
            .unwrap();
        let rows: Vec<CampaignRow> = rows.into_iter().map(Option::unwrap).collect();
        assert_eq!(rows, full.rows);
        // The slot count is validated against the expansion.
        assert!(campaign
            .run_replicated_observed(tiny_budget(), policy, 1, Vec::new(), &|_, _| true)
            .is_err());
    }

    #[test]
    fn campaign_json_round_trips() {
        let campaign = tiny_campaign();
        let text = campaign.to_json_string();
        let back = Campaign::from_json_str(&text).unwrap();
        assert_eq!(back, campaign);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn campaign_rejects_duplicate_spec_names_and_unknown_keys() {
        let mut campaign = tiny_campaign();
        campaign.specs.push(campaign.specs[0].clone());
        assert!(campaign.validate().is_err());
        assert!(Campaign::from_json_str(r#"{"name": "x", "extra": 1}"#).is_err());
        assert!(Campaign::from_json_str(r#"{"name": "x", "scenarios": []}"#).is_err());
    }

    #[test]
    fn curves_filter_and_sort_by_load() {
        let campaign = tiny_campaign();
        let run = campaign.run(tiny_budget(), 0).unwrap();
        let curve = run.curve(
            "tiny",
            ProtocolKind::Charisma,
            false,
            Some((0, true)),
            |r| r.report.voice_loss_rate(),
        );
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].0, 5.0);
        assert_eq!(curve[1].0, 10.0);
        // The capacity helper runs on the same curve without panicking.
        let _ = run.capacity(
            "tiny",
            ProtocolKind::Charisma,
            false,
            Some((0, true)),
            |r| r.report.voice_loss_rate(),
            0.01,
        );
    }

    #[test]
    fn seeds_reports_the_distinct_effective_seeds() {
        let mut campaign = tiny_campaign();
        assert_eq!(campaign.seeds(), vec![SimConfigSeed::default_seed()]);
        let mut second = campaign.specs[0].clone();
        second.name = "tiny-2".into();
        second.seed = Some(7);
        campaign.specs.push(second);
        assert_eq!(campaign.seeds(), vec![SimConfigSeed::default_seed(), 7]);
    }

    /// Small helper so the test reads clearly.
    struct SimConfigSeed;
    impl SimConfigSeed {
        fn default_seed() -> u64 {
            crate::SimConfig::default_paper().seed
        }
    }
}
