//! Multi-threaded parameter sweeps.
//!
//! Every point of a sweep (a protocol × load × queue-variant combination) is
//! an independent simulation with its own deterministic random streams, so
//! the sweep is embarrassingly parallel: the result vector is pre-split into
//! one exclusive `&mut` cell per point, the cells are dealt round-robin to a
//! scoped worker pool (one worker per available core), and every worker
//! writes straight into its own cells — no shared lock, no contention, and
//! results land in the original point order by construction.

use crate::config::SimConfig;
use crate::protocols::ProtocolKind;
use crate::scenario::{RunReport, Scenario};
use serde::{Deserialize, Serialize};

/// One point of a sweep: a full scenario configuration plus the protocol to
/// run on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Label of the independent variable (e.g. the number of voice users).
    pub load: f64,
    /// The protocol to simulate.
    pub protocol: ProtocolKind,
    /// The scenario configuration for this point.
    pub config: SimConfig,
}

/// The result of one sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// The independent variable of the point.
    pub load: f64,
    /// The protocol that was simulated.
    pub protocol: ProtocolKind,
    /// The run report.
    pub report: RunReport,
}

/// Runs all sweep points, using up to `threads` worker threads (0 ⇒ one per
/// available core).  Results are returned in the same order as `points`.
pub fn run_sweep(points: Vec<SweepPoint>, threads: usize) -> Vec<SweepResult> {
    if points.is_empty() {
        return Vec::new();
    }
    let worker_count = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(points.len());

    if worker_count <= 1 {
        return points
            .into_iter()
            .map(|p| SweepResult {
                load: p.load,
                protocol: p.protocol,
                report: Scenario::new(p.config).run(p.protocol),
            })
            .collect();
    }

    // Pre-split the result vector: each point gets its own exclusive slot, so
    // workers write results without ever touching a shared lock.  Cells are
    // dealt round-robin, which also interleaves cheap and expensive points
    // (sweeps typically order points by increasing load) across workers.
    let mut results: Vec<Option<SweepResult>> = (0..points.len()).map(|_| None).collect();
    let mut buckets: Vec<Vec<(&SweepPoint, &mut Option<SweepResult>)>> =
        (0..worker_count).map(|_| Vec::new()).collect();
    for (idx, (point, slot)) in points.iter().zip(results.iter_mut()).enumerate() {
        buckets[idx % worker_count].push((point, slot));
    }

    std::thread::scope(|scope| {
        for bucket in buckets {
            scope.spawn(move || {
                for (point, slot) in bucket {
                    let report = Scenario::new(point.config.clone()).run(point.protocol);
                    *slot = Some(SweepResult {
                        load: point.load,
                        protocol: point.protocol,
                        report,
                    });
                }
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every sweep point must produce a result"))
        .collect()
}

/// Builds the sweep points for one protocol over a range of voice-user
/// counts (the independent variable of the paper's Fig. 11), holding the
/// number of data users fixed.
pub fn voice_load_sweep(
    base: &SimConfig,
    protocol: ProtocolKind,
    voice_counts: &[u32],
    num_data: u32,
    request_queue: bool,
) -> Vec<SweepPoint> {
    voice_counts
        .iter()
        .map(|&nv| {
            let mut config = base.clone();
            config.num_voice = nv;
            config.num_data = num_data;
            config.request_queue = request_queue && protocol.supports_request_queue();
            SweepPoint {
                load: nv as f64,
                protocol,
                config,
            }
        })
        .collect()
}

/// Builds the sweep points for one protocol over a range of data-user counts
/// (the independent variable of the paper's Figs. 12 and 13), holding the
/// number of voice users fixed.
pub fn data_load_sweep(
    base: &SimConfig,
    protocol: ProtocolKind,
    data_counts: &[u32],
    num_voice: u32,
    request_queue: bool,
) -> Vec<SweepPoint> {
    data_counts
        .iter()
        .map(|&nd| {
            let mut config = base.clone();
            config.num_voice = num_voice;
            config.num_data = nd;
            config.request_queue = request_queue && protocol.supports_request_queue();
            SweepPoint {
                load: nd as f64,
                protocol,
                config,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SimConfig {
        let mut cfg = SimConfig::quick_test();
        cfg.warmup_frames = 200;
        cfg.measured_frames = 1_200;
        cfg
    }

    #[test]
    fn sweep_preserves_point_order_and_loads() {
        let base = tiny_config();
        let points = voice_load_sweep(&base, ProtocolKind::DTdmaFr, &[5, 10, 15], 0, false);
        let results = run_sweep(points, 3);
        let loads: Vec<f64> = results.iter().map(|r| r.load).collect();
        assert_eq!(loads, vec![5.0, 10.0, 15.0]);
        for r in &results {
            assert_eq!(r.protocol, ProtocolKind::DTdmaFr);
            assert_eq!(r.report.num_data, 0);
        }
    }

    #[test]
    fn parallel_and_serial_sweeps_agree() {
        let base = tiny_config();
        let points = voice_load_sweep(&base, ProtocolKind::Charisma, &[4, 8], 1, true);
        let serial = run_sweep(points.clone(), 1);
        let parallel = run_sweep(points, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                s.report, p.report,
                "parallel execution must not change results"
            );
        }
    }

    #[test]
    fn rmav_never_gets_a_request_queue() {
        let base = tiny_config();
        let points = data_load_sweep(&base, ProtocolKind::Rmav, &[2, 4], 0, true);
        for p in &points {
            assert!(!p.config.request_queue, "RMAV has no request-queue variant");
        }
    }

    #[test]
    fn data_sweep_sets_voice_count() {
        let base = tiny_config();
        let points = data_load_sweep(&base, ProtocolKind::Drma, &[1, 2, 3], 7, false);
        assert!(points.iter().all(|p| p.config.num_voice == 7));
        assert_eq!(
            points.iter().map(|p| p.load).collect::<Vec<_>>(),
            vec![1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn empty_sweep_is_fine() {
        assert!(run_sweep(Vec::new(), 4).is_empty());
    }
}
