//! Multi-threaded, replication-aware parameter sweeps.
//!
//! Every point of a sweep (a protocol × load × queue-variant combination) is
//! an independent simulation with its own deterministic random streams, so
//! the sweep is embarrassingly parallel: the result vector is pre-split into
//! one exclusive `&mut` cell per point, the cells are dealt round-robin to a
//! scoped worker pool (one worker per available core), and every worker
//! writes straight into its own cells — no shared lock, no contention, and
//! results land in the original point order by construction.
//!
//! A point may run more than one **replication**: independent repeats of the
//! same configuration on per-replication seed streams derived from the point
//! seed ([`SimConfig::replication_seed`]).  All replications of a point run
//! sequentially inside the worker that owns the point — including the
//! optional sequential stopping rule of [`ReplicationPolicy`] — so the
//! replication count and every accumulated statistic are a pure function of
//! (point, policy), independent of the sweep thread count.

use crate::config::SimConfig;
use crate::protocols::ProtocolKind;
use crate::scenario::{RunReport, Scenario};
use charisma_metrics::RepsAccumulator;
use serde::{Deserialize, Serialize};

/// How many independent replications each sweep point runs.
///
/// `min_reps` replications always run.  When `target_rel_ci95` is set, the
/// sequential stopping rule then keeps adding replications — one at a time,
/// up to `max_reps` — until the relative 95 % Student-t confidence half-width
/// of every headline metric (voice loss, data throughput, data delay) is at
/// or below the target.  Without a target exactly `min_reps` replications
/// run and `max_reps` is ignored beyond validation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicationPolicy {
    /// Replications always executed (≥ 1).
    pub min_reps: u32,
    /// Hard cap on replications when the stopping rule is active (≥ min).
    pub max_reps: u32,
    /// Optional stopping-rule target for the relative CI95 half-width.
    pub target_rel_ci95: Option<f64>,
}

impl ReplicationPolicy {
    /// One replication per point — the historical behaviour of `run_sweep`.
    pub const SINGLE: ReplicationPolicy = ReplicationPolicy {
        min_reps: 1,
        max_reps: 1,
        target_rel_ci95: None,
    };

    /// Exactly `reps` replications, no stopping rule.
    pub fn fixed(reps: u32) -> Self {
        ReplicationPolicy {
            min_reps: reps,
            max_reps: reps,
            target_rel_ci95: None,
        }
    }

    /// `min`..=`max` replications with the sequential stopping rule at
    /// relative CI95 half-width `target`.
    pub fn adaptive(min_reps: u32, max_reps: u32, target_rel_ci95: f64) -> Self {
        ReplicationPolicy {
            min_reps,
            max_reps,
            target_rel_ci95: Some(target_rel_ci95),
        }
    }

    /// A one-line human-readable summary (`campaign list`/`describe` and the
    /// handbook preamble print this, so CLI and docs agree by construction).
    pub fn describe(&self) -> String {
        match self.target_rel_ci95 {
            None if self.min_reps == 1 => "1 replication".into(),
            None => format!("{} replications (fixed)", self.min_reps),
            Some(target) => format!(
                "{}-{} replications, stop at rel-CI95 <= {:.0}%",
                self.min_reps,
                self.max_reps,
                target * 100.0
            ),
        }
    }

    /// Validates the policy.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_reps == 0 {
            return Err("replication policy needs at least one replication".into());
        }
        if self.max_reps < self.min_reps {
            return Err(format!(
                "replication max_reps ({}) is below min_reps ({})",
                self.max_reps, self.min_reps
            ));
        }
        if let Some(t) = self.target_rel_ci95 {
            if !(t.is_finite() && t > 0.0) {
                return Err(format!(
                    "replication target_rel_ci95 must be a positive finite number, got {t}"
                ));
            }
        }
        Ok(())
    }
}

impl Default for ReplicationPolicy {
    fn default() -> Self {
        Self::SINGLE
    }
}

/// One point of a sweep: a full scenario configuration plus the protocol to
/// run on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Label of the independent variable (e.g. the number of voice users).
    pub load: f64,
    /// The protocol to simulate.
    pub protocol: ProtocolKind,
    /// The scenario configuration for this point.
    pub config: SimConfig,
}

/// The result of one sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// The independent variable of the point.
    pub load: f64,
    /// The protocol that was simulated.
    pub protocol: ProtocolKind,
    /// The run report.
    pub report: RunReport,
}

/// The result of one sweep point executed under a [`ReplicationPolicy`]:
/// replication 0's full report plus the across-replication accumulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedResult {
    /// The independent variable of the point.
    pub load: f64,
    /// The protocol that was simulated.
    pub protocol: ProtocolKind,
    /// Replication 0's full report (its seed is the point seed itself, so a
    /// single-replication sweep reproduces the historical sample path).
    pub report: RunReport,
    /// Mean/CI statistics of the headline metrics across all replications.
    pub stats: RepsAccumulator,
}

/// Runs one point's replications sequentially, applying the stopping rule.
fn run_point(point: &SweepPoint, policy: ReplicationPolicy) -> ReplicatedResult {
    let mut stats = RepsAccumulator::new();
    let mut first: Option<RunReport> = None;
    let mut rep: u32 = 0;
    loop {
        let mut config = point.config.clone();
        config.seed = point.config.replication_seed(rep);
        let report = Scenario::new(config).run(point.protocol);
        stats.push(&report.metrics);
        if first.is_none() {
            first = Some(report);
        }
        rep += 1;
        if rep < policy.min_reps {
            continue;
        }
        match policy.target_rel_ci95 {
            None => break,
            Some(target) => {
                if rep >= policy.max_reps || stats.within_target(target) {
                    break;
                }
            }
        }
    }
    ReplicatedResult {
        load: point.load,
        protocol: point.protocol,
        report: first.expect("at least one replication ran"),
        stats,
    }
}

/// Runs all sweep points, using up to `threads` worker threads (0 ⇒ one per
/// available core).  Results are returned in the same order as `points`.
pub fn run_sweep(points: Vec<SweepPoint>, threads: usize) -> Vec<SweepResult> {
    let points = points
        .into_iter()
        .map(|p| (p, ReplicationPolicy::SINGLE))
        .collect();
    run_sweep_replicated(points, threads)
        .into_iter()
        .map(|r| SweepResult {
            load: r.load,
            protocol: r.protocol,
            report: r.report,
        })
        .collect()
}

/// Runs all sweep points with their replication policies, using up to
/// `threads` worker threads (0 ⇒ one per available core).  Results are
/// returned in the same order as `points`, and — because all replications of
/// a point run inside the worker that owns the point — are byte-identical
/// across thread counts.
///
/// This is *inter*-point parallelism.  Multi-cell points can additionally
/// parallelise *within* a point via [`SystemConfig::threads`]
/// (`system_threads` in scenario specs), which shards the cells of one
/// frame across workers on the deterministic wavefront documented in
/// [`crate::system`]; both levels compose and neither changes output bytes.
///
/// [`SystemConfig::threads`]: crate::config::SystemConfig::threads
pub fn run_sweep_replicated(
    points: Vec<(SweepPoint, ReplicationPolicy)>,
    threads: usize,
) -> Vec<ReplicatedResult> {
    let blank: Vec<Option<ReplicatedResult>> = (0..points.len()).map(|_| None).collect();
    run_sweep_replicated_observed(points, threads, blank, &|_, _| true)
        .into_iter()
        .map(|r| r.expect("every sweep point must produce a result"))
        .collect()
}

/// [`run_sweep_replicated`] with a resume seam and a completion observer —
/// the execution engine behind durable (checkpointed) campaigns.
///
/// * `precomputed` must be one slot per point.  A `Some` slot is a point
///   already completed by an earlier (interrupted) run: it is returned
///   verbatim, never re-simulated and never observed.  Because every point's
///   result is a pure function of (point, policy), splicing checkpointed
///   results in this way reproduces an uninterrupted sweep bit for bit.
/// * `observer` is called once per *newly computed* point with the point's
///   index in `points` and its result, from whichever worker thread finished
///   it (callers needing order must use the index).  Returning `false`
///   requests a cooperative abort: no worker starts another point, though
///   points already in flight on other workers still complete and are
///   observed.  Aborted (never-started) points come back as `None`.
///
/// Replications of a point still run sequentially inside one worker, so the
/// computed results — and therefore the observer's view of them — are
/// byte-identical across thread counts.
pub fn run_sweep_replicated_observed(
    points: Vec<(SweepPoint, ReplicationPolicy)>,
    threads: usize,
    precomputed: Vec<Option<ReplicatedResult>>,
    observer: &(dyn Fn(usize, &ReplicatedResult) -> bool + Sync),
) -> Vec<Option<ReplicatedResult>> {
    use std::sync::atomic::{AtomicBool, Ordering};

    assert_eq!(
        points.len(),
        precomputed.len(),
        "one precomputed slot per sweep point"
    );
    if points.is_empty() {
        return Vec::new();
    }
    let pending = precomputed.iter().filter(|r| r.is_none()).count();
    let worker_count = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(pending.max(1));

    let mut results = precomputed;
    let abort = AtomicBool::new(false);

    if worker_count <= 1 {
        for (idx, ((point, policy), slot)) in points.iter().zip(results.iter_mut()).enumerate() {
            if slot.is_some() {
                continue;
            }
            if abort.load(Ordering::Relaxed) {
                break;
            }
            let result = run_point(point, *policy);
            if !observer(idx, &result) {
                abort.store(true, Ordering::Relaxed);
            }
            *slot = Some(result);
        }
        return results;
    }

    // Pre-split the result vector: each pending point gets its own exclusive
    // slot, so workers write results without ever touching a shared lock.
    // Cells are dealt round-robin, which also interleaves cheap and expensive
    // points (sweeps typically order points by increasing load) across
    // workers.
    type Cell<'a> = (
        usize,
        &'a (SweepPoint, ReplicationPolicy),
        &'a mut Option<ReplicatedResult>,
    );
    let mut buckets: Vec<Vec<Cell<'_>>> = (0..worker_count).map(|_| Vec::new()).collect();
    let mut dealt = 0usize;
    for (idx, (point, slot)) in points.iter().zip(results.iter_mut()).enumerate() {
        if slot.is_some() {
            continue;
        }
        buckets[dealt % worker_count].push((idx, point, slot));
        dealt += 1;
    }

    let abort = &abort;
    std::thread::scope(|scope| {
        for bucket in buckets {
            scope.spawn(move || {
                for (idx, (point, policy), slot) in bucket {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let result = run_point(point, *policy);
                    if !observer(idx, &result) {
                        abort.store(true, Ordering::Relaxed);
                    }
                    *slot = Some(result);
                }
            });
        }
    });

    results
}

/// Builds the sweep points for one protocol over a range of voice-user
/// counts (the independent variable of the paper's Fig. 11), holding the
/// number of data users fixed.
pub fn voice_load_sweep(
    base: &SimConfig,
    protocol: ProtocolKind,
    voice_counts: &[u32],
    num_data: u32,
    request_queue: bool,
) -> Vec<SweepPoint> {
    voice_counts
        .iter()
        .map(|&nv| {
            let mut config = base.clone();
            config.num_voice = nv;
            config.num_data = num_data;
            config.request_queue = request_queue && protocol.supports_request_queue();
            SweepPoint {
                load: nv as f64,
                protocol,
                config,
            }
        })
        .collect()
}

/// Builds the sweep points for one protocol over a range of data-user counts
/// (the independent variable of the paper's Figs. 12 and 13), holding the
/// number of voice users fixed.
pub fn data_load_sweep(
    base: &SimConfig,
    protocol: ProtocolKind,
    data_counts: &[u32],
    num_voice: u32,
    request_queue: bool,
) -> Vec<SweepPoint> {
    data_counts
        .iter()
        .map(|&nd| {
            let mut config = base.clone();
            config.num_voice = num_voice;
            config.num_data = nd;
            config.request_queue = request_queue && protocol.supports_request_queue();
            SweepPoint {
                load: nd as f64,
                protocol,
                config,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SimConfig {
        let mut cfg = SimConfig::quick_test();
        cfg.warmup_frames = 200;
        cfg.measured_frames = 1_200;
        cfg
    }

    #[test]
    fn sweep_preserves_point_order_and_loads() {
        let base = tiny_config();
        let points = voice_load_sweep(&base, ProtocolKind::DTdmaFr, &[5, 10, 15], 0, false);
        let results = run_sweep(points, 3);
        let loads: Vec<f64> = results.iter().map(|r| r.load).collect();
        assert_eq!(loads, vec![5.0, 10.0, 15.0]);
        for r in &results {
            assert_eq!(r.protocol, ProtocolKind::DTdmaFr);
            assert_eq!(r.report.num_data, 0);
        }
    }

    #[test]
    fn parallel_and_serial_sweeps_agree() {
        let base = tiny_config();
        let points = voice_load_sweep(&base, ProtocolKind::Charisma, &[4, 8], 1, true);
        let serial = run_sweep(points.clone(), 1);
        let parallel = run_sweep(points, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                s.report, p.report,
                "parallel execution must not change results"
            );
        }
    }

    #[test]
    fn rmav_never_gets_a_request_queue() {
        let base = tiny_config();
        let points = data_load_sweep(&base, ProtocolKind::Rmav, &[2, 4], 0, true);
        for p in &points {
            assert!(!p.config.request_queue, "RMAV has no request-queue variant");
        }
    }

    #[test]
    fn data_sweep_sets_voice_count() {
        let base = tiny_config();
        let points = data_load_sweep(&base, ProtocolKind::Drma, &[1, 2, 3], 7, false);
        assert!(points.iter().all(|p| p.config.num_voice == 7));
        assert_eq!(
            points.iter().map(|p| p.load).collect::<Vec<_>>(),
            vec![1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn empty_sweep_is_fine() {
        assert!(run_sweep(Vec::new(), 4).is_empty());
        assert!(run_sweep_replicated(Vec::new(), 4).is_empty());
    }

    #[test]
    fn replication_policy_validation() {
        assert!(ReplicationPolicy::SINGLE.validate().is_ok());
        assert!(ReplicationPolicy::fixed(3).validate().is_ok());
        assert!(ReplicationPolicy::adaptive(3, 8, 0.1).validate().is_ok());
        assert!(ReplicationPolicy::fixed(0).validate().is_err());
        assert!(ReplicationPolicy::adaptive(4, 2, 0.1).validate().is_err());
        assert!(ReplicationPolicy::adaptive(2, 4, 0.0).validate().is_err());
        assert!(ReplicationPolicy::adaptive(2, 4, f64::NAN)
            .validate()
            .is_err());
    }

    #[test]
    fn single_policy_reproduces_the_legacy_sweep() {
        let base = tiny_config();
        let points = voice_load_sweep(&base, ProtocolKind::Charisma, &[8], 2, false);
        let legacy = run_sweep(points.clone(), 1);
        let replicated = run_sweep_replicated(
            points
                .into_iter()
                .map(|p| (p, ReplicationPolicy::SINGLE))
                .collect(),
            1,
        );
        assert_eq!(replicated.len(), legacy.len());
        assert_eq!(replicated[0].report, legacy[0].report);
        assert_eq!(replicated[0].stats.reps(), 1);
        // With one replication the mean is replication 0's own metric.
        assert_eq!(
            replicated[0].stats.voice_loss().mean(),
            legacy[0].report.voice_loss_rate()
        );
        assert_eq!(replicated[0].stats.voice_loss().ci95_half_width(), 0.0);
    }

    #[test]
    fn replications_use_distinct_seed_streams_and_average_them() {
        let base = tiny_config();
        let points = voice_load_sweep(&base, ProtocolKind::DTdmaFr, &[30], 2, false);
        let point = points[0].clone();
        let results = run_sweep_replicated(vec![(point.clone(), ReplicationPolicy::fixed(3))], 1);
        let r = &results[0];
        assert_eq!(r.stats.reps(), 3);

        // The accumulator mean must equal the average of three standalone
        // runs on the derived replication seeds.
        let mut manual = 0.0;
        for rep in 0..3 {
            let mut cfg = point.config.clone();
            cfg.seed = point.config.replication_seed(rep);
            manual += Scenario::new(cfg).run(point.protocol).voice_loss_rate();
        }
        manual /= 3.0;
        assert!(
            (r.stats.voice_loss().mean() - manual).abs() < 1e-15,
            "accumulated {} vs manual {}",
            r.stats.voice_loss().mean(),
            manual
        );
        // Independent seeds at an overloaded operating point produce
        // replication-to-replication variance.
        assert!(r.stats.voice_loss().ci95_half_width() > 0.0);
        // Replication 0's report is the point-seed run.
        assert_eq!(r.report.seed, point.config.seed);
    }

    #[test]
    fn replicated_results_are_identical_across_thread_counts() {
        let base = tiny_config();
        let points: Vec<(SweepPoint, ReplicationPolicy)> =
            voice_load_sweep(&base, ProtocolKind::Charisma, &[10, 20, 30], 1, false)
                .into_iter()
                .map(|p| (p, ReplicationPolicy::fixed(3)))
                .collect();
        let serial = run_sweep_replicated(points.clone(), 1);
        let parallel = run_sweep_replicated(points, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn precomputed_points_are_spliced_not_resimulated() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let base = tiny_config();
        let points: Vec<(SweepPoint, ReplicationPolicy)> =
            voice_load_sweep(&base, ProtocolKind::Charisma, &[5, 10, 15], 1, false)
                .into_iter()
                .map(|p| (p, ReplicationPolicy::fixed(2)))
                .collect();
        let full = run_sweep_replicated(points.clone(), 1);

        // Hand point 1 back as "already done" and watch only 0 and 2 recompute.
        let precomputed = vec![None, Some(full[1].clone()), None];
        let observed = AtomicUsize::new(0);
        let resumed = run_sweep_replicated_observed(points, 2, precomputed, &|idx, r| {
            observed.fetch_add(1, Ordering::Relaxed);
            assert_ne!(idx, 1, "precomputed point must not be observed");
            assert_eq!(r, &full[idx]);
            true
        });
        assert_eq!(observed.load(Ordering::Relaxed), 2);
        let resumed: Vec<ReplicatedResult> = resumed.into_iter().map(Option::unwrap).collect();
        assert_eq!(
            resumed, full,
            "splice must reproduce the full sweep exactly"
        );
    }

    #[test]
    fn observer_abort_stops_starting_new_points() {
        let base = tiny_config();
        let points: Vec<(SweepPoint, ReplicationPolicy)> =
            voice_load_sweep(&base, ProtocolKind::DTdmaFr, &[5, 10, 15, 20], 0, false)
                .into_iter()
                .map(|p| (p, ReplicationPolicy::SINGLE))
                .collect();
        let blank = (0..points.len()).map(|_| None).collect();
        // Single worker: abort after the first completion is exact.
        let partial = run_sweep_replicated_observed(points, 1, blank, &|_, _| false);
        assert!(partial[0].is_some());
        assert!(partial[1..].iter().all(Option::is_none));
    }

    #[test]
    fn stopping_rule_runs_to_the_cap_when_the_target_is_unreachable() {
        let base = tiny_config();
        let points = voice_load_sweep(&base, ProtocolKind::DTdmaFr, &[30], 2, false);
        let tight = run_sweep_replicated(
            vec![(points[0].clone(), ReplicationPolicy::adaptive(2, 5, 1e-12))],
            1,
        );
        assert_eq!(
            tight[0].stats.reps(),
            5,
            "unreachable target must hit max_reps"
        );

        // A sky-high target is satisfied as soon as min_reps gives a
        // variance estimate.
        let loose = run_sweep_replicated(
            vec![(points[0].clone(), ReplicationPolicy::adaptive(2, 5, 1e12))],
            1,
        );
        assert_eq!(loose[0].stats.reps(), 2);
    }
}
