//! Bit-exact persistence of sweep results for campaign checkpoints.
//!
//! A durable campaign run writes every completed sweep point to a checkpoint
//! file and, on resume, splices the stored results back into the sweep in
//! place of re-simulation ([`run_sweep_replicated_observed`]).  For the
//! resumed run to be **byte-identical** to an uninterrupted one, the stored
//! [`ReplicatedResult`] must survive the round trip exactly — including every
//! `f64` in the Welford accumulators, whose derived CI columns are printed at
//! six decimal places and would expose any last-ulp drift.
//!
//! Decimal text cannot guarantee that for intermediate values like the `m2`
//! sums, so floats are persisted as their IEEE-754 bit patterns
//! ([`f64::to_bits`] in a [`Json::Int`]), which also round-trips the ±∞
//! sentinels of an empty accumulator and costs nothing at parse time.  The
//! decoder is strict in the same spirit as the scenario-spec codec: unknown
//! keys, missing keys and type mismatches are errors, never silently
//! defaulted — a checkpoint that does not decode cleanly must not be resumed
//! from.
//!
//! [`run_sweep_replicated_observed`]: crate::sweep::run_sweep_replicated_observed

use crate::json::Json;
use crate::protocols::ProtocolKind;
use crate::scenario::RunReport;
use crate::sweep::ReplicatedResult;
use charisma_metrics::{
    CellCounters, ContentionStats, DataStats, HandoffStats, RepsAccumulator, RunMetrics,
    RunningStat, SlotStats, VoiceStats,
};
use std::fmt;

/// A checkpoint encode/decode failure (strict codec: unknown keys, missing
/// keys and type mismatches all land here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError(pub String);

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint codec error: {}", self.0)
    }
}

impl std::error::Error for PersistError {}

/// FNV-1a 64-bit hash — the integrity check on checkpoint records.  Not
/// cryptographic; it guards against truncated writes and accidental edits,
/// not adversaries.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Strict field cursor over a JSON object: every key must be consumed exactly
/// once, so unknown and missing keys are both hard errors.
struct Fields<'a> {
    ctx: &'static str,
    pairs: &'a [(String, Json)],
    used: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn new(ctx: &'static str, v: &'a Json) -> Result<Self, PersistError> {
        let pairs = v.as_object().ok_or_else(|| {
            PersistError(format!("{ctx} must be an object, got {}", v.type_name()))
        })?;
        Ok(Fields {
            ctx,
            pairs,
            used: vec![false; pairs.len()],
        })
    }

    fn take(&mut self, key: &str) -> Result<&'a Json, PersistError> {
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if k == key {
                self.used[i] = true;
                return Ok(v);
            }
        }
        Err(PersistError(format!("{} is missing \"{key}\"", self.ctx)))
    }

    fn u64(&mut self, key: &str) -> Result<u64, PersistError> {
        let ctx = self.ctx;
        self.take(key)?
            .as_u64()
            .ok_or_else(|| PersistError(format!("{ctx} \"{key}\" must be an integer")))
    }

    fn u32(&mut self, key: &str) -> Result<u32, PersistError> {
        let ctx = self.ctx;
        u32::try_from(self.u64(key)?)
            .map_err(|_| PersistError(format!("{ctx} \"{key}\" exceeds u32 range")))
    }

    fn bool(&mut self, key: &str) -> Result<bool, PersistError> {
        let ctx = self.ctx;
        self.take(key)?
            .as_bool()
            .ok_or_else(|| PersistError(format!("{ctx} \"{key}\" must be a boolean")))
    }

    /// An `f64` stored as its IEEE-754 bit pattern.
    fn f64_bits(&mut self, key: &str) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64(key)?))
    }

    fn finish(self) -> Result<(), PersistError> {
        for (i, (k, _)) in self.pairs.iter().enumerate() {
            if !self.used[i] {
                return Err(PersistError(format!("unknown key \"{k}\" in {}", self.ctx)));
            }
        }
        Ok(())
    }
}

fn bits(x: f64) -> Json {
    Json::Int(x.to_bits())
}

fn encode_stat(s: &RunningStat) -> Json {
    let (count, mean, m2, min, max) = s.raw_parts();
    Json::Object(vec![
        ("count".into(), Json::Int(count)),
        ("mean".into(), bits(mean)),
        ("m2".into(), bits(m2)),
        ("min".into(), bits(min)),
        ("max".into(), bits(max)),
    ])
}

fn decode_stat(v: &Json) -> Result<RunningStat, PersistError> {
    let mut f = Fields::new("running stat", v)?;
    let count = f.u64("count")?;
    let mean = f.f64_bits("mean")?;
    let m2 = f.f64_bits("m2")?;
    let min = f.f64_bits("min")?;
    let max = f.f64_bits("max")?;
    f.finish()?;
    Ok(RunningStat::from_raw_parts(count, mean, m2, min, max))
}

fn encode_voice(v: &VoiceStats) -> Json {
    Json::Object(vec![
        ("generated".into(), Json::Int(v.generated)),
        ("delivered".into(), Json::Int(v.delivered)),
        ("dropped_deadline".into(), Json::Int(v.dropped_deadline)),
        (
            "transmission_errors".into(),
            Json::Int(v.transmission_errors),
        ),
        ("dropped_handoff".into(), Json::Int(v.dropped_handoff)),
    ])
}

fn decode_voice(v: &Json) -> Result<VoiceStats, PersistError> {
    let mut f = Fields::new("voice stats", v)?;
    let out = VoiceStats {
        generated: f.u64("generated")?,
        delivered: f.u64("delivered")?,
        dropped_deadline: f.u64("dropped_deadline")?,
        transmission_errors: f.u64("transmission_errors")?,
        dropped_handoff: f.u64("dropped_handoff")?,
    };
    f.finish()?;
    Ok(out)
}

fn encode_data(d: &DataStats) -> Json {
    Json::Object(vec![
        ("arrived".into(), Json::Int(d.arrived)),
        ("delivered".into(), Json::Int(d.delivered)),
        ("retransmissions".into(), Json::Int(d.retransmissions)),
        ("delay".into(), encode_stat(&d.delay)),
    ])
}

fn decode_data(v: &Json) -> Result<DataStats, PersistError> {
    let mut f = Fields::new("data stats", v)?;
    let out = DataStats {
        arrived: f.u64("arrived")?,
        delivered: f.u64("delivered")?,
        retransmissions: f.u64("retransmissions")?,
        delay: decode_stat(f.take("delay")?)?,
    };
    f.finish()?;
    Ok(out)
}

fn encode_contention(c: &ContentionStats) -> Json {
    Json::Object(vec![
        ("attempts".into(), Json::Int(c.attempts)),
        ("collisions".into(), Json::Int(c.collisions)),
        ("successes".into(), Json::Int(c.successes)),
        ("queue_length".into(), encode_stat(&c.queue_length)),
    ])
}

fn decode_contention(v: &Json) -> Result<ContentionStats, PersistError> {
    let mut f = Fields::new("contention stats", v)?;
    let out = ContentionStats {
        attempts: f.u64("attempts")?,
        collisions: f.u64("collisions")?,
        successes: f.u64("successes")?,
        queue_length: decode_stat(f.take("queue_length")?)?,
    };
    f.finish()?;
    Ok(out)
}

fn encode_slots(s: &SlotStats) -> Json {
    Json::Object(vec![
        ("offered".into(), bits(s.offered)),
        ("assigned".into(), bits(s.assigned)),
        ("packets_carried".into(), Json::Int(s.packets_carried)),
        ("wasted".into(), bits(s.wasted)),
    ])
}

fn decode_slots(v: &Json) -> Result<SlotStats, PersistError> {
    let mut f = Fields::new("slot stats", v)?;
    let out = SlotStats {
        offered: f.f64_bits("offered")?,
        assigned: f.f64_bits("assigned")?,
        packets_carried: f.u64("packets_carried")?,
        wasted: f.f64_bits("wasted")?,
    };
    f.finish()?;
    Ok(out)
}

fn encode_handoff(h: &HandoffStats) -> Json {
    Json::Object(vec![
        ("attempts".into(), Json::Int(h.attempts)),
        ("successes".into(), Json::Int(h.successes)),
        ("failures".into(), Json::Int(h.failures)),
        ("queued".into(), Json::Int(h.queued)),
    ])
}

fn decode_handoff(v: &Json) -> Result<HandoffStats, PersistError> {
    let mut f = Fields::new("handoff stats", v)?;
    let out = HandoffStats {
        attempts: f.u64("attempts")?,
        successes: f.u64("successes")?,
        failures: f.u64("failures")?,
        queued: f.u64("queued")?,
    };
    f.finish()?;
    Ok(out)
}

fn encode_cell(c: &CellCounters) -> Json {
    Json::Object(vec![
        ("cell".into(), Json::Int(c.cell as u64)),
        ("voice".into(), encode_voice(&c.voice)),
        ("data".into(), encode_data(&c.data)),
        ("slots".into(), encode_slots(&c.slots)),
        ("handoff_in".into(), Json::Int(c.handoff_in)),
        ("handoff_out".into(), Json::Int(c.handoff_out)),
        ("occupancy".into(), encode_stat(&c.occupancy)),
        ("admission_queue".into(), encode_stat(&c.admission_queue)),
    ])
}

fn decode_cell(v: &Json) -> Result<CellCounters, PersistError> {
    let mut f = Fields::new("cell counters", v)?;
    let out = CellCounters {
        cell: f.u32("cell")?,
        voice: decode_voice(f.take("voice")?)?,
        data: decode_data(f.take("data")?)?,
        slots: decode_slots(f.take("slots")?)?,
        handoff_in: f.u64("handoff_in")?,
        handoff_out: f.u64("handoff_out")?,
        occupancy: decode_stat(f.take("occupancy")?)?,
        admission_queue: decode_stat(f.take("admission_queue")?)?,
    };
    f.finish()?;
    Ok(out)
}

fn encode_metrics(m: &RunMetrics) -> Json {
    Json::Object(vec![
        ("frames".into(), Json::Int(m.frames)),
        ("voice".into(), encode_voice(&m.voice)),
        ("data".into(), encode_data(&m.data)),
        ("contention".into(), encode_contention(&m.contention)),
        ("slots".into(), encode_slots(&m.slots)),
        ("handoff".into(), encode_handoff(&m.handoff)),
        (
            "per_cell".into(),
            Json::Array(m.per_cell.iter().map(encode_cell).collect()),
        ),
    ])
}

fn decode_metrics(v: &Json) -> Result<RunMetrics, PersistError> {
    let mut f = Fields::new("run metrics", v)?;
    let out = RunMetrics {
        frames: f.u64("frames")?,
        voice: decode_voice(f.take("voice")?)?,
        data: decode_data(f.take("data")?)?,
        contention: decode_contention(f.take("contention")?)?,
        slots: decode_slots(f.take("slots")?)?,
        handoff: decode_handoff(f.take("handoff")?)?,
        per_cell: f
            .take("per_cell")?
            .as_array()
            .ok_or_else(|| PersistError("run metrics \"per_cell\" must be an array".into()))?
            .iter()
            .map(decode_cell)
            .collect::<Result<Vec<_>, _>>()?,
    };
    f.finish()?;
    Ok(out)
}

fn encode_protocol(p: ProtocolKind) -> Json {
    Json::Str(p.label().to_string())
}

fn decode_protocol(v: &Json, ctx: &'static str) -> Result<ProtocolKind, PersistError> {
    let label = v
        .as_str()
        .ok_or_else(|| PersistError(format!("{ctx} protocol must be a string")))?;
    ProtocolKind::from_label(label)
        .ok_or_else(|| PersistError(format!("{ctx} names unknown protocol \"{label}\"")))
}

fn encode_report(r: &RunReport) -> Json {
    Json::Object(vec![
        ("protocol".into(), encode_protocol(r.protocol)),
        ("request_queue".into(), Json::Bool(r.request_queue)),
        ("num_voice".into(), Json::Int(r.num_voice as u64)),
        ("num_data".into(), Json::Int(r.num_data as u64)),
        ("seed".into(), Json::Int(r.seed)),
        ("metrics".into(), encode_metrics(&r.metrics)),
    ])
}

fn decode_report(v: &Json) -> Result<RunReport, PersistError> {
    let mut f = Fields::new("run report", v)?;
    let out = RunReport {
        protocol: decode_protocol(f.take("protocol")?, "run report")?,
        request_queue: f.bool("request_queue")?,
        num_voice: f.u32("num_voice")?,
        num_data: f.u32("num_data")?,
        seed: f.u64("seed")?,
        metrics: decode_metrics(f.take("metrics")?)?,
    };
    f.finish()?;
    Ok(out)
}

fn encode_reps(s: &RepsAccumulator) -> Json {
    Json::Object(vec![
        ("voice_loss".into(), encode_stat(s.voice_loss())),
        ("data_throughput".into(), encode_stat(s.data_throughput())),
        ("data_delay".into(), encode_stat(s.data_delay())),
    ])
}

fn decode_reps(v: &Json) -> Result<RepsAccumulator, PersistError> {
    let mut f = Fields::new("replication stats", v)?;
    let out = RepsAccumulator::from_parts(
        decode_stat(f.take("voice_loss")?)?,
        decode_stat(f.take("data_throughput")?)?,
        decode_stat(f.take("data_delay")?)?,
    );
    f.finish()?;
    Ok(out)
}

/// Encodes one completed sweep point for checkpoint storage.  The inverse of
/// [`decode_replicated_result`]; the round trip is bit-exact.
pub fn encode_replicated_result(r: &ReplicatedResult) -> Json {
    Json::Object(vec![
        ("load".into(), bits(r.load)),
        ("protocol".into(), encode_protocol(r.protocol)),
        ("report".into(), encode_report(&r.report)),
        ("stats".into(), encode_reps(&r.stats)),
    ])
}

/// Decodes a checkpointed sweep point, strictly: unknown keys, missing keys
/// and type mismatches are all errors.
pub fn decode_replicated_result(v: &Json) -> Result<ReplicatedResult, PersistError> {
    let mut f = Fields::new("sweep result", v)?;
    let out = ReplicatedResult {
        load: f.f64_bits("load")?,
        protocol: decode_protocol(f.take("protocol")?, "sweep result")?,
        report: decode_report(f.take("report")?)?,
        stats: decode_reps(f.take("stats")?)?,
    };
    f.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::scenario::Scenario;

    fn sample_result() -> ReplicatedResult {
        let mut cfg = SimConfig::quick_test();
        cfg.warmup_frames = 100;
        cfg.measured_frames = 600;
        cfg.num_voice = 8;
        cfg.num_data = 2;
        let report = Scenario::new(cfg).run(ProtocolKind::Charisma);
        let mut stats = RepsAccumulator::new();
        stats.push(&report.metrics);
        stats.push(&report.metrics);
        ReplicatedResult {
            load: 8.0,
            protocol: ProtocolKind::Charisma,
            report,
            stats,
        }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn replicated_result_round_trips_bit_exactly() {
        let r = sample_result();
        let encoded = encode_replicated_result(&r);
        let text = encoded.to_compact_string();
        let reparsed = Json::parse(&text).unwrap();
        let back = decode_replicated_result(&reparsed).unwrap();
        assert_eq!(back, r);
        // Second serialisation yields the same bytes (deterministic writer).
        assert_eq!(encode_replicated_result(&back).to_compact_string(), text);
    }

    #[test]
    fn empty_accumulator_sentinels_survive_the_trip() {
        // min = +inf / max = -inf in an empty RunningStat have no JSON number
        // form; the bit-pattern encoding must still round-trip them.
        let s = RunningStat::new();
        let back = decode_stat(&encode_stat(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unknown_keys_are_rejected_at_every_level() {
        let r = sample_result();
        let mut top = match encode_replicated_result(&r) {
            Json::Object(pairs) => pairs,
            _ => unreachable!(),
        };
        top.push(("surprise".into(), Json::Int(1)));
        let err = decode_replicated_result(&Json::Object(top)).unwrap_err();
        assert!(err.to_string().contains("surprise"), "{err}");

        // A nested unknown key is also fatal.
        let mut nested = encode_replicated_result(&r);
        if let Json::Object(pairs) = &mut nested {
            if let Some((_, Json::Object(report))) = pairs.iter_mut().find(|(k, _)| k == "report") {
                report.push(("extra".into(), Json::Null));
            }
        }
        assert!(decode_replicated_result(&nested).is_err());
    }

    #[test]
    fn missing_keys_and_type_mismatches_are_rejected() {
        let r = sample_result();
        let mut missing = match encode_replicated_result(&r) {
            Json::Object(pairs) => pairs,
            _ => unreachable!(),
        };
        missing.retain(|(k, _)| k != "stats");
        assert!(decode_replicated_result(&Json::Object(missing)).is_err());

        let mut wrong = encode_replicated_result(&r);
        if let Json::Object(pairs) = &mut wrong {
            for (k, v) in pairs.iter_mut() {
                if k == "protocol" {
                    *v = Json::Int(3);
                }
            }
        }
        assert!(decode_replicated_result(&wrong).is_err());

        assert!(decode_replicated_result(&Json::Array(vec![])).is_err());
    }

    #[test]
    fn unknown_protocol_labels_are_rejected() {
        let mut v = encode_replicated_result(&sample_result());
        if let Json::Object(pairs) = &mut v {
            for (k, val) in pairs.iter_mut() {
                if k == "protocol" {
                    *val = Json::Str("NOT-A-MAC".into());
                }
            }
        }
        assert!(decode_replicated_result(&v).is_err());
    }
}
